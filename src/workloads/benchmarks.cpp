#include "workloads/benchmarks.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "transpile/decompose.h"
#include "transpile/sabre.h"

namespace paqoc::workloads {

namespace {

constexpr double kPi = 3.14159265358979323846;

/**
 * Synthesized reversible-logic network: n_ccx Toffolis plus CX and X
 * gates interleaved deterministically. Stands in for the RevLib
 * circuits; gate mix tuned so the universal-basis gate counts land
 * near Table I (each CCX contributes 9 one-qubit and 6 two-qubit
 * gates after decomposition).
 */
Circuit
toffoliNetwork(int nq, int n_ccx, int n_cx, int n_x, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit c(nq);
    const int total = n_ccx + n_cx + n_x;
    int left_ccx = n_ccx, left_cx = n_cx, left_x = n_x;
    for (int i = 0; i < total; ++i) {
        const int left = left_ccx + left_cx + left_x;
        const std::uint64_t pick = rng.below(
            static_cast<std::uint64_t>(left));
        if (pick < static_cast<std::uint64_t>(left_ccx)) {
            int a = rng.range(0, nq - 1);
            int b = rng.range(0, nq - 1);
            int t = rng.range(0, nq - 1);
            while (b == a)
                b = rng.range(0, nq - 1);
            while (t == a || t == b)
                t = rng.range(0, nq - 1);
            c.ccx(a, b, t);
            --left_ccx;
        } else if (pick < static_cast<std::uint64_t>(
                       left_ccx + left_cx)) {
            const int a = rng.range(0, nq - 1);
            int b = rng.range(0, nq - 1);
            while (b == a)
                b = rng.range(0, nq - 1);
            c.cx(a, b);
            --left_cx;
        } else {
            c.x(rng.range(0, nq - 1));
            --left_x;
        }
    }
    return c;
}

/** Bernstein-Vazirani with an all-ones secret (n-1 data qubits). */
Circuit
bernsteinVazirani(int nq)
{
    Circuit c(nq);
    const int anc = nq - 1;
    c.x(anc);
    for (int q = 0; q < nq; ++q)
        c.h(q);
    for (int q = 0; q < anc; ++q)
        c.cx(q, anc);
    for (int q = 0; q < nq; ++q)
        c.h(q);
    return c;
}

/** Cuccaro ripple-carry adder on 2n+2 qubits (a + b -> b). */
Circuit
cuccaroAdder(int bits)
{
    const int nq = 2 * bits + 2;
    Circuit c(nq);
    // Layout: c0, a0, b0, a1, b1, ..., a_{n-1}, b_{n-1}, z.
    auto a = [&](int i) { return 1 + 2 * i; };
    auto b = [&](int i) { return 2 + 2 * i; };
    const int c0 = 0, z = nq - 1;
    auto maj = [&](int x, int y, int w) {
        c.cx(w, y);
        c.cx(w, x);
        c.ccx(x, y, w);
    };
    auto uma = [&](int x, int y, int w) {
        c.ccx(x, y, w);
        c.cx(w, x);
        c.cx(x, y);
    };
    maj(c0, b(0), a(0));
    for (int i = 1; i < bits; ++i)
        maj(a(i - 1), b(i), a(i));
    c.cx(a(bits - 1), z);
    for (int i = bits - 1; i >= 1; --i)
        uma(a(i - 1), b(i), a(i));
    uma(c0, b(0), a(0));
    return c;
}

/** Textbook QFT without the final swap layer (Table I counts). */
Circuit
qft(int nq)
{
    Circuit c(nq);
    for (int q = nq - 1; q >= 0; --q) {
        c.h(q);
        for (int k = q - 1; k >= 0; --k)
            c.cp(k, q, kPi / std::pow(2.0, q - k), "");
    }
    return c;
}

/** QAOA maxcut on a deterministic 3-regular-ish graph, p layers. */
Circuit
qaoa(int nq, int layers)
{
    Circuit c(nq);
    // 3-regular circulant graph: offsets 1, 2, nq/2.
    std::vector<std::pair<int, int>> edges;
    for (int q = 0; q < nq; ++q)
        edges.emplace_back(q, (q + 1) % nq);
    for (int q = 0; q < nq / 2; ++q)
        edges.emplace_back(q, q + nq / 2);
    for (int q = 0; q < nq; ++q)
        c.h(q);
    for (int l = 0; l < layers; ++l) {
        const double gamma = 0.4 + 0.1 * l;
        for (const auto &[u, v] : edges) {
            // CPHASE in universal gates: cx rz cx (paper Section VI-F).
            c.cx(u, v);
            c.rz(v, gamma, "gamma" + std::to_string(l));
            c.cx(u, v);
        }
    }
    const double beta = 0.7;
    for (int q = 0; q < nq; ++q)
        c.rx(q, beta, "beta");
    return c;
}

/** Supremacy-style random circuit on a w x h logical grid. */
Circuit
supremacy(int width, int height, int cycles, std::uint64_t seed)
{
    Rng rng(seed);
    const int nq = width * height;
    Circuit c(nq);
    for (int q = 0; q < nq; ++q)
        c.h(q);
    std::vector<char> touched(static_cast<std::size_t>(nq), 0);
    for (int cyc = 0; cyc < cycles; ++cyc) {
        // Alternate CZ patterns over grid edges.
        std::fill(touched.begin(), touched.end(), 0);
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                const int q = y * width + x;
                const bool horizontal = (cyc % 2 == 0);
                if (horizontal && x + 1 < width
                    && (x + y + cyc / 2) % 2 == 0) {
                    c.cz(q, q + 1);
                    touched[static_cast<std::size_t>(q)] = 1;
                    touched[static_cast<std::size_t>(q + 1)] = 1;
                } else if (!horizontal && y + 1 < height
                           && (x + y + cyc / 2) % 2 == 0) {
                    c.cz(q, q + width);
                    touched[static_cast<std::size_t>(q)] = 1;
                    touched[static_cast<std::size_t>(q + width)] = 1;
                }
            }
        }
        // Random one-qubit gates on untouched qubits.
        for (int q = 0; q < nq; ++q) {
            if (touched[static_cast<std::size_t>(q)])
                continue;
            switch (rng.range(0, 2)) {
              case 0:
                c.t(q);
                break;
              case 1:
                c.sx(q);
                break;
              default:
                c.add(Gate(Op::RY, {q}, kPi / 2.0));
                break;
            }
        }
    }
    for (int q = 0; q < nq; ++q)
        c.h(q);
    return c;
}

/** Simon's algorithm skeleton on 2n qubits. */
Circuit
simon(int half)
{
    const int nq = 2 * half;
    Circuit c(nq);
    for (int q = 0; q < half; ++q)
        c.h(q);
    // Oracle: copy plus secret-string scrambling.
    for (int q = 0; q < half; ++q)
        c.cx(q, q + half);
    for (int q = 0; q < half; ++q) {
        c.cx(0, q + half);
        if (q + 1 < half)
            c.cx(q + 1, q + half);
    }
    for (int q = half; q < nq; ++q) {
        c.x(q);
        c.x(q);
    }
    for (int q = 0; q < half; ++q) {
        c.cx(q, ((q + 1) % half) + half);
        c.h(q);
    }
    for (int q = 0; q < half - 1; ++q)
        c.h(q);
    return c;
}

/** Quantum phase estimation: counting register + one target. */
Circuit
qpe(int counting)
{
    const int nq = counting + 1;
    const int target = counting;
    Circuit c(nq);
    c.x(target);
    for (int q = 0; q < counting; ++q)
        c.h(q);
    // Controlled powers of a phase oracle.
    for (int q = 0; q < counting; ++q)
        c.cp(q, target, 2.0 * kPi / std::pow(2.0, counting - q), "");
    // Inverse QFT on the counting register.
    for (int q = 0; q < counting; ++q) {
        for (int k = 0; k < q; ++k)
            c.cp(k, q, -kPi / std::pow(2.0, q - k), "");
        c.h(q);
    }
    return c;
}

/** Hardware-efficient "deep neural network" ansatz. */
Circuit
dnn(int nq, int layers)
{
    Rng rng(4057);
    Circuit c(nq);
    for (int q = 0; q < nq; ++q)
        c.ry(q, rng.uniform(0.1, 3.0), "w_in");
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < nq; ++q)
            c.ry(q, rng.uniform(0.1, 3.0), "w" + std::to_string(l));
        // Dense entangling block: all ordered pairs.
        for (int a = 0; a < nq; ++a)
            for (int b = 0; b < nq; ++b)
                if (a != b)
                    c.cx(a, b);
    }
    for (int q = 0; q < nq; ++q)
        c.ry(q, rng.uniform(0.1, 3.0), "w_out");
    return c;
}

/** BB84-style preparation: random basis choices, one-qubit only. */
Circuit
bb84(int nq, int gates)
{
    Rng rng(84);
    Circuit c(nq);
    for (int i = 0; i < gates; ++i) {
        const int q = rng.range(0, nq - 1);
        if (rng.chance(0.5))
            c.h(q);
        else
            c.x(q);
    }
    return c;
}

} // namespace

const std::vector<BenchmarkSpec> &
allBenchmarks()
{
    static const std::vector<BenchmarkSpec> specs = {
        {"mod5d2", "Toffoli network", 16},
        {"rd32", "Bit adder", 5},
        {"decod24", "Binary decoder", 5},
        {"4gt10", "4 greater than 10", 5},
        {"cnt3-5", "Ternary counter", 16},
        {"hwb4", "Hidden weighted bit", 5},
        {"ham7", "Hamming code", 16},
        {"majority", "Majority function", 16},
        {"bv", "Bernstein-Vazirani", 21},
        {"adder", "Cuccaro adder", 18},
        {"qft", "Quantum Fourier transform", 16},
        {"qaoa", "QAOA maxcut", 10},
        {"supre", "Supremacy circuit", 25},
        {"simon", "Simon's algorithm", 6},
        {"qpe", "Quantum phase estimation", 9},
        {"dnn", "Deep neural network ansatz", 8},
        {"bb84", "Crypto protocol (1q only)", 8},
    };
    return specs;
}

const BenchmarkSpec &
benchmarkSpec(const std::string &name)
{
    for (const BenchmarkSpec &s : allBenchmarks()) {
        if (s.name == name)
            return s;
    }
    throw FatalError("unknown benchmark: " + name);
}

Circuit
makeLogical(const std::string &name)
{
    const BenchmarkSpec &spec = benchmarkSpec(name);
    const int nq = spec.qubits;
    if (name == "mod5d2")
        return toffoliNetwork(nq, 3, 7, 1, 101);
    if (name == "rd32")
        return toffoliNetwork(nq, 5, 6, 3, 102);
    if (name == "decod24")
        return toffoliNetwork(nq, 5, 8, 2, 103);
    if (name == "4gt10")
        return toffoliNetwork(nq, 9, 12, 1, 104);
    if (name == "cnt3-5")
        return toffoliNetwork(nq, 9, 31, 9, 105);
    if (name == "hwb4")
        return toffoliNetwork(nq, 13, 29, 9, 106);
    if (name == "ham7")
        return toffoliNetwork(nq, 18, 41, 9, 107);
    if (name == "majority")
        return toffoliNetwork(nq, 38, 39, 3, 108);
    if (name == "bv")
        return bernsteinVazirani(nq);
    if (name == "adder")
        return cuccaroAdder((nq - 2) / 2);
    if (name == "qft")
        return qft(nq);
    if (name == "qaoa")
        return qaoa(nq, 3);
    if (name == "supre")
        return supremacy(5, 5, 8, 109);
    if (name == "simon")
        return simon(nq / 2);
    if (name == "qpe")
        return qpe(nq - 1);
    if (name == "dnn")
        return dnn(nq, 18);
    if (name == "bb84")
        return bb84(nq, 27);
    throw FatalError("unhandled benchmark: " + name);
}

Circuit
makePhysical(const std::string &name, const Topology &topology,
             std::uint64_t seed)
{
    const Circuit logical = makeLogical(name);
    const Circuit cx_level = decomposeToCx(logical);
    SabreOptions opts;
    opts.seed = seed;
    const RoutingResult routed = sabreRoute(cx_level, topology, opts);
    return decomposeToBasis(routed.physical);
}

Circuit
makePhysicalDefault(const std::string &name)
{
    return makePhysical(name, Topology::grid(5, 5));
}

Topology
compactTopology(int qubits)
{
    PAQOC_FATAL_IF(qubits < 1, "bad qubit count");
    if (qubits <= 2)
        return Topology::line(std::max(qubits, 2));
    // Smallest grid w x 2 (or line) covering the register.
    const int w = (qubits + 1) / 2;
    return Topology::grid(w, 2);
}

std::vector<Circuit>
randomSubcircuitCorpus(int count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Circuit> corpus;
    corpus.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int nq = rng.range(1, 3);
        const int len = rng.range(2, 6);
        Circuit c(nq);
        // Keep the subcircuit connected across qubits, matching the
        // paper's maximal-consecutive-shared-qubit extraction: the
        // first multi-qubit slot on a 3-qubit support bridges 0-1,
        // later ones alternate pairs.
        int pair_toggle = 0;
        for (int g = 0; g < len; ++g) {
            if (nq >= 2 && rng.chance(0.55)) {
                const int a =
                    nq == 2 ? 0 : (pair_toggle++ % (nq - 1));
                if (rng.chance(0.5))
                    c.cx(a, a + 1);
                else
                    c.cx(a + 1, a);
            } else {
                const int q = rng.range(0, nq - 1);
                switch (rng.range(0, 3)) {
                  case 0:
                    c.h(q);
                    break;
                  case 1:
                    c.rz(q, rng.uniform(0.2, 3.0));
                    break;
                  case 2:
                    c.sx(q);
                    break;
                  default:
                    c.x(q);
                    break;
                }
            }
        }
        corpus.push_back(std::move(c));
    }
    return corpus;
}

} // namespace paqoc::workloads
