#ifndef PAQOC_WORKLOADS_BENCHMARKS_H_
#define PAQOC_WORKLOADS_BENCHMARKS_H_

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "transpile/topology.h"

namespace paqoc::workloads {

/** Metadata of one application benchmark (paper Table I). */
struct BenchmarkSpec
{
    std::string name;
    std::string description;
    int qubits = 0;
};

/** The seventeen Table I benchmarks, in the paper's order. */
const std::vector<BenchmarkSpec> &allBenchmarks();

/** Spec lookup by name; throws FatalError if unknown. */
const BenchmarkSpec &benchmarkSpec(const std::string &name);

/**
 * Logical circuit of a named benchmark, built from the universal gate
 * set. RevLib/ScaffCC circuit files are not redistributable here, so
 * the reversible-logic benchmarks are synthesized Toffoli networks
 * with Table I's approximate gate counts, and the algorithmic
 * benchmarks (bv, adder, qft, qaoa, supre, simon, qpe, dnn, bb84) use
 * their textbook constructions. Deterministic for a given name.
 */
Circuit makeLogical(const std::string &name);

/**
 * Physical circuit: decompose to CX level, SABRE-route on the given
 * topology, then lower to the {h, rz, sx, x, cx} hardware basis.
 */
Circuit makePhysical(const std::string &name, const Topology &topology,
                     std::uint64_t seed = 1);

/** makePhysical on the evaluation platform (5x5 grid). */
Circuit makePhysicalDefault(const std::string &name);

/**
 * Smallest line/grid topology with at least `qubits` qubits, used to
 * keep Table II pulse simulations within reach of full propagation.
 */
Topology compactTopology(int qubits);

/**
 * Corpus of random 1-3 qubit basis-gate subcircuits standing in for
 * the paper's 150-benchmark subcircuit extraction (Fig. 6): maximal
 * consecutive sequences of gates sharing qubits.
 */
std::vector<Circuit> randomSubcircuitCorpus(int count,
                                            std::uint64_t seed);

} // namespace paqoc::workloads

#endif // PAQOC_WORKLOADS_BENCHMARKS_H_
