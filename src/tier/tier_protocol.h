#ifndef PAQOC_TIER_TIER_PROTOCOL_H_
#define PAQOC_TIER_TIER_PROTOCOL_H_

#include <optional>
#include <string>

namespace paqoc {
namespace tier {

/**
 * Shared pulse-cache tier wire protocol (DESIGN.md §14). The tier
 * daemon speaks the service's frame format -- 4-byte big-endian
 * length + JSON (src/service/protocol.h) -- with its own op set:
 *
 *   {"op":"ping"}
 *       -> {"ok":true,"payload":"pong"}
 *   {"op":"tier_get","fingerprint":F,"key":K}
 *       -> {"ok":true,"payload":{"found":b,"denied":b,
 *                                "record":hex,"crc":n}}
 *   {"op":"tier_put","fingerprint":F,"key":K,"record":hex,"crc":n}
 *       -> {"ok":true,"payload":{"stored":b,"denied":b}}
 *          or {"ok":false,...} when the record fails its own CRC
 *   {"op":"tier_deny","fingerprint":F,"key":K,"reason":...}
 *       -> {"ok":true}   (poisoned-key denylist, DESIGN.md §14)
 *   {"op":"stats"}      -> {"ok":true,"payload":{...counters...}}
 *   {"op":"shutdown"}   -> {"ok":true}, then the daemon drains
 *
 * Records are the pulse library's binary record payloads
 * (encodePulseRecord), hex-encoded because JSON strings cannot carry
 * arbitrary bytes, and always accompanied by crc32(record) so both
 * sides can verify the bytes end to end independently of the frame
 * transport. Fingerprints namespace everything: a record published
 * under one backend configuration is invisible to every other.
 */

/** Journal-header fingerprint of the tier daemon's own store. */
inline const char kTierStoreFingerprint[] = "paqoc-tier-v1";

/** Lowercase hex of arbitrary bytes. */
std::string hexEncode(const std::string &bytes);

/** Inverse of hexEncode; nullopt on odd length or a non-hex digit. */
std::optional<std::string> hexDecode(const std::string &text);

} // namespace tier
} // namespace paqoc

#endif // PAQOC_TIER_TIER_PROTOCOL_H_
