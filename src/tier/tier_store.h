#ifndef PAQOC_TIER_TIER_STORE_H_
#define PAQOC_TIER_TIER_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "store/journal.h"

namespace paqoc {
namespace tier {

/** What the store recovered and has done; surfaced by `stats`. */
struct TierStoreStats
{
    /** Committed journal records replayed at open. */
    std::size_t journalRecords = 0;
    /** Torn/corrupt tail bytes dropped during recovery. */
    std::uint64_t droppedTailBytes = 0;
    /** Records whose payload failed to decode (skipped). */
    std::size_t corruptPayloads = 0;
    /** put() calls that stored a new or changed record. */
    std::size_t stored = 0;
    /** put() calls ignored: identical bytes already present. */
    std::size_t duplicatePuts = 0;
    /** put() calls refused because the key is denylisted. */
    std::size_t deniedPuts = 0;
    /** get() calls answered with a denylisted key. */
    std::size_t deniedGets = 0;
    /** Keys on the poisoned-key denylist. */
    std::size_t deniedKeys = 0;
    /** Journal failure flipped the store to memory-only serving. */
    bool degraded = false;
    std::vector<std::string> warnings;
};

/**
 * The tier daemon's CRC32-journaled key/value store (DESIGN.md §14):
 * (fingerprint, canonical key) -> pulse record bytes, plus the
 * poisoned-key denylist. Built on the same journal primitive as the
 * pulse library, so kill -9 leaves a valid prefix plus at most one
 * torn record and recovery never aborts on corrupt content.
 *
 * Journal record payload (little-endian u32 lengths):
 *
 *   u32 type (1 = put, 2 = deny) | u32 fp_len | fp
 *   | u32 key_len | key | u32 record_len | record bytes
 *
 * A deny record permanently poisons its key: any stored record is
 * dropped, later puts are refused, and gets answer denied=true so a
 * client that once fetched corruption never re-fetches it. Denials
 * survive restarts (they are journaled like everything else).
 *
 * Journal failures (disk full, injected faults) degrade the store to
 * memory-only serving, mirroring the pulse library's read-only mode.
 *
 * Thread-safe; shared by all of a tier daemon's connections.
 */
class TierStore
{
  public:
    /**
     * Open (or create) the store in `directory`, recovering the
     * journal. Raises FatalError only on real I/O failures; foreign
     * or corrupt journals are rotated aside with a warning.
     */
    explicit TierStore(std::string directory);

    /**
     * Fetch the record for (fingerprint, key); nullopt on miss. A
     * denylisted key is always a miss with *denied set.
     */
    std::optional<std::string> get(const std::string &fingerprint,
                                   const std::string &key,
                                   bool *denied = nullptr);

    /**
     * Store (or overwrite) a record. Returns false when the key is
     * denylisted -- poisoned keys never resurrect. Identical bytes
     * are deduplicated without touching the journal.
     */
    bool put(const std::string &fingerprint, const std::string &key,
             const std::string &record);

    /** Poison (fingerprint, key): drop the record, refuse re-puts. */
    void deny(const std::string &fingerprint, const std::string &key,
              const std::string &reason);

    /** Live record count across all fingerprints. */
    std::size_t size() const;
    TierStoreStats stats() const;
    const std::string &directory() const { return directory_; }

    /** fsync the journal (graceful-shutdown path). */
    void sync();

  private:
    /** Composite map key; '\n' cannot occur in either component. */
    static std::string mapKey(const std::string &fingerprint,
                              const std::string &key);

    void appendLocked(const std::string &payload)
        PAQOC_REQUIRES(mutex_);
    /**
     * Recovery-time only (runs in the constructor, before the object
     * is shared), hence exempt from the lock analysis.
     */
    void applyRecord(const std::string &payload)
        PAQOC_NO_THREAD_SAFETY_ANALYSIS;

    std::string directory_;
    mutable Mutex mutex_;
    /** Ordered so iteration (future compaction) is deterministic. */
    std::map<std::string, std::string> records_
        PAQOC_GUARDED_BY(mutex_);
    std::set<std::string> denied_ PAQOC_GUARDED_BY(mutex_);
    JournalWriter journal_ PAQOC_GUARDED_BY(mutex_);
    TierStoreStats stats_ PAQOC_GUARDED_BY(mutex_);
};

/** Encode/decode one tier journal payload (exposed for tests). */
std::string encodeTierRecord(int type, const std::string &fingerprint,
                             const std::string &key,
                             const std::string &record);
struct TierRecord
{
    int type = 0; ///< 1 = put, 2 = deny
    std::string fingerprint;
    std::string key;
    std::string record; ///< deny reason for type 2
};
std::optional<TierRecord> decodeTierRecord(const std::string &payload);

} // namespace tier
} // namespace paqoc

#endif // PAQOC_TIER_TIER_STORE_H_
