#include "tier/tier_server.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "fleet/endpoint.h"
#include "service/protocol.h"
#include "store/crc32.h"
#include "tier/tier_protocol.h"

namespace paqoc {
namespace tier {

TierServer::TierServer(TierStore &store, TierServerOptions options)
    : store_(store), options_(std::move(options))
{
}

TierServer::~TierServer()
{
    stop();
}

void
TierServer::start()
{
    if (accept_thread_.joinable())
        return; // already started (run() after an explicit start())
    PAQOC_FATAL_IF(options_.socketPath.empty()
                       && options_.listenHost.empty(),
                   "tierd: no listening endpoint configured");
    if (!options_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        PAQOC_FATAL_IF(
            options_.socketPath.size() >= sizeof addr.sun_path,
            "tierd: socket path '", options_.socketPath, "' too long");
        std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                     sizeof addr.sun_path - 1);

        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        PAQOC_FATAL_IF(listen_fd_ < 0, "tierd: socket(): ",
                       std::strerror(errno));
        ::unlink(options_.socketPath.c_str());
        PAQOC_FATAL_IF(::bind(listen_fd_,
                              reinterpret_cast<sockaddr *>(&addr),
                              sizeof addr)
                           != 0,
                       "tierd: cannot bind '", options_.socketPath,
                       "': ", std::strerror(errno));
        PAQOC_FATAL_IF(::listen(listen_fd_, 64) != 0,
                       "tierd: listen(): ", std::strerror(errno));
    }
    if (!options_.listenHost.empty()) {
        std::string error;
        tcp_fd_ = fleet::listenTcp(options_.listenHost,
                                   options_.listenPort, 64, &error,
                                   &tcp_port_);
        PAQOC_FATAL_IF(tcp_fd_ < 0, "tierd: ", error);
    }
    accept_thread_ = std::thread([this]() { acceptLoop(); });
}

void
TierServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd fds[2];
        nfds_t n = 0;
        if (listen_fd_ >= 0)
            fds[n++] = {listen_fd_, POLLIN, 0};
        if (tcp_fd_ >= 0)
            fds[n++] = {tcp_fd_, POLLIN, 0};
        const int r = ::poll(fds, n, 200);
        if (r <= 0)
            continue; // timeout (re-check stop flag) or EINTR
        for (nfds_t i = 0; i < n; ++i) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            const int fd = ::accept(fds[i].fd, nullptr, nullptr);
            if (fd >= 0)
                adoptConnection(fd);
        }
    }
}

void
TierServer::adoptConnection(int fd)
{
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
        MutexLock lock(mutex_);
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        ++counters_.connections;
        connections_.push_back(conn);
    }
    conn->thread =
        std::thread([this, conn]() { serveConnection(conn); });
}

void
TierServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    std::string text;
    try {
        while (protocol::readFrame(conn->fd, text)) {
            Json response;
            try {
                response = handle(Json::parse(text));
            } catch (const std::exception &e) {
                MutexLock lock(mutex_);
                ++counters_.badRequests;
                response = protocol::errorResponse(
                    std::string("tierd: ") + e.what());
            }
            protocol::writeFrame(conn->fd, response.dump());
        }
    } catch (const std::exception &) {
        // Torn frame or dropped peer: the connection dies, the
        // tier daemon lives on.
    }
}

Json
TierServer::handle(const Json &request)
{
    const std::string op =
        request.get("op", Json(std::string())).asString();
    if (op == "ping") {
        Json response = Json::object();
        response.set("ok", Json(true));
        response.set("payload", Json("pong"));
        return response;
    }
    if (op == "tier_get")
        return handleGet(request);
    if (op == "tier_put")
        return handlePut(request);
    if (op == "tier_deny")
        return handleDeny(request);
    if (op == "stats") {
        Json response = Json::object();
        response.set("ok", Json(true));
        response.set("payload", statsJson());
        return response;
    }
    if (op == "shutdown") {
        requestStop();
        Json response = Json::object();
        response.set("ok", Json(true));
        return response;
    }
    {
        MutexLock lock(mutex_);
        ++counters_.badRequests;
    }
    return protocol::errorResponse("tierd: unknown op '" + op + "'");
}

Json
TierServer::handleGet(const Json &request)
{
    const std::string fingerprint =
        request.get("fingerprint", Json(std::string())).asString();
    const std::string key =
        request.get("key", Json(std::string())).asString();
    if (fingerprint.empty() || key.empty()) {
        MutexLock lock(mutex_);
        ++counters_.badRequests;
        return protocol::errorResponse(
            "tierd: tier_get needs fingerprint and key");
    }
    bool denied = false;
    std::optional<std::string> record =
        store_.get(fingerprint, key, &denied);

    Json payload = Json::object();
    payload.set("found", Json(record.has_value()));
    payload.set("denied", Json(denied));
    if (record.has_value()) {
        payload.set("record", Json(hexEncode(*record)));
        payload.set("crc", Json(static_cast<double>(
                               crc32(record->data(), record->size()))));
    }
    {
        MutexLock lock(mutex_);
        ++counters_.gets;
        if (record.has_value())
            ++counters_.getHits;
        if (denied)
            ++counters_.getDenied;
    }
    Json response = Json::object();
    response.set("ok", Json(true));
    response.set("payload", std::move(payload));
    return response;
}

Json
TierServer::handlePut(const Json &request)
{
    const std::string fingerprint =
        request.get("fingerprint", Json(std::string())).asString();
    const std::string key =
        request.get("key", Json(std::string())).asString();
    const std::string hex =
        request.get("record", Json(std::string())).asString();
    if (fingerprint.empty() || key.empty() || hex.empty()) {
        MutexLock lock(mutex_);
        ++counters_.badRequests;
        return protocol::errorResponse(
            "tierd: tier_put needs fingerprint, key and record");
    }
    std::optional<std::string> record = hexDecode(hex);
    const double claimed =
        request.get("crc", Json(-1.0)).asNumber();
    const bool crcOk =
        record.has_value()
        && claimed
               == static_cast<double>(
                   crc32(record->data(), record->size()));
    if (!crcOk) {
        // The record was damaged between the client and us; refusing
        // it keeps the shared store clean (DESIGN.md §14).
        MutexLock lock(mutex_);
        ++counters_.puts;
        ++counters_.putsRejectedCrc;
        return protocol::errorResponse(
            "tierd: tier_put record failed its CRC");
    }
    const bool stored = store_.put(fingerprint, key, *record);
    {
        MutexLock lock(mutex_);
        ++counters_.puts;
    }
    Json payload = Json::object();
    payload.set("stored", Json(stored));
    payload.set("denied", Json(!stored));
    Json response = Json::object();
    response.set("ok", Json(true));
    response.set("payload", std::move(payload));
    return response;
}

Json
TierServer::handleDeny(const Json &request)
{
    const std::string fingerprint =
        request.get("fingerprint", Json(std::string())).asString();
    const std::string key =
        request.get("key", Json(std::string())).asString();
    if (fingerprint.empty() || key.empty()) {
        MutexLock lock(mutex_);
        ++counters_.badRequests;
        return protocol::errorResponse(
            "tierd: tier_deny needs fingerprint and key");
    }
    const std::string reason =
        request.get("reason", Json(std::string("unspecified")))
            .asString();
    store_.deny(fingerprint, key, reason);
    {
        MutexLock lock(mutex_);
        ++counters_.denies;
    }
    Json response = Json::object();
    response.set("ok", Json(true));
    return response;
}

Json
TierServer::statsJson() const
{
    Counters counters;
    {
        MutexLock lock(mutex_);
        counters = counters_;
    }
    const TierStoreStats store = store_.stats();

    Json serving = Json::object();
    serving.set("connections", Json(counters.connections));
    serving.set("gets", Json(counters.gets));
    serving.set("get_hits", Json(counters.getHits));
    serving.set("get_denied", Json(counters.getDenied));
    serving.set("puts", Json(counters.puts));
    serving.set("puts_rejected_crc", Json(counters.putsRejectedCrc));
    serving.set("denies", Json(counters.denies));
    serving.set("bad_requests", Json(counters.badRequests));

    Json st = Json::object();
    st.set("records", Json(store_.size()));
    st.set("denied_keys", Json(store.deniedKeys));
    st.set("journal_records", Json(store.journalRecords));
    st.set("dropped_tail_bytes",
           Json(static_cast<double>(store.droppedTailBytes)));
    st.set("corrupt_payloads", Json(store.corruptPayloads));
    st.set("stored", Json(store.stored));
    st.set("duplicate_puts", Json(store.duplicatePuts));
    st.set("denied_puts", Json(store.deniedPuts));
    st.set("denied_gets", Json(store.deniedGets));
    st.set("degraded", Json(store.degraded));

    Json out = Json::object();
    out.set("serving", std::move(serving));
    out.set("store", std::move(st));
    return out;
}

void
TierServer::run()
{
    start();
    {
        MutexLock lock(mutex_);
        while (!stop_requested_)
            stop_cv_.wait(mutex_);
    }
    stop();
}

void
TierServer::requestStop()
{
    MutexLock lock(mutex_);
    stop_requested_ = true;
    stop_cv_.notify_all();
}

void
TierServer::stop()
{
    {
        MutexLock lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        stop_requested_ = true;
        stop_cv_.notify_all();
    }
    stopping_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }

    std::vector<std::shared_ptr<Connection>> conns;
    {
        MutexLock lock(mutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (const auto &conn : conns) {
        if (conn->thread.joinable())
            conn->thread.join();
        ::close(conn->fd);
    }

    store_.sync();
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
}

} // namespace tier
} // namespace paqoc
