#ifndef PAQOC_TIER_TIER_CLIENT_H_
#define PAQOC_TIER_TIER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/json.h"
#include "common/thread_annotations.h"
#include "qoc/pulse_cache.h"
#include "service/client.h"

namespace paqoc {
namespace tier {

/** Tuning knobs of a TierClient (the `--tier-*` daemon flags). */
struct TierClientOptions
{
    /** Primary tier endpoint: socket path or host:port. Required. */
    std::string endpoint;
    /** Replica endpoint for hedged reads ("" = no hedging). */
    std::string replica;
    /**
     * Library fingerprint namespacing every get/put: a record
     * published under one backend configuration is invisible to every
     * other (same contract as the durable library on disk).
     */
    std::string fingerprint;
    /** Strict per-op deadline (connect + request + response). */
    double opTimeoutMs = 250.0;
    /**
     * How long a fetch waits on the primary before dispatching the
     * hedged read to the replica. Only meaningful with a replica.
     */
    double hedgeDelayMs = 30.0;
    /** Write-behind queue bound; overflow sheds the *oldest* entry. */
    std::size_t publishQueueCap = 256;
    /** Publisher backoff between failed attempts / idle probes. */
    double publishRetryMs = 50.0;
    /** Where quarantined fetches are rotated ("" = drop the bytes). */
    std::string quarantineDir;
    /** Quarantine rotation depth (tier-<seq % keep>.quarantine). */
    std::size_t quarantineKeep = 8;
    /** Per-endpoint circuit breaker tuning (both endpoints). */
    CircuitBreakerOptions breaker;
};

/** Cumulative tier_* counters (stats op + shutdown table). */
struct TierClientCounters
{
    std::uint64_t hits = 0;        ///< verified tier fetches served
    std::uint64_t misses = 0;      ///< tier answered "not found"
    std::uint64_t denied = 0;      ///< tier answered "poisoned key"
    std::uint64_t fetchErrors = 0; ///< transport/op failures
    std::uint64_t fetchRejected = 0; ///< skipped: breaker open
    std::uint64_t hedged = 0;      ///< replica reads dispatched
    std::uint64_t hedgeWins = 0;   ///< replica answered first
    std::uint64_t published = 0;   ///< write-behind puts stored
    std::uint64_t publishErrors = 0;
    std::uint64_t publishRejected = 0; ///< skipped: breaker open
    std::uint64_t publishDenied = 0;   ///< tier refused: poisoned key
    std::uint64_t shed = 0;        ///< queue overflow, oldest dropped
    std::uint64_t quarantined = 0; ///< corrupt fetches rotated aside
    std::uint64_t resyncs = 0;     ///< anti-entropy rounds after heal
};

/**
 * Client side of the shared pulse-cache tier (DESIGN.md §14): the
 * fault-isolated third cache level behind the in-memory epoch and the
 * local journal. Implements both cache-miss interfaces:
 *
 *   PulseTierSource  read-through: the single-flight leader calls
 *                    fetch() before computing; a verified record is
 *                    published like a locally derived pulse.
 *   PulseStoreSink   write-behind: the durable library forwards every
 *                    fresh local derivation here; a background thread
 *                    publishes it to the tier without ever blocking
 *                    or failing a compile.
 *
 * Fault isolation, in order of defense:
 *
 *   - per-endpoint circuit breaker: a flapping tier is skipped
 *     entirely until a cooldown probe succeeds;
 *   - strict per-op deadline (opTimeoutMs) on every network call;
 *   - hedged reads: a replica is asked after hedgeDelayMs when the
 *     primary is slow, and the first answer wins;
 *   - verification of every fetched record (CRC32, payload decode,
 *     key match) with quarantine + upstream tier_deny on failure;
 *   - bounded publish queue that sheds oldest instead of blocking;
 *   - anti-entropy resync: when the breaker closes after having been
 *     open, everything the library holds is re-published, healing the
 *     tier from the partition.
 *
 * Every failure path returns nullopt ("compute locally"), so with the
 * tier down, flapping, or lying, payloads stay byte-identical to a
 * tierless daemon -- the tier is strictly an accelerator.
 *
 * Failpoints: tier.connect, tier.fetch, tier.publish, tier.corrupt,
 * tier.stall (primary leg only; delay-ms models a slow primary that
 * hedging beats).
 */
class TierClient : public PulseTierSource, public PulseStoreSink
{
  public:
    explicit TierClient(TierClientOptions options);
    ~TierClient() override;

    TierClient(const TierClient &) = delete;
    TierClient &operator=(const TierClient &) = delete;

    /** PulseTierSource: hedged, verified read-through. Never throws. */
    std::optional<CachedPulse> fetch(const std::string &key) override;

    /**
     * Deadline-aware read-through (DESIGN.md §15): a cancelled token
     * skips the tier outright, and a remaining deadline that cannot
     * fund one full tier op (opTimeoutMs) skips it too -- per-leg
     * socket timeouts are fixed at connect time, so the only honest
     * way to respect a tight budget is not to start the op. Both
     * skips count as fetchRejected and mean "compute locally".
     */
    std::optional<CachedPulse>
    fetch(const std::string &key, const CancelToken *cancel) override;

    /** PulseStoreSink: enqueue for write-behind. Never blocks. */
    void onInsert(const std::string &key,
                  const CachedPulse &entry) override;

    /**
     * Anti-entropy source: returns the library's live entries so a
     * heal-after-partition resync can re-publish everything (degraded
     * entries are skipped). Set during single-threaded setup.
     */
    using ResyncSource = std::function<std::vector<CachedPulse>()>;
    void setResyncSource(ResyncSource source);

    /**
     * Wait (bounded) for the publish queue to drain; returns whether
     * it did. Graceful-shutdown path -- a dead tier just times out.
     */
    bool flush(double timeout_ms);

    /** Stop the background threads. Idempotent; destructor calls it. */
    void stop();

    TierClientCounters counters() const;
    /** Primary breaker state name ("closed"/"open"/"half-open"). */
    const char *breakerStateName();
    /** tier_* counters + breaker state, embedded in the stats op. */
    Json statsJson();

  private:
    /** One endpoint: breaker + a serialized lazy connection. */
    struct Leg
    {
        std::string target;
        CircuitBreaker breaker;
        Mutex mutex;
        std::unique_ptr<ServiceClient> conn PAQOC_GUARDED_BY(mutex);

        Leg(std::string t, const CircuitBreakerOptions &opts)
            : target(std::move(t)), breaker(opts) {}
    };

    /** What one endpoint answered for a tier_get. */
    struct LegResult
    {
        enum class Status
        {
            Hit,      ///< record returned (still unverified)
            Miss,     ///< endpoint is healthy but has no record
            Denied,   ///< poisoned key -- do not retry anywhere
            Rejected, ///< breaker open, no network attempt made
            Error,    ///< transport/op failure
        };
        Status status = Status::Error;
        std::string recordHex;
        double crc = -1.0;
    };

    struct HedgeJob
    {
        std::string key;
        Mutex mutex;
        CondVar cv;
        bool done PAQOC_GUARDED_BY(mutex) = false;
        LegResult result PAQOC_GUARDED_BY(mutex);
    };

    struct PublishItem
    {
        std::string key;
        std::string record; ///< encodePulseRecord bytes
    };

    /** One tier_get against one endpoint, breaker-gated. */
    LegResult legFetch(Leg &leg, const std::string &key,
                       bool primary_leg);
    /** (Re)connect `leg.conn`; false leaves *why populated. */
    bool ensureConnLocked(Leg &leg, std::string *why)
        PAQOC_REQUIRES(leg.mutex);
    /** Verify a Hit end to end; quarantines on any failure. */
    std::optional<CachedPulse> verifyRecord(const std::string &key,
                                            const LegResult &result);
    /** Rotate corrupt bytes aside + best-effort upstream tier_deny. */
    void quarantine(const std::string &key, const std::string &bytes,
                    const std::string &reason);
    void hedgeWorkerLoop();
    void publisherLoop();
    /** One publish attempt; true consumes the item (even on denial). */
    bool publishOne(const PublishItem &item);
    /** Idle-time breaker probe (ping) while waiting to resync. */
    void probeIdle();
    /** Heal-after-partition: re-publish everything once Closed. */
    void maybeResync();
    void noteBreakerState();

    TierClientOptions options_;
    Leg primary_;
    std::unique_ptr<Leg> replica_; ///< null when no replica configured

    // Hedge worker: one outstanding primary read at a time; when the
    // slot is busy a concurrent fetch simply runs sequentially.
    std::thread hedgeWorker_;
    Mutex hedgeMutex_;
    CondVar hedgeCv_;
    std::shared_ptr<HedgeJob> hedgeJob_ PAQOC_GUARDED_BY(hedgeMutex_);
    bool hedgeStopping_ PAQOC_GUARDED_BY(hedgeMutex_) = false;

    // Write-behind publisher.
    std::thread publisher_;
    Mutex pubMutex_;
    CondVar pubCv_;
    std::deque<PublishItem> queue_ PAQOC_GUARDED_BY(pubMutex_);
    bool pubInFlight_ PAQOC_GUARDED_BY(pubMutex_) = false;
    bool pubStopping_ PAQOC_GUARDED_BY(pubMutex_) = false;
    /** Publisher's private connection (publisher thread only). */
    std::unique_ptr<ServiceClient> pubConn_;
    /** Breaker was seen Open; a later Closed triggers a resync. */
    bool sawOpen_ PAQOC_GUARDED_BY(pubMutex_) = false;
    ResyncSource resyncSource_;

    mutable Mutex countersMutex_;
    TierClientCounters counters_ PAQOC_GUARDED_BY(countersMutex_);
    std::uint64_t quarantineSeq_ PAQOC_GUARDED_BY(countersMutex_) = 0;

    bool stopped_ = false;
};

} // namespace tier
} // namespace paqoc

#endif // PAQOC_TIER_TIER_CLIENT_H_
