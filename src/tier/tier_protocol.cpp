#include "tier/tier_protocol.h"

namespace paqoc {
namespace tier {

std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const unsigned char b = static_cast<unsigned char>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0x0f]);
    }
    return out;
}

namespace {

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::optional<std::string>
hexDecode(const std::string &text)
{
    if (text.size() % 2 != 0)
        return std::nullopt;
    std::string out;
    out.reserve(text.size() / 2);
    for (std::size_t i = 0; i < text.size(); i += 2) {
        const int hi = hexDigit(text[i]);
        const int lo = hexDigit(text[i + 1]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return out;
}

} // namespace tier
} // namespace paqoc
