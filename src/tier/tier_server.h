#ifndef PAQOC_TIER_TIER_SERVER_H_
#define PAQOC_TIER_TIER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "tier/tier_store.h"

namespace paqoc {
namespace tier {

/** Transport configuration of a TierServer. */
struct TierServerOptions
{
    /** Unix-domain listening socket ("" = none). */
    std::string socketPath;
    /** TCP listener host ("" = no TCP listener). */
    std::string listenHost;
    /** TCP listener port (0 = kernel-assigned; see tcpPort()). */
    int listenPort = 0;
};

/**
 * Socket front end of the shared pulse-cache tier (`paqoc-tierd`,
 * DESIGN.md §14): the service's length-prefixed JSON frame transport
 * carrying the tier op set (tier/tier_protocol.h) over a TierStore.
 *
 * Every tier_put is verified against its own crc member before it
 * touches the store, so a client with a flaky link cannot poison the
 * shared cache; tier_deny records a poisoned key so no client ever
 * re-fetches bytes one of them proved corrupt.
 *
 * Handlers read no clocks and iterate no unordered containers: for a
 * given store state, every response is byte-deterministic.
 */
class TierServer
{
  public:
    TierServer(TierStore &store, TierServerOptions options);
    ~TierServer();

    TierServer(const TierServer &) = delete;
    TierServer &operator=(const TierServer &) = delete;

    /** Bind the endpoints and start the accept thread. */
    void start();

    /** start() + block until a shutdown op or requestStop(). */
    void run();

    /** Ask run() to finish (signal-handler and test safe). */
    void requestStop();

    /** Tear down: close listeners, join connections. Idempotent. */
    void stop();

    /** Resolved TCP port (after start(); -1 without a TCP listener). */
    int tcpPort() const { return tcp_port_; }

    /** Serving counters + store stats, as the `stats` op reports. */
    Json statsJson() const;

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
    };

    void acceptLoop();
    void adoptConnection(int fd);
    void serveConnection(const std::shared_ptr<Connection> &conn);
    Json handle(const Json &request);
    Json handleGet(const Json &request);
    Json handlePut(const Json &request);
    Json handleDeny(const Json &request);

    TierStore &store_;
    TierServerOptions options_;
    int listen_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};

    mutable Mutex mutex_;
    CondVar stop_cv_;
    bool stop_requested_ PAQOC_GUARDED_BY(mutex_) = false;
    bool stopped_ PAQOC_GUARDED_BY(mutex_) = false;
    std::vector<std::shared_ptr<Connection>> connections_
        PAQOC_GUARDED_BY(mutex_);

    struct Counters
    {
        std::uint64_t connections = 0;
        std::uint64_t gets = 0;
        std::uint64_t getHits = 0;
        std::uint64_t getDenied = 0;
        std::uint64_t puts = 0;
        std::uint64_t putsRejectedCrc = 0;
        std::uint64_t denies = 0;
        std::uint64_t badRequests = 0;
    };
    Counters counters_ PAQOC_GUARDED_BY(mutex_);
};

} // namespace tier
} // namespace paqoc

#endif // PAQOC_TIER_TIER_SERVER_H_
