#include "tier/tier_store.h"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"
#include "tier/tier_protocol.h"

namespace paqoc {
namespace tier {

namespace {

constexpr char kJournalFile[] = "tier.bin";
constexpr int kRecordPut = 1;
constexpr int kRecordDeny = 2;

void
putU32(std::string &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
}

void
makeDirectory(const std::string &path)
{
    // mkdir -p over the path's components.
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial += path[i];
            continue;
        }
        if (i < path.size())
            partial += '/';
        if (partial.empty() || partial == "/")
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            PAQOC_FATAL_IF(true, "cannot create directory '", partial,
                           "': ", std::strerror(errno));
    }
}

void
rotateAside(const std::string &path, std::vector<std::string> &warnings)
{
    const std::string stale = path + ".stale";
    ::unlink(stale.c_str());
    if (::rename(path.c_str(), stale.c_str()) == 0)
        warnings.push_back("rotated incompatible file '" + path
                           + "' to '" + stale + "'");
}

/** Bounds-checked cursor over a record payload. */
struct Cursor
{
    const std::string &data;
    std::size_t pos = 0;
    bool ok = true;

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        if (pos + 4 > data.size()) {
            ok = false;
            return 0;
        }
        std::memcpy(&v, data.data() + pos, 4);
        pos += 4;
        return v;
    }

    std::string
    bytes(std::size_t n)
    {
        if (pos + n > data.size()) {
            ok = false;
            return {};
        }
        std::string s = data.substr(pos, n);
        pos += n;
        return s;
    }
};

} // namespace

std::string
encodeTierRecord(int type, const std::string &fingerprint,
                 const std::string &key, const std::string &record)
{
    std::string out;
    putU32(out, static_cast<std::uint32_t>(type));
    putU32(out, static_cast<std::uint32_t>(fingerprint.size()));
    out += fingerprint;
    putU32(out, static_cast<std::uint32_t>(key.size()));
    out += key;
    putU32(out, static_cast<std::uint32_t>(record.size()));
    out += record;
    return out;
}

std::optional<TierRecord>
decodeTierRecord(const std::string &payload)
{
    Cursor cur{payload};
    TierRecord rec;
    rec.type = static_cast<int>(cur.u32());
    rec.fingerprint = cur.bytes(cur.u32());
    rec.key = cur.bytes(cur.u32());
    rec.record = cur.bytes(cur.u32());
    if (!cur.ok || cur.pos != payload.size())
        return std::nullopt;
    if (rec.type != kRecordPut && rec.type != kRecordDeny)
        return std::nullopt;
    return rec;
}

TierStore::TierStore(std::string directory)
    : directory_(std::move(directory))
{
    makeDirectory(directory_);
    const std::string path = directory_ + "/" + kJournalFile;

    JournalScan scan = scanJournal(
        path, kTierStoreFingerprint,
        [this](const std::string &p) { applyRecord(p); });
    if (!scan.warning.empty())
        stats_.warnings.push_back(scan.warning);
    std::uint64_t truncate_to = scan.committedBytes;
    if (!scan.headerValid
        || (!scan.fingerprint.empty()
            && scan.fingerprint != kTierStoreFingerprint)) {
        rotateAside(path, stats_.warnings);
        truncate_to = 0; // fresh file, openAppend writes the header
    } else {
        stats_.droppedTailBytes += scan.droppedBytes;
    }

    journal_ = JournalWriter::openAppend(path, kTierStoreFingerprint,
                                         truncate_to);
}

std::string
TierStore::mapKey(const std::string &fingerprint, const std::string &key)
{
    return fingerprint + "\n" + key;
}

void
TierStore::applyRecord(const std::string &payload)
{
    // Called during recovery only (constructor; mutex not yet shared).
    auto decoded = decodeTierRecord(payload);
    if (!decoded.has_value()) {
        ++stats_.corruptPayloads;
        stats_.warnings.push_back(
            "tier store: skipped an undecodable record of "
            + std::to_string(payload.size()) + " bytes");
        return;
    }
    ++stats_.journalRecords;
    const std::string composite =
        mapKey(decoded->fingerprint, decoded->key);
    if (decoded->type == kRecordDeny) {
        records_.erase(composite);
        denied_.insert(composite);
        return;
    }
    // Later puts win, but a denial is final even across a replay.
    if (denied_.count(composite) == 0)
        records_[composite] = std::move(decoded->record);
}

void
TierStore::appendLocked(const std::string &payload)
{
    if (stats_.degraded)
        return;
    try {
        journal_.append(payload);
    } catch (const FatalError &e) {
        // Keep serving from memory, like the pulse library's
        // read-only degraded mode (DESIGN.md §9).
        stats_.degraded = true;
        stats_.warnings.push_back(std::string("tier store degraded: ")
                                  + e.what());
        journal_.close();
    }
}

std::optional<std::string>
TierStore::get(const std::string &fingerprint, const std::string &key,
               bool *denied)
{
    MutexLock lock(mutex_);
    const std::string composite = mapKey(fingerprint, key);
    if (denied_.count(composite) != 0) {
        ++stats_.deniedGets;
        if (denied != nullptr)
            *denied = true;
        return std::nullopt;
    }
    if (denied != nullptr)
        *denied = false;
    auto it = records_.find(composite);
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

bool
TierStore::put(const std::string &fingerprint, const std::string &key,
               const std::string &record)
{
    MutexLock lock(mutex_);
    const std::string composite = mapKey(fingerprint, key);
    if (denied_.count(composite) != 0) {
        ++stats_.deniedPuts;
        return false;
    }
    auto it = records_.find(composite);
    if (it != records_.end() && it->second == record) {
        ++stats_.duplicatePuts;
        return true;
    }
    records_[composite] = record;
    ++stats_.stored;
    appendLocked(encodeTierRecord(kRecordPut, fingerprint, key, record));
    return true;
}

void
TierStore::deny(const std::string &fingerprint, const std::string &key,
                const std::string &reason)
{
    MutexLock lock(mutex_);
    const std::string composite = mapKey(fingerprint, key);
    records_.erase(composite);
    if (!denied_.insert(composite).second)
        return; // already poisoned; no need to re-journal
    appendLocked(encodeTierRecord(kRecordDeny, fingerprint, key, reason));
}

std::size_t
TierStore::size() const
{
    MutexLock lock(mutex_);
    return records_.size();
}

TierStoreStats
TierStore::stats() const
{
    MutexLock lock(mutex_);
    TierStoreStats out = stats_;
    out.deniedKeys = denied_.size();
    return out;
}

void
TierStore::sync()
{
    MutexLock lock(mutex_);
    if (!stats_.degraded)
        journal_.sync();
}

} // namespace tier
} // namespace paqoc
