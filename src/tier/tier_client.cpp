#include "tier/tier_client.h"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/failpoint.h"
#include "store/crc32.h"
#include "store/pulse_library.h"
#include "tier/tier_protocol.h"

namespace paqoc {
namespace tier {

namespace {

ClientOptions
clientOptions(const TierClientOptions &options)
{
    ClientOptions out;
    out.retries = 0; // the breaker owns retry policy, not the socket
    out.timeoutMs = options.opTimeoutMs;
    return out;
}

/** True when an armed failpoint should fail this call site. DelayMs
 *  already slept inside evaluate() and means "proceed slowly". */
bool
injectedFailure(const char *point)
{
    const failpoint::Hit hit = failpoint::evaluate(point);
    return hit.action != failpoint::Action::Off
        && hit.action != failpoint::Action::DelayMs;
}

Json
breakerToJson(CircuitBreaker &breaker)
{
    const CircuitBreaker::Counters c = breaker.counters();
    Json out = Json::object();
    out.set("state",
            Json(CircuitBreaker::stateName(breaker.state())));
    out.set("opened", Json(c.opened));
    out.set("half_opened", Json(c.halfOpened));
    out.set("closed", Json(c.closed));
    out.set("allowed", Json(c.allowed));
    out.set("rejected", Json(c.rejected));
    return out;
}

} // namespace

TierClient::TierClient(TierClientOptions options)
    : options_(std::move(options)),
      primary_(options_.endpoint, options_.breaker)
{
    if (!options_.replica.empty())
        replica_ =
            std::make_unique<Leg>(options_.replica, options_.breaker);
    if (!options_.quarantineDir.empty()) {
        // Recursive and best-effort: the client may be constructed
        // before anything has created the library directory above it.
        std::error_code ec;
        std::filesystem::create_directories(options_.quarantineDir,
                                            ec);
    }
    publisher_ = std::thread([this]() { publisherLoop(); });
    if (replica_)
        hedgeWorker_ = std::thread([this]() { hedgeWorkerLoop(); });
}

TierClient::~TierClient()
{
    stop();
}

void
TierClient::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    {
        MutexLock lock(hedgeMutex_);
        hedgeStopping_ = true;
        hedgeCv_.notify_all();
    }
    {
        MutexLock lock(pubMutex_);
        pubStopping_ = true;
        pubCv_.notify_all();
    }
    if (hedgeWorker_.joinable())
        hedgeWorker_.join();
    if (publisher_.joinable())
        publisher_.join();
    {
        MutexLock lock(primary_.mutex);
        primary_.conn.reset();
    }
    if (replica_) {
        MutexLock lock(replica_->mutex);
        replica_->conn.reset();
    }
    pubConn_.reset();
}

bool
TierClient::ensureConnLocked(Leg &leg, std::string *why)
{
    if (leg.conn)
        return true;
    try {
        leg.conn = std::make_unique<ServiceClient>(
            leg.target, clientOptions(options_));
        return true;
    } catch (const FatalError &e) {
        *why = e.what();
        return false;
    }
}

TierClient::LegResult
TierClient::legFetch(Leg &leg, const std::string &key, bool primary_leg)
{
    LegResult out;
    if (!leg.breaker.allow()) {
        out.status = LegResult::Status::Rejected;
        return out;
    }
    // tier.stall models a slow (not dead) primary -- the case hedged
    // reads exist for. Armed with delay-ms it sleeps inside evaluate
    // while the replica leg races ahead.
    if (primary_leg && injectedFailure("tier.stall")) {
        leg.breaker.onFailure();
        return out;
    }
    if (injectedFailure("tier.connect")
        || injectedFailure("tier.fetch")) {
        leg.breaker.onFailure();
        return out;
    }

    Json response;
    {
        MutexLock lock(leg.mutex);
        std::string why;
        if (!ensureConnLocked(leg, &why)) {
            leg.breaker.onFailure();
            return out;
        }
        Json request = Json::object();
        request.set("op", Json("tier_get"));
        request.set("fingerprint", Json(options_.fingerprint));
        request.set("key", Json(key));
        try {
            response = leg.conn->request(request);
        } catch (const FatalError &) {
            // Transport failure or a wedged socket timing out: the
            // connection's framing state is unknown, drop it.
            leg.conn.reset();
            leg.breaker.onFailure();
            return out;
        }
    }
    if (!response.get("ok", Json(false)).asBool()) {
        leg.breaker.onFailure();
        return out;
    }
    leg.breaker.onSuccess();
    Json payload = response.get("payload", Json::object());
    if (payload.get("denied", Json(false)).asBool()) {
        out.status = LegResult::Status::Denied;
        return out;
    }
    if (!payload.get("found", Json(false)).asBool()) {
        out.status = LegResult::Status::Miss;
        return out;
    }
    out.recordHex =
        payload.get("record", Json(std::string())).asString();
    out.crc = payload.get("crc", Json(-1.0)).asNumber();
    out.status = LegResult::Status::Hit;
    return out;
}

std::optional<CachedPulse>
TierClient::fetch(const std::string &key, const CancelToken *cancel)
{
    if (cancel != nullptr
        && (cancel->cancelled()
            || cancel->remainingMs() < options_.opTimeoutMs)) {
        // Cancelled, or the deadline cannot fund a full tier op: the
        // leg sockets carry fixed timeouts, so starting an op we
        // cannot finish in budget would only burn the caller's
        // remaining time. Skip straight to local compute.
        MutexLock lock(countersMutex_);
        ++counters_.fetchRejected;
        return std::nullopt;
    }
    return fetch(key);
}

std::optional<CachedPulse>
TierClient::fetch(const std::string &key)
{
    try {
        LegResult result;

        // Dispatch the primary read to the hedge worker when a
        // replica exists and the slot is free; otherwise read
        // sequentially (primary, then replica as pure failover).
        std::shared_ptr<HedgeJob> job;
        if (replica_) {
            MutexLock lock(hedgeMutex_);
            if (hedgeWorker_.joinable() && hedgeJob_ == nullptr
                && !hedgeStopping_) {
                job = std::make_shared<HedgeJob>();
                job->key = key;
                hedgeJob_ = job;
                hedgeCv_.notify_all();
            }
        }
        if (job) {
            bool primary_done = false;
            {
                MutexLock lock(job->mutex);
                if (!job->done)
                    job->cv.wait_for(
                        job->mutex,
                        std::chrono::duration<double, std::milli>(
                            options_.hedgeDelayMs));
                primary_done = job->done;
                if (primary_done)
                    result = job->result;
            }
            if (!primary_done) {
                // Primary is slow: hedge to the replica. First
                // answer wins; the worker finishes in the background
                // (the shared_ptr keeps the job alive).
                {
                    MutexLock lock(countersMutex_);
                    ++counters_.hedged;
                }
                const LegResult hedge =
                    legFetch(*replica_, key, false);
                if (hedge.status == LegResult::Status::Hit) {
                    MutexLock lock(countersMutex_);
                    ++counters_.hedgeWins;
                    result = hedge;
                } else {
                    MutexLock lock(job->mutex);
                    while (!job->done)
                        job->cv.wait(job->mutex);
                    result = job->result;
                    // A definitive replica answer beats a primary
                    // transport failure.
                    if ((result.status == LegResult::Status::Error
                         || result.status
                             == LegResult::Status::Rejected)
                        && (hedge.status == LegResult::Status::Miss
                            || hedge.status
                                == LegResult::Status::Denied))
                        result = hedge;
                }
            }
        } else {
            result = legFetch(primary_, key, true);
            if (replica_
                && (result.status == LegResult::Status::Error
                    || result.status == LegResult::Status::Rejected)) {
                const LegResult failover =
                    legFetch(*replica_, key, false);
                if (failover.status != LegResult::Status::Error
                    && failover.status != LegResult::Status::Rejected)
                    result = failover;
            }
        }

        switch (result.status) {
        case LegResult::Status::Hit: {
            std::optional<CachedPulse> entry =
                verifyRecord(key, result);
            if (entry.has_value()) {
                MutexLock lock(countersMutex_);
                ++counters_.hits;
            }
            // verifyRecord already counted + quarantined a failure;
            // nullopt means "compute locally" either way.
            return entry;
        }
        case LegResult::Status::Miss: {
            MutexLock lock(countersMutex_);
            ++counters_.misses;
            return std::nullopt;
        }
        case LegResult::Status::Denied: {
            MutexLock lock(countersMutex_);
            ++counters_.denied;
            return std::nullopt;
        }
        case LegResult::Status::Rejected: {
            MutexLock lock(countersMutex_);
            ++counters_.fetchRejected;
            return std::nullopt;
        }
        case LegResult::Status::Error:
            break;
        }
        {
            MutexLock lock(countersMutex_);
            ++counters_.fetchErrors;
        }
        return std::nullopt;
    } catch (...) {
        // fetch() must never throw into a compile; any surprise is
        // just a miss.
        MutexLock lock(countersMutex_);
        ++counters_.fetchErrors;
        return std::nullopt;
    }
}

std::optional<CachedPulse>
TierClient::verifyRecord(const std::string &key,
                         const LegResult &result)
{
    std::optional<std::string> bytes = hexDecode(result.recordHex);
    if (!bytes.has_value()) {
        quarantine(key, result.recordHex, "undecodable hex");
        return std::nullopt;
    }
    // tier.corrupt models a lying tier: flip one byte after the
    // transport delivered the record intact.
    if (failpoint::evaluate("tier.corrupt").action
            != failpoint::Action::Off
        && !bytes->empty()) {
        const std::size_t at = bytes->size() / 2;
        (*bytes)[at] = static_cast<char>((*bytes)[at] ^ 0x01);
    }
    if (static_cast<double>(crc32(bytes->data(), bytes->size()))
        != result.crc) {
        quarantine(key, *bytes, "crc mismatch");
        return std::nullopt;
    }
    std::optional<std::pair<std::string, CachedPulse>> decoded =
        decodePulseRecord(*bytes);
    if (!decoded.has_value()) {
        quarantine(key, *bytes, "undecodable record");
        return std::nullopt;
    }
    if (decoded->first != key) {
        quarantine(key, *bytes, "key mismatch");
        return std::nullopt;
    }
    if (decoded->second.degraded) {
        quarantine(key, *bytes, "degraded entry");
        return std::nullopt;
    }
    CachedPulse entry = std::move(decoded->second);
    entry.generation = 0; // re-stamped by completeFlight's insert
    entry.fromTier = true;
    return entry;
}

void
TierClient::quarantine(const std::string &key,
                       const std::string &bytes,
                       const std::string &reason)
{
    std::uint64_t seq = 0;
    {
        MutexLock lock(countersMutex_);
        ++counters_.quarantined;
        seq = quarantineSeq_++;
    }
    if (!options_.quarantineDir.empty()
        && options_.quarantineKeep > 0) {
        // Deterministic rotation: tier-<seq % keep>.quarantine, so
        // chaos runs can assert exact filenames and the directory
        // stays bounded no matter how long the tier lies.
        const std::string path = options_.quarantineDir + "/tier-"
            + std::to_string(seq % options_.quarantineKeep)
            + ".quarantine";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (out.is_open())
            out << bytes;
    }
    // Best-effort upstream denial: poison the key on the tier so no
    // client (including this one) ever re-fetches the bad bytes.
    if (!primary_.breaker.allow())
        return;
    MutexLock lock(primary_.mutex);
    std::string why;
    if (!ensureConnLocked(primary_, &why)) {
        primary_.breaker.onFailure();
        return;
    }
    Json request = Json::object();
    request.set("op", Json("tier_deny"));
    request.set("fingerprint", Json(options_.fingerprint));
    request.set("key", Json(key));
    request.set("reason", Json(reason));
    try {
        const Json response = primary_.conn->request(request);
        if (response.get("ok", Json(false)).asBool())
            primary_.breaker.onSuccess();
        else
            primary_.breaker.onFailure();
    } catch (const FatalError &) {
        primary_.conn.reset();
        primary_.breaker.onFailure();
    }
}

void
TierClient::hedgeWorkerLoop()
{
    while (true) {
        std::shared_ptr<HedgeJob> job;
        bool stopping = false;
        {
            MutexLock lock(hedgeMutex_);
            while (hedgeJob_ == nullptr && !hedgeStopping_)
                hedgeCv_.wait(hedgeMutex_);
            job = hedgeJob_;
            stopping = hedgeStopping_;
            if (job == nullptr)
                return; // stopping with nothing pending
        }
        LegResult result;
        if (!stopping)
            result = legFetch(primary_, job->key, true);
        {
            // A stopping worker still completes the job (as an
            // error) so no fetch() ever blocks on an abandoned slot.
            MutexLock lock(job->mutex);
            job->result = result;
            job->done = true;
            job->cv.notify_all();
        }
        {
            MutexLock lock(hedgeMutex_);
            hedgeJob_.reset();
            if (hedgeStopping_)
                return;
        }
    }
}

void
TierClient::onInsert(const std::string &key, const CachedPulse &entry)
{
    // The library already filters these, but the client may also be
    // attached directly to an in-memory cache -- keep the contract
    // local: never publish degraded pulses or the tier's own entries.
    if (entry.degraded || entry.fromTier)
        return;
    PublishItem item;
    item.key = key;
    item.record = encodePulseRecord(key, entry);
    MutexLock lock(pubMutex_);
    if (pubStopping_)
        return;
    queue_.push_back(std::move(item));
    if (queue_.size() > options_.publishQueueCap) {
        // Shed the *oldest*: fresh derivations are likelier to be
        // re-requested, and a blocked compile is never an option.
        queue_.pop_front();
        MutexLock counters_lock(countersMutex_);
        ++counters_.shed;
    }
    pubCv_.notify_all();
}

void
TierClient::setResyncSource(ResyncSource source)
{
    resyncSource_ = std::move(source);
}

void
TierClient::publisherLoop()
{
    while (true) {
        PublishItem item;
        bool have = false;
        {
            MutexLock lock(pubMutex_);
            if (queue_.empty() && !pubStopping_) {
                // Timed idle wait: wake to probe a healing breaker
                // and poll for the post-partition resync.
                pubCv_.wait_for(
                    pubMutex_,
                    std::chrono::duration<double, std::milli>(
                        options_.publishRetryMs));
            }
            if (pubStopping_)
                return;
            if (!queue_.empty()) {
                item = std::move(queue_.front());
                queue_.pop_front();
                pubInFlight_ = true;
                have = true;
            }
        }
        bool consumed = true;
        if (have)
            consumed = publishOne(item);
        else
            probeIdle();
        noteBreakerState();
        maybeResync();
        {
            MutexLock lock(pubMutex_);
            pubInFlight_ = false;
            if (have && !consumed)
                queue_.push_front(std::move(item));
            pubCv_.notify_all();
            if (have && !consumed && !pubStopping_) {
                // Backoff after a failed attempt so a dead tier is
                // probed at publishRetryMs, not hammered.
                pubCv_.wait_for(
                    pubMutex_,
                    std::chrono::duration<double, std::milli>(
                        options_.publishRetryMs));
            }
        }
    }
}

bool
TierClient::publishOne(const PublishItem &item)
{
    if (!primary_.breaker.allow()) {
        MutexLock lock(countersMutex_);
        ++counters_.publishRejected;
        return false;
    }
    if (injectedFailure("tier.connect")
        || injectedFailure("tier.publish")) {
        primary_.breaker.onFailure();
        MutexLock lock(countersMutex_);
        ++counters_.publishErrors;
        return false;
    }
    if (!pubConn_) {
        try {
            pubConn_ = std::make_unique<ServiceClient>(
                primary_.target, clientOptions(options_));
        } catch (const FatalError &) {
            primary_.breaker.onFailure();
            MutexLock lock(countersMutex_);
            ++counters_.publishErrors;
            return false;
        }
    }
    Json request = Json::object();
    request.set("op", Json("tier_put"));
    request.set("fingerprint", Json(options_.fingerprint));
    request.set("key", Json(item.key));
    request.set("record", Json(hexEncode(item.record)));
    request.set("crc",
                Json(static_cast<double>(crc32(item.record.data(),
                                               item.record.size()))));
    Json response;
    try {
        response = pubConn_->request(request);
    } catch (const FatalError &) {
        pubConn_.reset();
        primary_.breaker.onFailure();
        MutexLock lock(countersMutex_);
        ++counters_.publishErrors;
        return false;
    }
    if (!response.get("ok", Json(false)).asBool()) {
        // The tier answered (transport is healthy) but refused the
        // record -- e.g. its CRC check failed in flight. Retrying the
        // same bytes forever would wedge the queue; count and drop.
        primary_.breaker.onSuccess();
        MutexLock lock(countersMutex_);
        ++counters_.publishErrors;
        return true;
    }
    primary_.breaker.onSuccess();
    Json payload = response.get("payload", Json::object());
    MutexLock lock(countersMutex_);
    if (payload.get("denied", Json(false)).asBool())
        ++counters_.publishDenied;
    else
        ++counters_.published;
    return true;
}

void
TierClient::probeIdle()
{
    {
        MutexLock lock(pubMutex_);
        if (!sawOpen_)
            return; // healthy and idle: no probe traffic
    }
    if (!primary_.breaker.allow())
        return;
    if (injectedFailure("tier.connect")) {
        primary_.breaker.onFailure();
        return;
    }
    if (!pubConn_) {
        try {
            pubConn_ = std::make_unique<ServiceClient>(
                primary_.target, clientOptions(options_));
        } catch (const FatalError &) {
            primary_.breaker.onFailure();
            return;
        }
    }
    Json request = Json::object();
    request.set("op", Json("ping"));
    try {
        const Json response = pubConn_->request(request);
        if (response.get("ok", Json(false)).asBool())
            primary_.breaker.onSuccess();
        else
            primary_.breaker.onFailure();
    } catch (const FatalError &) {
        pubConn_.reset();
        primary_.breaker.onFailure();
    }
}

void
TierClient::noteBreakerState()
{
    if (primary_.breaker.state() != CircuitBreaker::State::Open)
        return;
    MutexLock lock(pubMutex_);
    sawOpen_ = true;
}

void
TierClient::maybeResync()
{
    {
        MutexLock lock(pubMutex_);
        if (!sawOpen_)
            return;
    }
    if (primary_.breaker.state() != CircuitBreaker::State::Closed)
        return;
    // The partition healed (Open -> probe -> Closed): re-publish
    // everything the library holds so the tier catches up on what it
    // missed (anti-entropy, DESIGN.md §14).
    std::vector<CachedPulse> entries;
    if (resyncSource_)
        entries = resyncSource_();
    {
        MutexLock lock(pubMutex_);
        sawOpen_ = false;
        for (const CachedPulse &entry : entries) {
            if (entry.degraded)
                continue;
            PublishItem item;
            item.key = PulseCache::canonicalKey(entry.unitary,
                                                entry.numQubits);
            item.record = encodePulseRecord(item.key, entry);
            queue_.push_back(std::move(item));
            if (queue_.size() > options_.publishQueueCap) {
                queue_.pop_front();
                MutexLock counters_lock(countersMutex_);
                ++counters_.shed;
            }
        }
        pubCv_.notify_all();
    }
    MutexLock lock(countersMutex_);
    ++counters_.resyncs;
}

bool
TierClient::flush(double timeout_ms)
{
    // Chunked timed waits instead of a wall-clock deadline: the
    // publisher notifies on every state change, and tier code never
    // reads clocks near serialization sinks (determinism-taint).
    const int chunk_ms = 10;
    int rounds = timeout_ms <= 0.0
        ? 0
        : static_cast<int>(timeout_ms / chunk_ms) + 1;
    MutexLock lock(pubMutex_);
    while ((!queue_.empty() || pubInFlight_) && !pubStopping_
           && rounds-- > 0)
        pubCv_.wait_for(pubMutex_,
                        std::chrono::milliseconds(chunk_ms));
    return queue_.empty() && !pubInFlight_;
}

TierClientCounters
TierClient::counters() const
{
    MutexLock lock(countersMutex_);
    return counters_;
}

const char *
TierClient::breakerStateName()
{
    return CircuitBreaker::stateName(primary_.breaker.state());
}

Json
TierClient::statsJson()
{
    const TierClientCounters c = counters();
    std::size_t depth = 0;
    {
        MutexLock lock(pubMutex_);
        depth = queue_.size();
    }
    Json out = Json::object();
    out.set("endpoint", Json(options_.endpoint));
    if (replica_)
        out.set("replica", Json(options_.replica));
    out.set("hits", Json(c.hits));
    out.set("misses", Json(c.misses));
    out.set("denied", Json(c.denied));
    out.set("fetch_errors", Json(c.fetchErrors));
    out.set("fetch_rejected", Json(c.fetchRejected));
    out.set("hedged", Json(c.hedged));
    out.set("hedge_wins", Json(c.hedgeWins));
    out.set("published", Json(c.published));
    out.set("publish_errors", Json(c.publishErrors));
    out.set("publish_rejected", Json(c.publishRejected));
    out.set("publish_denied", Json(c.publishDenied));
    out.set("shed", Json(c.shed));
    out.set("queue_depth", Json(depth));
    out.set("quarantined", Json(c.quarantined));
    out.set("resyncs", Json(c.resyncs));
    out.set("breaker", breakerToJson(primary_.breaker));
    if (replica_)
        out.set("replica_breaker", breakerToJson(replica_->breaker));
    return out;
}

} // namespace tier
} // namespace paqoc
