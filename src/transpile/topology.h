#ifndef PAQOC_TRANSPILE_TOPOLOGY_H_
#define PAQOC_TRANSPILE_TOPOLOGY_H_

#include <vector>

namespace paqoc {

/**
 * Hardware qubit connectivity graph with precomputed all-pairs
 * shortest-path distances (BFS; all edges unit length).
 *
 * The paper's evaluation platform is a 5x5 grid of superconducting
 * qubits with XY interactions; grid() reproduces it, and line()/ring()
 * support smaller test devices.
 */
class Topology
{
  public:
    /** w x h grid with nearest-neighbor edges. */
    static Topology grid(int width, int height);

    /** Linear chain of n qubits. */
    static Topology line(int n);

    /** Cycle of n qubits. */
    static Topology ring(int n);

    /** Fully-connected device (distance 1 everywhere). */
    static Topology fullyConnected(int n);

    int numQubits() const { return num_qubits_; }

    /** True if a and b share an edge. */
    bool connected(int a, int b) const;

    /** Hop distance between two physical qubits. */
    int distance(int a, int b) const;

    const std::vector<int> &neighbors(int q) const;

    /** All edges as (a, b) with a < b. */
    const std::vector<std::pair<int, int>> &edges() const
    { return edges_; }

  private:
    explicit Topology(int n);
    void addEdge(int a, int b);
    void computeDistances();

    int num_qubits_;
    std::vector<std::vector<int>> adj_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> dist_;
};

} // namespace paqoc

#endif // PAQOC_TRANSPILE_TOPOLOGY_H_
