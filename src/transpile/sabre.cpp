#include "transpile/sabre.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "circuit/dag.h"
#include "common/error.h"

namespace paqoc {

namespace {

/** State of one forward routing pass. */
class RoutingPass
{
  public:
    RoutingPass(const Circuit &circuit, const Topology &topology,
                const SabreOptions &options, std::vector<int> layout)
        : circuit_(circuit), topo_(topology), opts_(options),
          l2p_(std::move(layout)), physical_(topology.numQubits())
    {
        p2l_.assign(static_cast<std::size_t>(topo_.numQubits()), -1);
        for (std::size_t l = 0; l < l2p_.size(); ++l)
            p2l_[static_cast<std::size_t>(l2p_[l])] = static_cast<int>(l);
        decay_.assign(static_cast<std::size_t>(topo_.numQubits()), 1.0);
    }

    /** Run the pass; returns the emitted physical circuit. */
    void run();

    const std::vector<int> &layout() const { return l2p_; }
    Circuit takePhysical() { return std::move(physical_); }
    int swapCount() const { return swaps_; }

  private:
    bool executable(const Gate &g) const;
    void emitMapped(const Gate &g);
    void applySwap(int pa, int pb);
    std::vector<int> extendedSet() const;
    double swapScore(int pa, int pb,
                     const std::vector<int> &extended) const;

    const Circuit &circuit_;
    const Topology &topo_;
    const SabreOptions &opts_;

    std::vector<int> l2p_;
    std::vector<int> p2l_;
    std::vector<double> decay_;

    Dag dag_;
    std::vector<int> unresolved_; // remaining pred count per gate
    std::vector<int> front_;

    Circuit physical_;
    int swaps_ = 0;
};

bool
RoutingPass::executable(const Gate &g) const
{
    if (g.arity() == 1)
        return true;
    const int pa = l2p_[static_cast<std::size_t>(g.qubits()[0])];
    const int pb = l2p_[static_cast<std::size_t>(g.qubits()[1])];
    return topo_.connected(pa, pb);
}

void
RoutingPass::emitMapped(const Gate &g)
{
    std::vector<int> mapped;
    mapped.reserve(g.qubits().size());
    for (int q : g.qubits())
        mapped.push_back(l2p_[static_cast<std::size_t>(q)]);
    if (g.isCustom()) {
        physical_.add(Gate::custom(g.label(), std::move(mapped),
                                   g.customUnitary(), g.absorbedCount(),
                                   g.latencyCap()));
    } else {
        physical_.add(Gate(g.op(), std::move(mapped), g.angle(),
                           g.symbol()));
    }
}

void
RoutingPass::applySwap(int pa, int pb)
{
    physical_.swap(pa, pb);
    ++swaps_;
    const int la = p2l_[static_cast<std::size_t>(pa)];
    const int lb = p2l_[static_cast<std::size_t>(pb)];
    if (la >= 0)
        l2p_[static_cast<std::size_t>(la)] = pb;
    if (lb >= 0)
        l2p_[static_cast<std::size_t>(lb)] = pa;
    std::swap(p2l_[static_cast<std::size_t>(pa)],
              p2l_[static_cast<std::size_t>(pb)]);
    decay_[static_cast<std::size_t>(pa)] += opts_.decayFactor;
    decay_[static_cast<std::size_t>(pb)] += opts_.decayFactor;
    if (opts_.decayResetInterval > 0
        && swaps_ % opts_.decayResetInterval == 0) {
        std::fill(decay_.begin(), decay_.end(), 1.0);
    }
}

std::vector<int>
RoutingPass::extendedSet() const
{
    // Collect the next few two-qubit gates reachable from the front to
    // bias swap choices toward upcoming communication.
    std::vector<int> extended;
    std::deque<int> queue(front_.begin(), front_.end());
    std::vector<char> seen(circuit_.size(), 0);
    while (!queue.empty()
           && static_cast<int>(extended.size()) < opts_.extendedSetSize) {
        const int n = queue.front();
        queue.pop_front();
        for (int s : dag_.succs[static_cast<std::size_t>(n)]) {
            if (seen[static_cast<std::size_t>(s)])
                continue;
            seen[static_cast<std::size_t>(s)] = 1;
            if (circuit_.gate(static_cast<std::size_t>(s)).arity() == 2)
                extended.push_back(s);
            queue.push_back(s);
        }
    }
    return extended;
}

double
RoutingPass::swapScore(int pa, int pb,
                       const std::vector<int> &extended) const
{
    // Score the layout as if (pa, pb) were swapped: mean front-layer
    // distance plus weighted mean lookahead distance, scaled by decay.
    auto mapped = [&](int logical) {
        const int p = l2p_[static_cast<std::size_t>(logical)];
        if (p == pa)
            return pb;
        if (p == pb)
            return pa;
        return p;
    };
    double front_cost = 0.0;
    int front_n = 0;
    for (int g : front_) {
        const Gate &gate = circuit_.gate(static_cast<std::size_t>(g));
        if (gate.arity() != 2)
            continue;
        front_cost += topo_.distance(mapped(gate.qubits()[0]),
                                     mapped(gate.qubits()[1]));
        ++front_n;
    }
    if (front_n > 0)
        front_cost /= front_n;
    double ext_cost = 0.0;
    if (!extended.empty()) {
        for (int g : extended) {
            const Gate &gate = circuit_.gate(static_cast<std::size_t>(g));
            ext_cost += topo_.distance(mapped(gate.qubits()[0]),
                                       mapped(gate.qubits()[1]));
        }
        ext_cost = opts_.extendedSetWeight * ext_cost
            / static_cast<double>(extended.size());
    }
    const double decay = std::max(decay_[static_cast<std::size_t>(pa)],
                                  decay_[static_cast<std::size_t>(pb)]);
    return decay * (front_cost + ext_cost);
}

void
RoutingPass::run()
{
    dag_ = buildDag(circuit_);
    unresolved_.resize(circuit_.size());
    for (std::size_t i = 0; i < circuit_.size(); ++i) {
        unresolved_[i] = static_cast<int>(dag_.preds[i].size());
        if (unresolved_[i] == 0)
            front_.push_back(static_cast<int>(i));
    }

    // Safety valve: routing must terminate well within this bound.
    const std::size_t max_steps = 1000 + circuit_.size() * 200;
    std::size_t steps = 0;

    while (!front_.empty()) {
        PAQOC_ASSERT(++steps < max_steps, "SABRE routing did not converge");

        // Emit every currently executable front gate.
        std::vector<int> blocked;
        bool progressed = false;
        for (int g : front_) {
            const Gate &gate = circuit_.gate(static_cast<std::size_t>(g));
            if (!executable(gate)) {
                blocked.push_back(g);
                continue;
            }
            emitMapped(gate);
            progressed = true;
            for (int s : dag_.succs[static_cast<std::size_t>(g)]) {
                if (--unresolved_[static_cast<std::size_t>(s)] == 0)
                    blocked.push_back(s);
            }
        }
        front_ = std::move(blocked);
        if (progressed || front_.empty())
            continue;

        // All front gates blocked: insert the best-scoring SWAP on an
        // edge touching a blocked gate's qubits.
        const std::vector<int> extended = extendedSet();
        double best = std::numeric_limits<double>::infinity();
        int best_a = -1, best_b = -1;
        for (int g : front_) {
            const Gate &gate = circuit_.gate(static_cast<std::size_t>(g));
            for (int lq : gate.qubits()) {
                const int p = l2p_[static_cast<std::size_t>(lq)];
                for (int nb : topo_.neighbors(p)) {
                    const int a = std::min(p, nb), b = std::max(p, nb);
                    const double score = swapScore(a, b, extended);
                    if (score < best) {
                        best = score;
                        best_a = a;
                        best_b = b;
                    }
                }
            }
        }
        PAQOC_ASSERT(best_a >= 0, "no SWAP candidate found");
        applySwap(best_a, best_b);
    }
}

/** Reverse a circuit's gate order (used for SABRE layout refinement). */
Circuit
reversed(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    for (std::size_t i = circuit.size(); i-- > 0;)
        out.add(circuit.gate(i));
    return out;
}

} // namespace

RoutingResult
sabreRoute(const Circuit &circuit, const Topology &topology,
           const SabreOptions &options)
{
    PAQOC_FATAL_IF(circuit.numQubits() > topology.numQubits(),
                   "circuit needs ", circuit.numQubits(),
                   " qubits but device has ", topology.numQubits());
    for (const Gate &g : circuit.gates())
        PAQOC_FATAL_IF(g.arity() > 2,
                       "route after decomposeToCx: gate ", g.label(),
                       " has arity ", g.arity());

    // Initial layout: random permutation refined by forward/backward
    // passes over the circuit (the SABRE bidirectional trick).
    Rng rng(options.seed);
    std::vector<int> layout(static_cast<std::size_t>(circuit.numQubits()));
    {
        std::vector<int> physical(
            static_cast<std::size_t>(topology.numQubits()));
        for (std::size_t i = 0; i < physical.size(); ++i)
            physical[i] = static_cast<int>(i);
        for (std::size_t i = physical.size() - 1; i > 0; --i)
            std::swap(physical[i], physical[rng.below(i + 1)]);
        for (std::size_t l = 0; l < layout.size(); ++l)
            layout[l] = physical[l];
    }

    const Circuit rev = reversed(circuit);
    for (int pass = 0; pass < options.layoutPasses; ++pass) {
        RoutingPass fwd(circuit, topology, options, layout);
        fwd.run();
        layout = fwd.layout();
        RoutingPass bwd(rev, topology, options, layout);
        bwd.run();
        layout = bwd.layout();
    }

    RoutingResult result;
    result.initialLayout = layout;
    RoutingPass final_pass(circuit, topology, options, std::move(layout));
    final_pass.run();
    result.finalLayout = final_pass.layout();
    result.swapCount = final_pass.swapCount();
    result.physical = final_pass.takePhysical();
    return result;
}

bool
respectsTopology(const Circuit &circuit, const Topology &topology)
{
    for (const Gate &g : circuit.gates()) {
        if (g.arity() == 1)
            continue;
        if (g.arity() != 2)
            return false;
        if (!topology.connected(g.qubits()[0], g.qubits()[1]))
            return false;
    }
    return true;
}

} // namespace paqoc
