#include "transpile/decompose.h"

#include "common/error.h"

namespace paqoc {

namespace {

constexpr double kPi = 3.14159265358979323846;

void
lowerToCx(const Gate &g, Circuit &out)
{
    const auto &q = g.qubits();
    switch (g.op()) {
      case Op::CZ:
        out.h(q[1]);
        out.cx(q[0], q[1]);
        out.h(q[1]);
        return;
      case Op::CP: {
        // cp(theta) = p(c, theta/2) cx p(t, -theta/2) cx p(t, theta/2).
        const double th = g.angle();
        out.p(q[0], th / 2.0, g.symbol());
        out.cx(q[0], q[1]);
        out.p(q[1], -th / 2.0, g.symbol());
        out.cx(q[0], q[1]);
        out.p(q[1], th / 2.0, g.symbol());
        return;
      }
      case Op::SWAP:
        out.cx(q[0], q[1]);
        out.cx(q[1], q[0]);
        out.cx(q[0], q[1]);
        return;
      case Op::CCX: {
        // Standard 6-CX Toffoli network.
        const int a = q[0], b = q[1], c = q[2];
        out.h(c);
        out.cx(b, c);
        out.tdg(c);
        out.cx(a, c);
        out.t(c);
        out.cx(b, c);
        out.tdg(c);
        out.cx(a, c);
        out.t(b);
        out.t(c);
        out.h(c);
        out.cx(a, b);
        out.t(a);
        out.tdg(b);
        out.cx(a, b);
        return;
      }
      default:
        out.add(g);
        return;
    }
}

void
lowerToBasis(const Gate &g, Circuit &out)
{
    const auto &q = g.qubits();
    switch (g.op()) {
      case Op::I:
        return;
      case Op::H:
      case Op::X:
      case Op::SX:
      case Op::CX:
      case Op::RZ:
      case Op::Custom:
        out.add(g);
        return;
      case Op::Z:
        out.rz(q[0], kPi);
        return;
      case Op::S:
        out.rz(q[0], kPi / 2.0);
        return;
      case Op::Sdg:
        out.rz(q[0], -kPi / 2.0);
        return;
      case Op::T:
        out.rz(q[0], kPi / 4.0);
        return;
      case Op::Tdg:
        out.rz(q[0], -kPi / 4.0);
        return;
      case Op::P:
        out.rz(q[0], g.angle(), g.symbol());
        return;
      case Op::Y:
        // Y = i X Z: apply Z then X (global phase dropped).
        out.rz(q[0], kPi);
        out.x(q[0]);
        return;
      case Op::RX:
        // rx(theta) = h rz(theta) h.
        out.h(q[0]);
        out.rz(q[0], g.angle(), g.symbol());
        out.h(q[0]);
        return;
      case Op::RY:
        // ry(theta) = rz(pi/2) rx(theta) rz(-pi/2): conjugating the X
        // axis a quarter turn about Z yields the Y axis.
        out.rz(q[0], -kPi / 2.0);
        out.h(q[0]);
        out.rz(q[0], g.angle(), g.symbol());
        out.h(q[0]);
        out.rz(q[0], kPi / 2.0);
        return;
      default:
        throw InternalError("lowerToBasis: unexpected multi-qubit gate");
    }
}

} // namespace

Circuit
decomposeToCx(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    for (const Gate &g : circuit.gates())
        lowerToCx(g, out);
    return out;
}

Circuit
decomposeToBasis(const Circuit &circuit)
{
    const Circuit cx_level = decomposeToCx(circuit);
    Circuit out(circuit.numQubits());
    for (const Gate &g : cx_level.gates())
        lowerToBasis(g, out);
    return out;
}

bool
isPhysicalBasis(const Circuit &circuit)
{
    for (const Gate &g : circuit.gates()) {
        switch (g.op()) {
          case Op::H:
          case Op::RZ:
          case Op::SX:
          case Op::X:
          case Op::CX:
            break;
          default:
            return false;
        }
    }
    return true;
}

} // namespace paqoc
