#ifndef PAQOC_TRANSPILE_DECOMPOSE_H_
#define PAQOC_TRANSPILE_DECOMPOSE_H_

#include "circuit/circuit.h"

namespace paqoc {

/**
 * Lower every multi-qubit gate to CX plus one-qubit gates:
 * CCX -> 6-CX Toffoli network, SWAP -> 3 CX, CZ -> H-conjugated CX,
 * CP -> CX + phase rotations. One-qubit gates pass through unchanged.
 * Preserves the circuit unitary up to global phase.
 */
Circuit decomposeToCx(const Circuit &circuit);

/**
 * Lower to the hardware basis gate set {h, rz, sx, x, cx} used for
 * physical circuits throughout the evaluation (IBM-style basis; we keep
 * h explicit as in the paper's physical-circuit figures so the mined
 * patterns stay recognizable). Implies decomposeToCx. Preserves the
 * circuit unitary up to global phase.
 */
Circuit decomposeToBasis(const Circuit &circuit);

/** True if every gate is in the {h, rz, sx, x, cx} basis. */
bool isPhysicalBasis(const Circuit &circuit);

} // namespace paqoc

#endif // PAQOC_TRANSPILE_DECOMPOSE_H_
