#ifndef PAQOC_TRANSPILE_SABRE_H_
#define PAQOC_TRANSPILE_SABRE_H_

#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "transpile/topology.h"

namespace paqoc {

/** Output of qubit routing: a hardware-respecting physical circuit. */
struct RoutingResult
{
    /** Circuit over *physical* qubits; every 2q gate is on an edge. */
    Circuit physical{1};
    /** initialLayout[logical] = physical qubit holding it at start. */
    std::vector<int> initialLayout;
    /** finalLayout[logical] = physical qubit holding it at the end. */
    std::vector<int> finalLayout;
    /** Number of SWAP gates inserted. */
    int swapCount = 0;
};

/** Tunables of the SABRE heuristic [Li, Ding, Xie ASPLOS'19]. */
struct SabreOptions
{
    /** Size of the lookahead (extended) set. */
    int extendedSetSize = 20;
    /** Weight of the extended set in the score. */
    double extendedSetWeight = 0.5;
    /** Multiplicative decay applied to recently swapped qubits. */
    double decayFactor = 0.001;
    /** Reset the decay table every this many swaps. */
    int decayResetInterval = 5;
    /** Forward/backward/forward passes to refine the initial layout. */
    int layoutPasses = 3;
    /** Seed for the random initial layout of the first pass. */
    std::uint64_t seed = 1;
};

/**
 * SABRE qubit mapping and routing. The input circuit may contain gates
 * of at most two qubits (run decomposeToCx first); SWAPs are inserted
 * so that every two-qubit gate executes on connected physical qubits.
 * SWAPs carry absorbedCount matching their 3-CX expansion cost only
 * after basis lowering; here they stay explicit swap gates.
 */
RoutingResult sabreRoute(const Circuit &circuit, const Topology &topology,
                         const SabreOptions &options = {});

/** True if all multi-qubit gates of the circuit respect the topology. */
bool respectsTopology(const Circuit &circuit, const Topology &topology);

} // namespace paqoc

#endif // PAQOC_TRANSPILE_SABRE_H_
