#include "transpile/topology.h"

#include <algorithm>
#include <deque>

#include "common/error.h"

namespace paqoc {

Topology::Topology(int n) : num_qubits_(n)
{
    PAQOC_FATAL_IF(n <= 0, "topology needs at least one qubit");
    adj_.resize(static_cast<std::size_t>(n));
}

void
Topology::addEdge(int a, int b)
{
    PAQOC_ASSERT(a != b && a >= 0 && b >= 0 && a < num_qubits_
                     && b < num_qubits_, "bad edge");
    if (connected(a, b))
        return;
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
    edges_.emplace_back(std::min(a, b), std::max(a, b));
}

Topology
Topology::grid(int width, int height)
{
    PAQOC_FATAL_IF(width <= 0 || height <= 0, "bad grid dimensions");
    Topology t(width * height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int q = y * width + x;
            if (x + 1 < width)
                t.addEdge(q, q + 1);
            if (y + 1 < height)
                t.addEdge(q, q + width);
        }
    }
    t.computeDistances();
    return t;
}

Topology
Topology::line(int n)
{
    Topology t(n);
    for (int i = 0; i + 1 < n; ++i)
        t.addEdge(i, i + 1);
    t.computeDistances();
    return t;
}

Topology
Topology::ring(int n)
{
    PAQOC_FATAL_IF(n < 3, "ring needs at least 3 qubits");
    Topology t = line(n);
    t.addEdge(n - 1, 0);
    t.computeDistances();
    return t;
}

Topology
Topology::fullyConnected(int n)
{
    Topology t(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            t.addEdge(i, j);
    t.computeDistances();
    return t;
}

bool
Topology::connected(int a, int b) const
{
    const auto &nbrs = adj_[static_cast<std::size_t>(a)];
    return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

int
Topology::distance(int a, int b) const
{
    return dist_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

const std::vector<int> &
Topology::neighbors(int q) const
{
    return adj_[static_cast<std::size_t>(q)];
}

void
Topology::computeDistances()
{
    const auto n = static_cast<std::size_t>(num_qubits_);
    dist_.assign(n, std::vector<int>(n, -1));
    for (std::size_t src = 0; src < n; ++src) {
        auto &d = dist_[src];
        d[src] = 0;
        std::deque<int> queue{static_cast<int>(src)};
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (int v : adj_[static_cast<std::size_t>(u)]) {
                if (d[static_cast<std::size_t>(v)] < 0) {
                    d[static_cast<std::size_t>(v)] =
                        d[static_cast<std::size_t>(u)] + 1;
                    queue.push_back(v);
                }
            }
        }
        for (std::size_t v = 0; v < n; ++v)
            PAQOC_FATAL_IF(d[v] < 0, "disconnected topology");
    }
}

} // namespace paqoc
