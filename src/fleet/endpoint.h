#ifndef PAQOC_FLEET_ENDPOINT_H_
#define PAQOC_FLEET_ENDPOINT_H_

#include <optional>
#include <string>

namespace paqoc {
namespace fleet {

/**
 * TCP endpoint helpers of the fleet front end (DESIGN.md §12). The
 * service historically listened on a Unix-domain socket only; the
 * fleet router adds an optional TCP listener beside it, and clients
 * accept "host:port" targets wherever they accept socket paths. These
 * helpers keep the parsing and the socket plumbing in one audited
 * place so the server, the router, and the client agree on what a TCP
 * endpoint spelling is.
 */

/** A parsed "host:port" endpoint spelling. */
struct HostPort
{
    std::string host;
    /** 0 is valid for listeners (kernel-assigned ephemeral port). */
    int port = 0;
};

/**
 * Parse a "host:port" spelling. Two forms are accepted:
 *
 *   host:port      exactly one ':' separating a non-empty host from
 *                  an all-digit port in [0, 65535]
 *   [host]:port    bracketed form for hosts that themselves contain
 *                  ':' -- IPv6 literals ("[::1]:7777" -> host "::1")
 *
 * Anything else (missing colon, empty host or port, non-numeric or
 * out-of-range port, unterminated or empty brackets, text between
 * ']' and ':') is rejected with a description in *error. Port 0 is
 * accepted because listeners use it to request an ephemeral port;
 * connecting to port 0 fails at connect time.
 */
std::optional<HostPort> parseHostPort(const std::string &spec,
                                      std::string *error = nullptr);

/**
 * Endpoint-spelling heuristic shared by client and tools: a target
 * that starts with '/' or '.' is always a Unix socket path; otherwise
 * it is a TCP endpoint iff it parses as host:port. ("a.sock" is a
 * path, "localhost:7777" is TCP.)
 */
bool looksLikeTcpEndpoint(const std::string &target);

/**
 * Bind + listen on host:port with SO_REUSEADDR (a restarted daemon
 * must not spend TIME_WAIT locked out of its own port). Returns the
 * listening fd, or -1 with a description in *error. When `bound_port`
 * is non-null it receives the resolved port -- the kernel's choice
 * when `port` was 0.
 */
int listenTcp(const std::string &host, int port, int backlog,
              std::string *error, int *bound_port = nullptr);

/**
 * Connect to host:port (name resolution via getaddrinfo). Returns the
 * connected fd, or -1 with a description in *error.
 *
 * `timeout_ms > 0` bounds the whole attempt (all resolved addresses
 * together) via non-blocking connect + poll: a black-holed SYN fails
 * within the budget instead of blocking for the kernel default
 * (~2 minutes), which SO_RCVTIMEO set afterwards can never fix.
 * `timeout_ms <= 0` keeps the historical blocking connect. The
 * returned fd is always in blocking mode.
 */
int connectTcp(const std::string &host, int port, std::string *error,
               int timeout_ms = 0);

} // namespace fleet
} // namespace paqoc

#endif // PAQOC_FLEET_ENDPOINT_H_
