#ifndef PAQOC_FLEET_FAIR_QUEUE_H_
#define PAQOC_FLEET_FAIR_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace paqoc {
namespace fleet {

/**
 * Deterministic weighted fair-share queue (stride scheduling,
 * DESIGN.md §12). Each tenant owns a FIFO lane with a configured
 * weight; pop() interleaves lanes so that over any window each
 * backlogged tenant receives service proportional to its weight,
 * while an idle tenant's unused share is redistributed rather than
 * accumulated (no starvation, no banked credit).
 *
 * Mechanics: a lane advances a virtual "pass" by
 * stride = kStrideScale / weight per popped item; pop() always picks
 * the backlogged lane with the minimum pass. A lane that goes from
 * idle to backlogged rejoins at the global pass front (the pass of
 * the most recently popped item), so returning tenants neither jump
 * the queue nor owe service for the time they were idle.
 *
 * Determinism: ties on pass break lexicographically by tenant name
 * (lanes live in an ordered map), so for a fixed arrival order the
 * pop order is reproducible across runs and platforms -- the fairness
 * tests assert exact sequences, not distributions.
 *
 * Not thread-safe: the owner (SessionScheduler) serializes access
 * under its own mutex.
 */
template <typename T>
class FairShareQueue
{
  public:
    /**
     * Pass units per unit weight; weight w advances by scale/w. The
     * scale is 720720 (= LCM of 1..16) << 10, so every weight up to
     * 16 -- and many beyond -- divides it exactly and the documented
     * interleavings (e.g. `a b b b` for 1:3) hold without rounding
     * drift. Larger weights round down but never to zero.
     */
    static constexpr std::uint64_t kStrideScale =
        std::uint64_t{720720} << 10;

    /** Configure a tenant's weight (>= 1; default 1). */
    void
    setWeight(const std::string &tenant, int weight)
    {
        Lane &lane = lanes_[tenant];
        lane.weight = weight < 1 ? 1 : weight;
    }

    int
    weight(const std::string &tenant) const
    {
        const auto it = lanes_.find(tenant);
        return it == lanes_.end() ? 1 : it->second.weight;
    }

    void
    push(const std::string &tenant, T item)
    {
        Lane &lane = lanes_[tenant];
        if (lane.items.empty())
            lane.pass = global_pass_; // rejoin at the current front
        lane.items.push_back(std::move(item));
        ++size_;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /**
     * Pop the next item in weighted fair-share order; nullopt when
     * empty. `tenant_out`, when non-null, receives the owning tenant.
     */
    std::optional<T>
    pop(std::string *tenant_out = nullptr)
    {
        Lane *best = nullptr;
        for (auto &entry : lanes_) {
            Lane &lane = entry.second;
            if (lane.items.empty())
                continue;
            // Strict < keeps the tie-break on the lexicographically
            // first tenant (map order).
            if (best == nullptr || lane.pass < best->pass) {
                best = &lane;
                if (tenant_out != nullptr)
                    *tenant_out = entry.first;
            }
        }
        if (best == nullptr)
            return std::nullopt;
        T item = std::move(best->items.front());
        best->items.pop_front();
        --size_;
        global_pass_ = best->pass;
        const std::uint64_t stride =
            kStrideScale / static_cast<std::uint64_t>(best->weight);
        best->pass += stride > 0 ? stride : 1;
        return item;
    }

  private:
    struct Lane
    {
        int weight = 1;
        std::uint64_t pass = 0;
        std::deque<T> items;
    };

    std::map<std::string, Lane> lanes_; // ordered: deterministic ties
    std::uint64_t global_pass_ = 0;
    std::size_t size_ = 0;
};

} // namespace fleet
} // namespace paqoc

#endif // PAQOC_FLEET_FAIR_QUEUE_H_
