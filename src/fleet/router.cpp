#include "fleet/router.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "fleet/endpoint.h"
#include "fleet/fdpass.h"

namespace paqoc {
namespace fleet {

namespace {

// Self-pipe for SIGTERM/SIGINT delivery into the router's poll loop
// (and for requestStop() from another thread). Written from a signal
// handler, so it must be async-signal-safe raw I/O.
int g_signal_pipe[2] = {-1, -1};
volatile sig_atomic_t g_signal_seen = 0;

extern "C" void
routerSignalHandler(int signum)
{
    g_signal_seen = signum;
    const unsigned char byte = static_cast<unsigned char>(signum);
    // paqoc-lint: allow(raw-io) -- async-signal-safe handler
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void
makePipe(int fds[2])
{
    PAQOC_FATAL_IF(::pipe(fds) != 0, "fleet: pipe(): ",
                   std::strerror(errno));
    for (int i = 0; i < 2; ++i)
        ::fcntl(fds[i], F_SETFD, FD_CLOEXEC);
    // The writer (heartbeat / signal handler) must never block.
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Drain all readable bytes; returns bytes read (0 = EOF, -1 = EAGAIN). */
ssize_t
drainPipe(int fd)
{
    char buf[256];
    ssize_t total = -1;
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            total = total < 0 ? n : total + n;
            continue;
        }
        if (n == 0)
            return 0;
        if (errno == EINTR)
            continue;
        return total;
    }
}

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PAQOC_FATAL_IF(path.size() >= sizeof addr.sun_path,
                   "fleet: socket path '", path, "' too long");
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PAQOC_FATAL_IF(fd < 0, "fleet: socket(): ", std::strerror(errno));
    ::unlink(path.c_str());
    PAQOC_FATAL_IF(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr)
                       != 0,
                   "fleet: cannot bind '", path, "': ",
                   std::strerror(errno));
    PAQOC_FATAL_IF(::listen(fd, 64) != 0, "fleet: listen(): ",
                   std::strerror(errno));
    return fd;
}

} // namespace

Router::Router(RouterOptions options,
               std::function<int(const FleetWorkerContext &)> worker)
    : options_(std::move(options)), worker_(std::move(worker))
{
    PAQOC_FATAL_IF(options_.workers < 1,
                   "fleet: --fleet needs at least 1 worker");
    slots_.resize(static_cast<std::size_t>(options_.workers));
}

Router::~Router()
{
    for (Slot &slot : slots_)
        closeSlotParentFds(slot);
    if (unix_fd_ >= 0)
        ::close(unix_fd_);
    if (tcp_fd_ >= 0)
        ::close(tcp_fd_);
}

void
Router::say(const std::string &message) const
{
    if (options_.log)
        options_.log(message);
}

void
Router::closeSlotParentFds(Slot &slot)
{
    if (slot.controlFd >= 0) {
        ::close(slot.controlFd);
        slot.controlFd = -1;
    }
    if (slot.heartbeatFd >= 0) {
        ::close(slot.heartbeatFd);
        slot.heartbeatFd = -1;
    }
}

void
Router::start()
{
    if (started_)
        return;
    started_ = true;
    PAQOC_FATAL_IF(options_.socketPath.empty()
                       && options_.listenHost.empty(),
                   "fleet: no listening endpoint configured");
    if (!options_.socketPath.empty())
        unix_fd_ = listenUnix(options_.socketPath);
    if (!options_.listenHost.empty()) {
        std::string error;
        tcp_fd_ = listenTcp(options_.listenHost, options_.listenPort,
                            64, &error, &tcp_port_);
        PAQOC_FATAL_IF(tcp_fd_ < 0, "fleet: ", error);
    }
    makePipe(g_signal_pipe);
    ::fcntl(g_signal_pipe[0], F_SETFL, O_NONBLOCK);
    for (int i = 0; i < options_.workers; ++i)
        spawnWorker(i);
}

void
Router::spawnWorker(int slot_index)
{
    Slot &slot = slots_[static_cast<std::size_t>(slot_index)];
    int control[2];
    PAQOC_FATAL_IF(::socketpair(AF_UNIX, SOCK_STREAM, 0, control) != 0,
                   "fleet: socketpair(): ", std::strerror(errno));
    int heartbeat[2];
    makePipe(heartbeat);
    ::fcntl(heartbeat[0], F_SETFL, O_NONBLOCK);

    const int incarnation = slot.incarnation + 1;
    const pid_t pid = ::fork();
    PAQOC_FATAL_IF(pid < 0, "fleet: fork(): ", std::strerror(errno));
    if (pid == 0) {
        // Worker incarnation: shed every router-side fd so the only
        // links back are this slot's control pair and heartbeat pipe.
        ::signal(SIGTERM, SIG_DFL);
        ::signal(SIGINT, SIG_DFL);
        if (unix_fd_ >= 0)
            ::close(unix_fd_);
        if (tcp_fd_ >= 0)
            ::close(tcp_fd_);
        ::close(g_signal_pipe[0]);
        ::close(g_signal_pipe[1]);
        for (Slot &other : slots_)
            closeSlotParentFds(other);
        ::close(control[0]);
        ::close(heartbeat[0]);
        if (slot_index == 0 && incarnation == 0) {
            // Same convention as --supervise: worker-only fault
            // injection arms exactly once, in the fleet's first
            // worker, so chaos tests crash one worker and assert the
            // restarted incarnation serves cleanly.
            const char *spec =
                std::getenv("PAQOC_WORKER_FAILPOINTS");
            if (spec != nullptr && *spec != '\0')
                failpoint::armFromSpec(spec);
        }
        FleetWorkerContext ctx;
        ctx.slot = slot_index;
        ctx.incarnation = incarnation;
        ctx.controlFd = control[1];
        ctx.heartbeatFd = heartbeat[1];
        ctx.heartbeatIntervalMs = options_.heartbeatIntervalMs;
        int code = 1;
        try {
            code = worker_(ctx);
        } catch (const std::exception &e) {
            // paqoc-lint: allow(printf-output) -- last words before _exit()
            std::fprintf(stderr, "paqocd fleet worker: %s\n", e.what());
            code = 1;
        }
        std::fflush(nullptr);
        ::_exit(code);
    }

    ::close(control[1]);
    ::close(heartbeat[1]);
    slot.pid = pid;
    slot.controlFd = control[0];
    slot.heartbeatFd = heartbeat[0];
    slot.incarnation = incarnation;
    slot.alive = true;
    slot.killedForHang = false;
    slot.lastBeatMs = nowMs();
    slot.restartDueMs = 0.0;
    if (incarnation == 0)
        slot.backoffMs = options_.backoffMs;
    say("worker " + std::to_string(slot_index) + " incarnation "
        + std::to_string(incarnation) + " started (pid "
        + std::to_string(static_cast<long>(pid)) + ")");
}

void
Router::dispatchConnection(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0)
        return;
    // fleet.accept: the router mishandles (or dies on, with abort) a
    // freshly accepted connection; the client sees a severed socket
    // and rides to another attempt on its retry/backoff policy.
    const failpoint::Hit hit = failpoint::evaluate("fleet.accept");
    if (hit.action != failpoint::Action::Off
        && hit.action != failpoint::Action::DelayMs) {
        ::close(fd);
        return;
    }
    const int n = options_.workers;
    for (int k = 0; k < n; ++k) {
        const int i = (next_slot_ + k) % n;
        Slot &slot = slots_[static_cast<std::size_t>(i)];
        if (!slot.alive || slot.controlFd < 0)
            continue;
        if (sendFd(slot.controlFd, fd)) {
            ++slot.handed;
            next_slot_ = (i + 1) % n;
            ::close(fd); // the worker holds its own copy now
            return;
        }
    }
    // No worker took it (all dead or handoffs failed): sever the
    // connection so the client's retry policy kicks in.
    ::close(fd);
}

void
Router::beginShutdown(int signum)
{
    if (stopping_)
        return;
    stopping_ = true;
    stop_signal_ = signum;
    // Stop accepting first -- a drained fleet must not keep admitting.
    if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        unix_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }
    const int forward = signum > 0 ? signum : SIGTERM;
    for (const Slot &slot : slots_)
        if (slot.alive)
            ::kill(slot.pid, forward);
    say(signum > 0
            ? "forwarding signal " + std::to_string(signum)
                  + " to workers; draining"
            : "draining fleet");
}

void
Router::reapWorker(int slot_index)
{
    Slot &slot = slots_[static_cast<std::size_t>(slot_index)];
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
    closeSlotParentFds(slot);
    slot.alive = false;
    slot.lastStatus = status;
    const std::string who = "worker " + std::to_string(slot_index);

    if (stopping_) {
        say(who + " stopped");
        return;
    }
    if (!slot.killedForHang && WIFEXITED(status)
        && WEXITSTATUS(status) == 0) {
        // A clean solo exit is a client-requested shutdown: drain the
        // whole fleet rather than silently serving at lower capacity.
        say(who + " exited cleanly; draining fleet");
        beginShutdown(0);
        return;
    }

    const std::string why = slot.killedForHang ? "hung"
        : WIFSIGNALED(status)
        ? "killed by signal " + std::to_string(WTERMSIG(status))
        : "exited with status " + std::to_string(WEXITSTATUS(status));
    if (slot.incarnation >= options_.maxRestarts) {
        slot.dead = true;
        say(who + " " + why + "; restart budget ("
            + std::to_string(options_.maxRestarts)
            + ") spent, slot retired");
        return;
    }
    say(who + " " + why + "; restarting in "
        + std::to_string(static_cast<long>(slot.backoffMs)) + " ms");
    slot.restartDueMs = nowMs() + slot.backoffMs;
    slot.backoffMs = std::min(slot.backoffMs * 2.0,
                              options_.backoffCapMs);
}

int
Router::runLoop()
{
    PAQOC_FATAL_IF(!started_, "fleet: runLoop() before start()");
    struct sigaction sa{};
    sa.sa_handler = routerSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({g_signal_pipe[0], POLLIN, 0});
        const std::size_t unix_at = fds.size();
        if (unix_fd_ >= 0)
            fds.push_back({unix_fd_, POLLIN, 0});
        const std::size_t tcp_at = fds.size();
        if (tcp_fd_ >= 0)
            fds.push_back({tcp_fd_, POLLIN, 0});
        const std::size_t beats_at = fds.size();
        std::vector<int> beat_slots;
        for (int i = 0; i < options_.workers; ++i) {
            const Slot &slot = slots_[static_cast<std::size_t>(i)];
            if (slot.alive && slot.heartbeatFd >= 0) {
                fds.push_back({slot.heartbeatFd, POLLIN, 0});
                beat_slots.push_back(i);
            }
        }

        const int r = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), 100);
        if (r < 0 && errno != EINTR)
            break;

        if (fds[0].revents & POLLIN) {
            drainPipe(g_signal_pipe[0]);
            beginShutdown(g_signal_seen != 0 ? g_signal_seen
                                             : SIGTERM);
        }
        if (!stopping_ && unix_fd_ >= 0
            && (fds[unix_at].revents & POLLIN))
            dispatchConnection(unix_fd_);
        if (!stopping_ && tcp_fd_ >= 0
            && (fds[tcp_at].revents & POLLIN))
            dispatchConnection(tcp_fd_);

        for (std::size_t b = 0; b < beat_slots.size(); ++b) {
            const int i = beat_slots[b];
            Slot &slot = slots_[static_cast<std::size_t>(i)];
            if (!slot.alive)
                continue; // reaped earlier this iteration
            if (fds[beats_at + b].revents
                & (POLLIN | POLLHUP | POLLERR)) {
                const ssize_t n = drainPipe(slot.heartbeatFd);
                if (n > 0)
                    slot.lastBeatMs = nowMs();
                else if (n == 0)
                    reapWorker(i);
            }
        }

        const double now = nowMs();
        for (int i = 0; i < options_.workers; ++i) {
            Slot &slot = slots_[static_cast<std::size_t>(i)];
            if (slot.alive && !slot.killedForHang
                && options_.heartbeatTimeoutMs > 0.0
                && now - slot.lastBeatMs
                    > options_.heartbeatTimeoutMs) {
                say("worker " + std::to_string(i)
                    + " heartbeat silent > "
                    + std::to_string(static_cast<long>(
                        options_.heartbeatTimeoutMs))
                    + " ms; killing hung worker");
                ::kill(slot.pid, SIGKILL);
                slot.killedForHang = true;
            }
            if (!stopping_ && !slot.alive && !slot.dead
                && slot.restartDueMs > 0.0
                && now >= slot.restartDueMs)
                spawnWorker(i);
        }

        bool any_alive = false;
        bool any_pending = false;
        for (const Slot &slot : slots_) {
            any_alive = any_alive || slot.alive;
            any_pending = any_pending
                || (!stopping_ && !slot.dead
                    && slot.restartDueMs > 0.0);
        }
        if (!any_alive && !any_pending)
            break;
    }

    if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        unix_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
    g_signal_pipe[0] = g_signal_pipe[1] = -1;

    if (stopping_)
        return 0;
    // Every slot spent its restart budget: surface the last status the
    // way the single-worker supervisor does.
    const int status = slots_.back().lastStatus;
    return WIFEXITED(status) ? WEXITSTATUS(status)
                             : 128 + WTERMSIG(status);
}

int
Router::run()
{
    start();
    return runLoop();
}

void
Router::requestStop()
{
    if (g_signal_pipe[1] >= 0)
        routerSignalHandler(SIGTERM);
}

std::vector<Router::SlotStats>
Router::slotStats() const
{
    std::vector<SlotStats> stats;
    stats.reserve(slots_.size());
    for (const Slot &slot : slots_)
        stats.push_back(SlotStats{slot.incarnation + 1, slot.handed});
    return stats;
}

} // namespace fleet
} // namespace paqoc
