#ifndef PAQOC_FLEET_ROUTER_H_
#define PAQOC_FLEET_ROUTER_H_

#include <functional>
#include <string>
#include <vector>

namespace paqoc {
namespace fleet {

/** Pool-manager configuration of `paqocd --fleet N` (DESIGN.md §12). */
struct RouterOptions
{
    /** Unix-domain listening socket ("" = none). */
    std::string socketPath;
    /** TCP listener host ("" = no TCP listener). */
    std::string listenHost;
    /** TCP listener port (0 = kernel-assigned ephemeral). */
    int listenPort = 0;
    /** Worker processes to keep alive. */
    int workers = 2;
    /** Restart budget per worker slot (crashes + hangs combined). */
    int maxRestarts = 5;
    /** First restart delay of a slot; doubles per restart, capped. */
    double backoffMs = 200.0;
    double backoffCapMs = 30000.0;
    /** How often a healthy worker beats. */
    double heartbeatIntervalMs = 250.0;
    /** Heartbeat silence after which a worker is SIGKILLed (0 = off). */
    double heartbeatTimeoutMs = 5000.0;
    /** Router event log (may be empty). */
    std::function<void(const std::string &)> log;
};

/** What a fleet worker incarnation needs from its router. */
struct FleetWorkerContext
{
    /** Stable worker slot in [0, workers). */
    int slot = 0;
    /** 0 for the slot's first spawn, incremented per restart. */
    int incarnation = 0;
    /** Control socket: receive client connections via fleet::recvFd.
     *  EOF here means the router is gone -- drain and exit. */
    int controlFd = -1;
    /** Write end of the heartbeat pipe. */
    int heartbeatFd = -1;
    double heartbeatIntervalMs = 250.0;
};

/**
 * Multi-worker fleet router: the `--supervise` single-worker state
 * machine (service/supervisor.h) generalized to a pool. The router
 * owns the listening endpoints (Unix socket and/or TCP), accepts every
 * client connection, and hands each accepted socket to a worker over
 * that slot's control socketpair via SCM_RIGHTS (fleet/fdpass.h),
 * round-robin over live slots. Per slot it keeps the supervisor's
 * guarantees: heartbeat monitoring, SIGKILL on hang, bounded
 * exponentially backed-off restarts, PAQOC_WORKER_FAILPOINTS armed in
 * slot 0's first incarnation only.
 *
 * Shutdown is drain-aware: on SIGTERM/SIGINT (or requestStop()) the
 * router closes its listeners, forwards the signal to every worker,
 * and waits for each to drain its in-flight requests and exit. One
 * worker exiting cleanly on its own (a client's "shutdown" op) also
 * drains the whole fleet -- a half-shutdown fleet would silently serve
 * at reduced capacity otherwise.
 *
 * Failure injection: `fleet.accept` fires on every accepted
 * connection (return-error drops it, abort kills the router);
 * `fleet.fdpass` fires inside the handoff (see fleet/fdpass.h).
 *
 * This file and service/supervisor.cpp are the only places allowed to
 * call fork()/kill()/waitpid() (lint rule `process-control`).
 */
class Router
{
  public:
    /**
     * `worker` runs in the forked child with the slot's context and
     * its return value becomes the child's exit status. It must not
     * depend on any thread started after Router::start() forked.
     */
    Router(RouterOptions options,
           std::function<int(const FleetWorkerContext &)> worker);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Bind the listeners and fork the workers. Must be called while
     * the process is still single-threaded (fork safety).
     */
    void start();

    /** Monitor/dispatch until shutdown; returns the exit code. */
    int runLoop();

    /** start() + runLoop(). */
    int run();

    /** Ask runLoop() to drain and return (thread-safe). */
    void requestStop();

    /** Resolved TCP port (after start(); -1 without a TCP listener). */
    int tcpPort() const { return tcp_port_; }

    struct SlotStats
    {
        /** Spawns of this slot (1 = never restarted). */
        int incarnations = 0;
        /** Connections handed to this slot. */
        long handed = 0;
    };
    /** Per-slot lifetime stats (valid after runLoop() returned). */
    std::vector<SlotStats> slotStats() const;

  private:
    struct Slot
    {
        pid_t pid = -1;
        int controlFd = -1;   ///< parent end of the control pair
        int heartbeatFd = -1; ///< read end of the heartbeat pipe
        int incarnation = -1; ///< -1 = never spawned
        bool alive = false;
        bool dead = false; ///< restart budget spent
        bool killedForHang = false;
        double lastBeatMs = 0.0;
        double backoffMs = 0.0;
        double restartDueMs = 0.0; ///< 0 = no restart scheduled
        long handed = 0;
        int lastStatus = 0;
    };

    void spawnWorker(int slot_index);
    void closeSlotParentFds(Slot &slot);
    /** Accept + hand off one connection from listener `fd`. */
    void dispatchConnection(int listen_fd);
    void reapWorker(int slot_index);
    void beginShutdown(int signum);
    void say(const std::string &message) const;

    RouterOptions options_;
    std::function<int(const FleetWorkerContext &)> worker_;
    std::vector<Slot> slots_;
    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    int next_slot_ = 0;
    bool started_ = false;
    bool stopping_ = false;
    int stop_signal_ = 0;
};

} // namespace fleet
} // namespace paqoc

#endif // PAQOC_FLEET_ROUTER_H_
