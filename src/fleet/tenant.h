#ifndef PAQOC_FLEET_TENANT_H_
#define PAQOC_FLEET_TENANT_H_

#include <string>

#include "common/json.h"

namespace paqoc {
namespace fleet {

/**
 * Tenant identity of the multi-tenant service (DESIGN.md §12).
 * Requests carry an optional "tenant" string member; everything
 * without one is the anonymous tenant, so single-user deployments and
 * old clients keep working unchanged while still being metered.
 */

/** Tenant of requests that carry no identity. */
extern const char kAnonymousTenant[];

/**
 * Extract the request's tenant: the non-empty string "tenant" member,
 * else kAnonymousTenant (a non-string or empty member is treated as
 * absent rather than rejected -- identity is advisory, not auth).
 */
std::string tenantFromRequest(const Json &request);

/**
 * Parse a "name=weight" spelling (the `--tenant-weight` flag).
 * Returns false with a description in *error when the name is empty
 * or the weight is not an integer >= 1.
 */
bool parseTenantWeight(const std::string &spec, std::string *name,
                       int *weight, std::string *error = nullptr);

} // namespace fleet
} // namespace paqoc

#endif // PAQOC_FLEET_TENANT_H_
