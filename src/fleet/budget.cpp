#include "fleet/budget.h"

#include <algorithm>

namespace paqoc {
namespace fleet {

namespace {

double
toMs(TenantBudgetLedger::Clock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

void
TenantBudgetLedger::pruneLocked(Account &account, Clock::time_point now)
{
    const auto window = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(options_.windowMs));
    while (!account.charges.empty()
           && account.charges.front().at + window <= now) {
        account.iters -= account.charges.front().iters;
        account.wallMs -= account.charges.front().wallMs;
        account.charges.pop_front();
    }
    if (account.charges.empty()) {
        // Guard against floating-point drift accumulating forever.
        account.iters = 0.0;
        account.wallMs = 0.0;
    }
}

TenantBudgetLedger::Remaining
TenantBudgetLedger::remaining(const std::string &tenant,
                              Clock::time_point now)
{
    MutexLock lock(mutex_);
    Remaining out;
    Account &account = accounts_[tenant];
    pruneLocked(account, now);
    if (options_.iters > 0.0) {
        out.iters = std::max(0.0, options_.iters - account.iters);
        if (account.iters >= options_.iters)
            out.exhausted = true;
    }
    if (options_.wallMs > 0.0) {
        out.wallMs = std::max(0.0, options_.wallMs - account.wallMs);
        if (account.wallMs >= options_.wallMs)
            out.exhausted = true;
    }
    if (out.exhausted && !account.charges.empty()) {
        const double age = toMs(now - account.charges.front().at);
        out.retryAfterMs = std::max(0.0, options_.windowMs - age);
    }
    return out;
}

void
TenantBudgetLedger::charge(const std::string &tenant, double iters,
                           double wallMs, Clock::time_point now)
{
    if (iters <= 0.0 && wallMs <= 0.0)
        return;
    MutexLock lock(mutex_);
    Account &account = accounts_[tenant];
    pruneLocked(account, now);
    account.charges.push_back(Charge{now, std::max(0.0, iters),
                                     std::max(0.0, wallMs)});
    account.iters += account.charges.back().iters;
    account.wallMs += account.charges.back().wallMs;
}

TenantBudgetLedger::Spend
TenantBudgetLedger::windowSpend(const std::string &tenant,
                                Clock::time_point now)
{
    MutexLock lock(mutex_);
    const auto it = accounts_.find(tenant);
    if (it == accounts_.end())
        return Spend{};
    pruneLocked(it->second, now);
    return Spend{it->second.iters, it->second.wallMs};
}

std::vector<std::string>
TenantBudgetLedger::tenants() const
{
    MutexLock lock(mutex_);
    std::vector<std::string> names;
    names.reserve(accounts_.size());
    for (const auto &entry : accounts_)
        names.push_back(entry.first);
    return names;
}

} // namespace fleet
} // namespace paqoc
