#include "fleet/tenant.h"

namespace paqoc {
namespace fleet {

const char kAnonymousTenant[] = "anonymous";

std::string
tenantFromRequest(const Json &request)
{
    if (request.isObject() && request.contains("tenant")
        && request.at("tenant").isString()
        && !request.at("tenant").asString().empty())
        return request.at("tenant").asString();
    return kAnonymousTenant;
}

bool
parseTenantWeight(const std::string &spec, std::string *name,
                  int *weight, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = "'" + spec + "': " + why;
        return false;
    };
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos)
        return fail("expected name=weight");
    const std::string tenant = spec.substr(0, eq);
    const std::string weight_text = spec.substr(eq + 1);
    if (tenant.empty())
        return fail("empty tenant name");
    if (weight_text.empty())
        return fail("empty weight");
    long value = 0;
    for (const char c : weight_text) {
        if (c < '0' || c > '9')
            return fail("weight is not a number");
        value = value * 10 + (c - '0');
        if (value > 1000000)
            return fail("weight out of range [1, 1000000]");
    }
    if (value < 1)
        return fail("weight must be >= 1");
    *name = tenant;
    *weight = static_cast<int>(value);
    return true;
}

} // namespace fleet
} // namespace paqoc
