#ifndef PAQOC_FLEET_BUDGET_H_
#define PAQOC_FLEET_BUDGET_H_

#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace paqoc {
namespace fleet {

/**
 * Per-tenant replenishing budget configuration (DESIGN.md §12). Where
 * QuotaLimits caps a single request, a tenant budget caps a tenant's
 * *rate*: spend is charged against a bucket and refunded a sliding
 * window later, EOSIO delegate-bandwidth style. Zero means unmetered.
 */
struct BudgetOptions
{
    /** Optimizer iterations a tenant may spend per window. */
    double iters = 0.0;
    /** Compute wall-clock milliseconds a tenant may spend per window. */
    double wallMs = 0.0;
    /** Sliding-window length over which spend is refunded. */
    double windowMs = 10000.0;

    bool any() const { return iters > 0.0 || wallMs > 0.0; }
};

/**
 * Thread-safe per-tenant spend accounting over a sliding window. Each
 * charge is timestamped; a charge stops counting against the tenant
 * exactly `windowMs` after it was incurred (discrete refund, not
 * linear decay -- simpler to reason about and to test). Every tenant
 * gets its own bucket of the same configured size, so one tenant
 * exhausting its budget never affects another's.
 *
 * Clock injection: callers pass `now` explicitly, so tests replay
 * charge/replenish sequences against a synthetic clock instead of
 * sleeping through real windows.
 */
class TenantBudgetLedger
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit TenantBudgetLedger(BudgetOptions options = {})
        : options_(options)
    {}

    const BudgetOptions &options() const { return options_; }

    /** What a tenant may still spend right now. */
    struct Remaining
    {
        /** Unspent iterations (0 when the dimension is unmetered). */
        double iters = 0.0;
        /** Unspent wall-clock ms (0 when unmetered). */
        double wallMs = 0.0;
        /** True when any metered dimension is fully spent. */
        bool exhausted = false;
        /**
         * When exhausted: milliseconds until the oldest in-window
         * charge expires and replenishes some budget.
         */
        double retryAfterMs = 0.0;
    };
    Remaining remaining(const std::string &tenant,
                        Clock::time_point now);

    /** Record spend; charges are never rejected (admission already
     *  happened), they just push the tenant toward exhaustion. */
    void charge(const std::string &tenant, double iters, double wallMs,
                Clock::time_point now);

    /** A tenant's total in-window spend (for the stats op). */
    struct Spend
    {
        double iters = 0.0;
        double wallMs = 0.0;
    };
    Spend windowSpend(const std::string &tenant, Clock::time_point now);

    /** Tenants with any recorded spend, in name order. */
    std::vector<std::string> tenants() const;

  private:
    struct Charge
    {
        Clock::time_point at;
        double iters = 0.0;
        double wallMs = 0.0;
    };
    struct Account
    {
        std::deque<Charge> charges;
        /** Running in-window sums (kept consistent by prune). */
        double iters = 0.0;
        double wallMs = 0.0;
    };

    /** Drop charges older than the window; refunds their spend. */
    void pruneLocked(Account &account, Clock::time_point now)
        PAQOC_REQUIRES(mutex_);

    BudgetOptions options_;
    mutable Mutex mutex_;
    std::map<std::string, Account> accounts_ PAQOC_GUARDED_BY(mutex_);
};

} // namespace fleet
} // namespace paqoc

#endif // PAQOC_FLEET_BUDGET_H_
