#include "fleet/fdpass.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>

#include "common/failpoint.h"

namespace paqoc {
namespace fleet {

bool
sendFd(int channel, int fd)
{
    // fleet.fdpass: the handoff "fails" (or the router dies outright
    // with abort) between accept() and the worker receiving the
    // connection -- exactly where a router crash loses the most.
    if (failpoint::evaluate("fleet.fdpass").action
        != failpoint::Action::Off)
        return false;

    char byte = 'f';
    iovec iov{&byte, 1};
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof control;
    cmsghdr *cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));

    for (;;) {
        // SCM_RIGHTS needs sendmsg with an ancillary payload;
        // MSG_NOSIGNAL keeps the EPIPE-not-SIGPIPE discipline of the
        // checked wrappers. The whole file is allowlisted by the
        // raw-io rule: cmsg handoffs have no checked* spelling, and
        // the fleet.fdpass failpoint above covers fault injection.
        const ssize_t n = ::sendmsg(channel, &msg, MSG_NOSIGNAL);
        if (n >= 0)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
}

int
recvFd(int channel)
{
    char byte = 0;
    iovec iov{&byte, 1};
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof control;

    for (;;) {
        const ssize_t n = ::recvmsg(channel, &msg, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return -1; // EOF: router closed the control channel
        for (cmsghdr *cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
             cmsg = CMSG_NXTHDR(&msg, cmsg)) {
            if (cmsg->cmsg_level == SOL_SOCKET
                && cmsg->cmsg_type == SCM_RIGHTS) {
                int fd = -1;
                std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
                return fd;
            }
        }
        return -1; // data byte without an fd: protocol error
    }
}

} // namespace fleet
} // namespace paqoc
