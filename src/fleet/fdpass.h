#ifndef PAQOC_FLEET_FDPASS_H_
#define PAQOC_FLEET_FDPASS_H_

namespace paqoc {
namespace fleet {

/**
 * SCM_RIGHTS file-descriptor passing between the fleet router and its
 * workers (DESIGN.md §12). The router accepts client connections and
 * hands each accepted socket to a worker over that worker's control
 * socketpair: one data byte carries one SCM_RIGHTS ancillary fd. The
 * worker's accept loop receives fds here instead of calling accept().
 *
 * Failure injection: sendFd evaluates the `fleet.fdpass` failpoint
 * before touching the socket, so chaos tests can fail or abort the
 * router mid-handoff (the window where a dropped connection would
 * strand a client without a response).
 */

/**
 * Send `fd` over the connected socket `channel`. Returns true on
 * success; false when the peer is gone or the `fleet.fdpass`
 * failpoint injected a failure (the caller still owns `fd`).
 */
bool sendFd(int channel, int fd);

/**
 * Receive one passed fd from `channel`. Returns the fd (now owned by
 * the caller), or -1 on EOF / error (EOF means the router closed the
 * control channel -- the worker should drain and exit).
 */
int recvFd(int channel);

} // namespace fleet
} // namespace paqoc

#endif // PAQOC_FLEET_FDPASS_H_
