#include "fleet/endpoint.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace paqoc {
namespace fleet {

namespace {

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

/** getaddrinfo for a numeric-or-named host + port; nullptr on failure. */
addrinfo *
resolve(const std::string &host, int port, bool for_bind,
        std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (for_bind)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    const int rc =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
    if (rc != 0) {
        setError(error, "cannot resolve '" + host + "': "
                            + ::gai_strerror(rc));
        return nullptr;
    }
    return result;
}

/**
 * One deadline-bounded connect attempt against an already-created
 * socket. Returns 0 on success, else -1 with the errno-style cause in
 * *cause. The socket is left in blocking mode on success.
 */
int
connectWithDeadline(int fd, const sockaddr *addr, socklen_t addrlen,
                    int remaining_ms, std::string *cause)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        *cause = std::string("fcntl(): ") + std::strerror(errno);
        return -1;
    }
    int rc = ::connect(fd, addr, addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
        *cause = std::strerror(errno);
        return -1;
    }
    if (rc != 0) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        do {
            rc = ::poll(&pfd, 1, remaining_ms > 0 ? remaining_ms : 0);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0) {
            *cause = "connect timed out";
            return -1;
        }
        if (rc < 0) {
            *cause = std::string("poll(): ") + std::strerror(errno);
            return -1;
        }
        int so_error = 0;
        socklen_t len = sizeof so_error;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len)
            != 0) {
            *cause =
                std::string("getsockopt(): ") + std::strerror(errno);
            return -1;
        }
        if (so_error != 0) {
            *cause = std::strerror(so_error);
            return -1;
        }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) {
        *cause = std::string("fcntl(): ") + std::strerror(errno);
        return -1;
    }
    return 0;
}

} // namespace

std::optional<HostPort>
parseHostPort(const std::string &spec, std::string *error)
{
    HostPort hp;
    std::string port_text;
    if (!spec.empty() && spec[0] == '[') {
        // Bracketed form: "[host]:port", for hosts that contain ':'
        // themselves (IPv6 literals). The bracket pair must be
        // followed immediately by ":port".
        const std::size_t close = spec.find(']');
        if (close == std::string::npos) {
            setError(error, "'" + spec + "': unterminated '['");
            return std::nullopt;
        }
        hp.host = spec.substr(1, close - 1);
        if (hp.host.empty()) {
            setError(error, "'" + spec + "': empty host");
            return std::nullopt;
        }
        if (close + 1 >= spec.size() || spec[close + 1] != ':') {
            setError(error,
                     "'" + spec + "': expected ':' after ']'");
            return std::nullopt;
        }
        port_text = spec.substr(close + 2);
    } else {
        const std::size_t colon = spec.find(':');
        if (colon == std::string::npos) {
            setError(error, "'" + spec + "': expected host:port");
            return std::nullopt;
        }
        if (spec.find(':', colon + 1) != std::string::npos) {
            setError(error, "'" + spec
                                + "': more than one ':' (bracket an "
                                  "IPv6 literal: \"[::1]:port\")");
            return std::nullopt;
        }
        hp.host = spec.substr(0, colon);
        port_text = spec.substr(colon + 1);
        if (hp.host.empty()) {
            setError(error, "'" + spec + "': empty host");
            return std::nullopt;
        }
        if (hp.host.find(']') != std::string::npos) {
            setError(error, "'" + spec + "': ']' without '['");
            return std::nullopt;
        }
    }
    if (port_text.empty()) {
        setError(error, "'" + spec + "': empty port");
        return std::nullopt;
    }
    long port = 0;
    for (const char c : port_text) {
        if (c < '0' || c > '9') {
            setError(error, "'" + spec + "': port is not a number");
            return std::nullopt;
        }
        port = port * 10 + (c - '0');
        if (port > 65535) {
            setError(error,
                     "'" + spec + "': port out of range [0, 65535]");
            return std::nullopt;
        }
    }
    hp.port = static_cast<int>(port);
    return hp;
}

bool
looksLikeTcpEndpoint(const std::string &target)
{
    if (target.empty() || target[0] == '/' || target[0] == '.')
        return false;
    return parseHostPort(target).has_value();
}

int
listenTcp(const std::string &host, int port, int backlog,
          std::string *error, int *bound_port)
{
    addrinfo *addrs = resolve(host, port, /*for_bind=*/true, error);
    if (addrs == nullptr)
        return -1;
    int fd = -1;
    std::string last_error = "no usable address";
    for (addrinfo *ai = addrs; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::string("socket(): ")
                         + std::strerror(errno);
            continue;
        }
        // A daemon restarting into its previous port must not lose to
        // TIME_WAIT leftovers of its own connections.
        const int one = 1;
        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                           sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0
            || ::listen(fd, backlog) != 0) {
            last_error = std::string("bind/listen: ")
                         + std::strerror(errno);
            ::close(fd);
            fd = -1;
            continue;
        }
        break;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        setError(error, "cannot listen on " + host + ":"
                            + std::to_string(port) + ": "
                            + last_error);
        return -1;
    }
    if (bound_port != nullptr) {
        sockaddr_storage bound{};
        socklen_t len = sizeof bound;
        *bound_port = port;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len)
            == 0) {
            if (bound.ss_family == AF_INET)
                *bound_port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
            else if (bound.ss_family == AF_INET6)
                *bound_port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&bound)
                        ->sin6_port);
        }
    }
    return fd;
}

int
connectTcp(const std::string &host, int port, std::string *error,
           int timeout_ms)
{
    addrinfo *addrs = resolve(host, port, /*for_bind=*/false, error);
    if (addrs == nullptr)
        return -1;
    // One deadline covers every resolved address together: the caller
    // asked for "reach this endpoint within T", not "T per A record".
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(timeout_ms);
    int fd = -1;
    std::string last_error = "no usable address";
    for (addrinfo *ai = addrs; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::string("socket(): ")
                         + std::strerror(errno);
            continue;
        }
        int rc = 0;
        if (timeout_ms > 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0) {
                last_error = "connect timed out";
                ::close(fd);
                fd = -1;
                break;
            }
            rc = connectWithDeadline(fd, ai->ai_addr, ai->ai_addrlen,
                                     static_cast<int>(left),
                                     &last_error);
        } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
            last_error = std::strerror(errno);
            rc = -1;
        }
        if (rc != 0) {
            ::close(fd);
            fd = -1;
            continue;
        }
        break;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        setError(error, "cannot connect to " + host + ":"
                            + std::to_string(port) + ": "
                            + last_error);
        return -1;
    }
    return fd;
}

} // namespace fleet
} // namespace paqoc
