#include "fleet/endpoint.h"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace paqoc {
namespace fleet {

namespace {

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

/** getaddrinfo for a numeric-or-named host + port; nullptr on failure. */
addrinfo *
resolve(const std::string &host, int port, bool for_bind,
        std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (for_bind)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    const int rc =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
    if (rc != 0) {
        setError(error, "cannot resolve '" + host + "': "
                            + ::gai_strerror(rc));
        return nullptr;
    }
    return result;
}

} // namespace

std::optional<HostPort>
parseHostPort(const std::string &spec, std::string *error)
{
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
        setError(error, "'" + spec + "': expected host:port");
        return std::nullopt;
    }
    if (spec.find(':', colon + 1) != std::string::npos) {
        setError(error, "'" + spec
                            + "': more than one ':' (bracketed IPv6 "
                              "is not supported)");
        return std::nullopt;
    }
    HostPort hp;
    hp.host = spec.substr(0, colon);
    const std::string port_text = spec.substr(colon + 1);
    if (hp.host.empty()) {
        setError(error, "'" + spec + "': empty host");
        return std::nullopt;
    }
    if (port_text.empty()) {
        setError(error, "'" + spec + "': empty port");
        return std::nullopt;
    }
    long port = 0;
    for (const char c : port_text) {
        if (c < '0' || c > '9') {
            setError(error, "'" + spec + "': port is not a number");
            return std::nullopt;
        }
        port = port * 10 + (c - '0');
        if (port > 65535) {
            setError(error,
                     "'" + spec + "': port out of range [0, 65535]");
            return std::nullopt;
        }
    }
    hp.port = static_cast<int>(port);
    return hp;
}

bool
looksLikeTcpEndpoint(const std::string &target)
{
    if (target.empty() || target[0] == '/' || target[0] == '.')
        return false;
    return parseHostPort(target).has_value();
}

int
listenTcp(const std::string &host, int port, int backlog,
          std::string *error, int *bound_port)
{
    addrinfo *addrs = resolve(host, port, /*for_bind=*/true, error);
    if (addrs == nullptr)
        return -1;
    int fd = -1;
    std::string last_error = "no usable address";
    for (addrinfo *ai = addrs; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::string("socket(): ")
                         + std::strerror(errno);
            continue;
        }
        // A daemon restarting into its previous port must not lose to
        // TIME_WAIT leftovers of its own connections.
        const int one = 1;
        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                           sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0
            || ::listen(fd, backlog) != 0) {
            last_error = std::string("bind/listen: ")
                         + std::strerror(errno);
            ::close(fd);
            fd = -1;
            continue;
        }
        break;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        setError(error, "cannot listen on " + host + ":"
                            + std::to_string(port) + ": "
                            + last_error);
        return -1;
    }
    if (bound_port != nullptr) {
        sockaddr_storage bound{};
        socklen_t len = sizeof bound;
        *bound_port = port;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len)
            == 0) {
            if (bound.ss_family == AF_INET)
                *bound_port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
            else if (bound.ss_family == AF_INET6)
                *bound_port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&bound)
                        ->sin6_port);
        }
    }
    return fd;
}

int
connectTcp(const std::string &host, int port, std::string *error)
{
    addrinfo *addrs = resolve(host, port, /*for_bind=*/false, error);
    if (addrs == nullptr)
        return -1;
    int fd = -1;
    std::string last_error = "no usable address";
    for (addrinfo *ai = addrs; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::string("socket(): ")
                         + std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
            last_error = std::strerror(errno);
            ::close(fd);
            fd = -1;
            continue;
        }
        break;
    }
    ::freeaddrinfo(addrs);
    if (fd < 0) {
        setError(error, "cannot connect to " + host + ":"
                            + std::to_string(port) + ": "
                            + last_error);
        return -1;
    }
    return fd;
}

} // namespace fleet
} // namespace paqoc
