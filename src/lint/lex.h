#ifndef PAQOC_LINT_LEX_H_
#define PAQOC_LINT_LEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace paqoc {
namespace lint {

/**
 * Shared lexical layer under every analyzer pass (DESIGN.md §13).
 * Deliberately not a C++ parser: the linter's contract is that it
 * builds and runs anywhere the project does, with no libclang. The
 * passes therefore work on *stripped* source text (comments, string
 * and character literals blanked in place, so offsets and line
 * numbers still match the original file) and on a flat token stream
 * over that text.
 */

/**
 * Blank out comments, string literals (including raw strings), and
 * character literals, preserving length and newlines so line/column
 * arithmetic on the result matches the original file.
 */
std::string stripCommentsAndStrings(const std::string &src);

/** Split on '\n'; the terminator is not included in the lines. */
std::vector<std::string> splitLines(const std::string &text);

/** 1-based line number of byte `offset` in `text`. */
int lineOfOffset(const std::string &text, std::size_t offset);

/** Whole-word occurrence test (identifier boundaries on both sides). */
bool containsWord(const std::string &line, const std::string &word);

bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/**
 * Suppressions: `// paqoc-lint: allow(rule-a, rule-b) note` covers the
 * named rules on its own line and the next one. Parsed from the *raw*
 * text (the comment itself is blanked by stripping). Whole-program
 * passes honor the same map: a cross-file finding lands on a concrete
 * witness line, and an allow() on that line (or the one above it)
 * silences it.
 */
std::map<int, std::set<std::string>>
parseSuppressions(const std::vector<std::string> &raw_lines);

/** One string literal in the raw text (quotes excluded). */
struct StringLit
{
    std::string text;
    std::size_t offset = 0; ///< offset of the opening quote
    int line = 0;           ///< 1-based
};

/**
 * Every ordinary "..." literal in `raw`, in file order. Raw strings
 * and character literals are skipped (no failpoint name or armed spec
 * is spelled that way), as are literals inside comments.
 */
std::vector<StringLit> stringLiterals(const std::string &raw);

/** One lexed token over stripped text. */
struct Token
{
    enum class Kind
    {
        Ident, ///< identifier or keyword
        Punct, ///< one punctuation unit ("::" and "->" fused)
    };
    Kind kind = Kind::Punct;
    std::string text;
    std::size_t offset = 0;

    bool is(const char *s) const { return text == s; }
    bool isIdent() const { return kind == Kind::Ident; }
};

/**
 * Flat token stream over stripped text. Numbers are dropped (no pass
 * needs them); preprocessor directives are kept as tokens so the
 * scope machine can skip over #include / #define lines.
 */
std::vector<Token> tokenize(const std::string &stripped);

/** FNV-1a 64-bit content hash (the incremental cache's file key). */
std::uint64_t fnv1a(const std::string &data);

/**
 * Names of variables/members declared with an unordered container
 * type in stripped text. Handles nested template arguments by
 * matching angle brackets, and skips annotation macros between the
 * type and the terminating ;/=/{.
 */
std::set<std::string> unorderedDeclNames(const std::string &stripped);

/** One range-for statement found in stripped text. */
struct RangeFor
{
    std::size_t offset = 0; ///< offset of the `for` keyword
    std::string rangeExpr;  ///< text after the top-level ':'
};

std::vector<RangeFor> findRangeFors(const std::string &stripped);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_LEX_H_
