#include "lint/sarif.h"

#include <map>

namespace paqoc {
namespace lint {

Json
sarifReport(const std::vector<Finding> &findings)
{
    Json doc = Json::object();
    doc.set("$schema",
            Json("https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/"
                 "schemas/sarif-schema-2.1.0.json"));
    doc.set("version", Json("2.1.0"));

    Json driver = Json::object();
    driver.set("name", Json("paqoc_lint"));
    driver.set("informationUri",
               Json("https://example.invalid/paqoc/DESIGN.md"));
    Json rules = Json::array();
    std::map<std::string, int> ruleIndex;
    {
        int i = 0;
        for (const std::string &id : ruleNames()) {
            Json rule = Json::object();
            rule.set("id", Json(id));
            Json shortDesc = Json::object();
            shortDesc.set("text", Json(ruleDescription(id)));
            rule.set("shortDescription", std::move(shortDesc));
            rules.push(std::move(rule));
            ruleIndex[id] = i++;
        }
    }
    driver.set("rules", std::move(rules));
    Json tool = Json::object();
    tool.set("driver", std::move(driver));

    Json results = Json::array();
    for (const Finding &f : findings) {
        Json result = Json::object();
        result.set("ruleId", Json(f.rule));
        const auto it = ruleIndex.find(f.rule);
        if (it != ruleIndex.end())
            result.set("ruleIndex", Json(it->second));
        result.set("level", Json("warning"));
        Json message = Json::object();
        message.set("text", Json(f.message));
        result.set("message", std::move(message));
        Json artifact = Json::object();
        artifact.set("uri", Json(f.file));
        Json region = Json::object();
        region.set("startLine", Json(f.line));
        Json physical = Json::object();
        physical.set("artifactLocation", std::move(artifact));
        physical.set("region", std::move(region));
        Json location = Json::object();
        location.set("physicalLocation", std::move(physical));
        Json locations = Json::array();
        locations.push(std::move(location));
        result.set("locations", std::move(locations));
        results.push(std::move(result));
    }

    Json run = Json::object();
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    Json runs = Json::array();
    runs.push(std::move(run));
    doc.set("runs", std::move(runs));
    return doc;
}

} // namespace lint
} // namespace paqoc
