#include "lint/lex.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace paqoc {
namespace lint {

std::string
stripCommentsAndStrings(const std::string &src)
{
    std::string out = src;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto blank = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < n; ++k)
            if (out[k] != '\n')
                out[k] = ' ';
    };
    while (i < n) {
        const char c = src[i];
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t j = i;
            while (j < n && src[j] != '\n')
                ++j;
            blank(i, j);
            i = j;
        } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/'))
                ++j;
            j = std::min(n, j + 2);
            blank(i, j);
            i = j;
        } else if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            // Raw string R"delim( ... )delim"
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(' && delim.size() < 16)
                delim += src[p++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = src.find(closer, p);
            const std::size_t j =
                end == std::string::npos ? n : end + closer.size();
            blank(i, j);
            i = j;
        } else if (c == '"' || c == '\'') {
            std::size_t j = i + 1;
            while (j < n && src[j] != c) {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            j = std::min(n, j + 1);
            blank(i, j);
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

int
lineOfOffset(const std::string &text, std::size_t offset)
{
    int line = 1;
    for (std::size_t i = 0; i < offset && i < text.size(); ++i)
        if (text[i] == '\n')
            ++line;
    return line;
}

bool
containsWord(const std::string &line, const std::string &word)
{
    std::size_t pos = 0;
    auto is_word = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while ((pos = line.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_word(line[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok = end >= line.size() || !is_word(line[end]);
        if (left_ok && right_ok)
            return true;
        pos = end;
    }
    return false;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix)
        == 0;
}

std::map<int, std::set<std::string>>
parseSuppressions(const std::vector<std::string> &raw_lines)
{
    std::map<int, std::set<std::string>> allowed;
    const std::regex pattern(
        R"(paqoc-lint:\s*allow\(([A-Za-z0-9_,\- ]+)\))");
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(raw_lines[i], m, pattern))
            continue;
        std::stringstream rules(m[1].str());
        std::string rule;
        while (std::getline(rules, rule, ',')) {
            const std::size_t a = rule.find_first_not_of(" \t");
            const std::size_t b = rule.find_last_not_of(" \t");
            if (a == std::string::npos)
                continue;
            const std::string name = rule.substr(a, b - a + 1);
            const int line = static_cast<int>(i) + 1;
            allowed[line].insert(name);
            allowed[line + 1].insert(name);
        }
    }
    return allowed;
}

std::vector<StringLit>
stringLiterals(const std::string &raw)
{
    std::vector<StringLit> lits;
    std::size_t i = 0;
    const std::size_t n = raw.size();
    int line = 1;
    while (i < n) {
        const char c = raw[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
            while (i < n && raw[i] != '\n')
                ++i;
        } else if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(raw[i] == '*' && raw[i + 1] == '/')) {
                if (raw[i] == '\n')
                    ++line;
                ++i;
            }
            i = std::min(n, i + 2);
        } else if (c == 'R' && i + 1 < n && raw[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && raw[p] != '(' && delim.size() < 16)
                delim += raw[p++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = raw.find(closer, p);
            const std::size_t j =
                end == std::string::npos ? n : end + closer.size();
            for (std::size_t k = i; k < j; ++k)
                if (raw[k] == '\n')
                    ++line;
            i = j;
        } else if (c == '"') {
            StringLit lit;
            lit.offset = i;
            lit.line = line;
            std::size_t j = i + 1;
            while (j < n && raw[j] != '"') {
                if (raw[j] == '\\' && j + 1 < n) {
                    lit.text += raw[j + 1];
                    j += 2;
                } else {
                    if (raw[j] == '\n')
                        ++line;
                    lit.text += raw[j];
                    ++j;
                }
            }
            i = std::min(n, j + 1);
            lits.push_back(std::move(lit));
        } else if (c == '\'') {
            std::size_t j = i + 1;
            while (j < n && raw[j] != '\'') {
                if (raw[j] == '\\')
                    ++j;
                ++j;
            }
            i = std::min(n, j + 1);
        } else {
            ++i;
        }
    }
    return lits;
}

std::vector<Token>
tokenize(const std::string &stripped)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    const std::size_t n = stripped.size();
    auto is_ident_start = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (i < n) {
        const char c = stripped[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
        } else if (is_ident_start(c)) {
            Token t;
            t.kind = Token::Kind::Ident;
            t.offset = i;
            while (i < n && is_ident(stripped[i]))
                t.text += stripped[i++];
            tokens.push_back(std::move(t));
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            // Numbers (incl. hex, suffixes) carry no signal; skip.
            while (i < n
                   && (std::isalnum(static_cast<unsigned char>(
                           stripped[i]))
                       || stripped[i] == '.' || stripped[i] == '\''))
                ++i;
        } else {
            Token t;
            t.offset = i;
            if (c == ':' && i + 1 < n && stripped[i + 1] == ':') {
                t.text = "::";
                i += 2;
            } else if (c == '-' && i + 1 < n && stripped[i + 1] == '>') {
                t.text = "->";
                i += 2;
            } else {
                t.text = std::string(1, c);
                ++i;
            }
            tokens.push_back(std::move(t));
        }
    }
    return tokens;
}

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::set<std::string>
unorderedDeclNames(const std::string &stripped)
{
    std::set<std::string> names;
    static const std::regex decl(R"(unordered_(?:map|set)\s*<)");
    auto begin =
        std::sregex_iterator(stripped.begin(), stripped.end(), decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t pos =
            static_cast<std::size_t>(it->position() + it->length());
        int depth = 1;
        while (pos < stripped.size() && depth > 0) {
            if (stripped[pos] == '<')
                ++depth;
            else if (stripped[pos] == '>')
                --depth;
            ++pos;
        }
        // The declared name is the first identifier after the closing
        // '>' (skipping whitespace, '&', '*').
        while (pos < stripped.size()
               && (std::isspace(
                       static_cast<unsigned char>(stripped[pos]))
                   || stripped[pos] == '&' || stripped[pos] == '*'))
            ++pos;
        std::string name;
        while (pos < stripped.size()
               && (std::isalnum(
                       static_cast<unsigned char>(stripped[pos]))
                   || stripped[pos] == '_'))
            name += stripped[pos++];
        if (!name.empty())
            names.insert(name);
    }
    return names;
}

std::vector<RangeFor>
findRangeFors(const std::string &stripped)
{
    std::vector<RangeFor> found;
    std::size_t pos = 0;
    while ((pos = stripped.find("for", pos)) != std::string::npos) {
        const std::size_t at = pos;
        pos += 3;
        const bool word =
            (at == 0
             || !(std::isalnum(
                      static_cast<unsigned char>(stripped[at - 1]))
                  || stripped[at - 1] == '_'))
            && (pos >= stripped.size()
                || !(std::isalnum(
                         static_cast<unsigned char>(stripped[pos]))
                     || stripped[pos] == '_'));
        if (!word)
            continue;
        std::size_t p = pos;
        while (p < stripped.size()
               && std::isspace(static_cast<unsigned char>(stripped[p])))
            ++p;
        if (p >= stripped.size() || stripped[p] != '(')
            continue;
        // Find the matching ')' and a top-level ':' (not '::').
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t q = p; q < stripped.size(); ++q) {
            const char c = stripped[q];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                --depth;
                if (depth == 0) {
                    close = q;
                    break;
                }
            } else if (c == ':' && depth == 1
                       && colon == std::string::npos) {
                const bool dbl =
                    (q + 1 < stripped.size() && stripped[q + 1] == ':')
                    || (q > 0 && stripped[q - 1] == ':');
                if (!dbl)
                    colon = q;
            } else if (c == ';' && depth == 1) {
                break; // classic for-loop, not a range-for
            }
        }
        if (colon == std::string::npos || close == std::string::npos)
            continue;
        found.push_back(
            {at, stripped.substr(colon + 1, close - colon - 1)});
    }
    return found;
}

} // namespace lint
} // namespace paqoc
