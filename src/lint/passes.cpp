#include "lint/passes.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "lint/lex.h"

namespace paqoc {
namespace lint {

namespace {

bool
isSuppressed(const FileIndex &file, const std::string &rule, int line)
{
    const auto it = file.suppressions.find(line);
    return it != file.suppressions.end() && it->second.count(rule) > 0;
}

/** (file, function) coordinate into a ProgramIndex. */
struct FnRef
{
    int file = -1;
    int fn = -1;
};

/**
 * The linker: global name tables over every file index plus the
 * call-resolution heuristics shared by the lock-order and taint
 * passes. Resolution returns a *unique* qualified function name or
 * nothing -- an ambiguous call never contributes an edge, because in
 * a lexical analysis a wrong edge (a false deadlock, a false taint
 * path) costs more than a missed one.
 */
class Linker
{
  public:
    explicit Linker(const ProgramIndex &index) : index_(index)
    {
        std::map<std::string, std::set<int>> definedIn;
        for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
            const FileIndex &file = index.files[fi];
            for (std::size_t ki = 0; ki < file.functions.size(); ++ki) {
                const FunctionInfo &fn = file.functions[ki];
                const FnRef ref{static_cast<int>(fi),
                                static_cast<int>(ki)};
                byQualified_[fn.name].push_back(ref);
                definedIn[fn.name].insert(static_cast<int>(fi));
                const std::size_t sep = fn.name.rfind("::");
                const std::string base = sep == std::string::npos
                    ? fn.name
                    : fn.name.substr(sep + 2);
                byBase_[base].push_back(ref);
                if (!fn.klass.empty())
                    classes_.insert(fn.klass);
            }
        }
        // A name defined in more than one file is ambiguous -- two
        // file-static helpers spelled alike (nowMs, main, ...) must
        // not merge their summaries through a shared name. Resolution
        // refuses such names; their in-function analysis still runs.
        for (const auto &[name, files] : definedIn)
            if (files.size() > 1)
                ambiguous_.insert(name);
    }

    const FunctionInfo &
    fn(const FnRef &ref) const
    {
        return index_.files[static_cast<std::size_t>(ref.file)]
            .functions[static_cast<std::size_t>(ref.fn)];
    }

    const FileIndex &
    file(const FnRef &ref) const
    {
        return index_.files[static_cast<std::size_t>(ref.file)];
    }

    /** All definitions sharing one qualified name (overload merge). */
    const std::vector<FnRef> *
    definitionsOf(const std::string &qualified) const
    {
        const auto it = byQualified_.find(qualified);
        return it == byQualified_.end() ? nullptr : &it->second;
    }

    /**
     * Resolve one call site made from `caller` to a qualified name in
     * the index, or "" when unknown or ambiguous.
     */
    std::string
    resolve(const FnRef &caller, const CallSite &call) const
    {
        const FunctionInfo &from = fn(caller);
        const FileIndex &homeFile = file(caller);
        std::string hint = call.hint;
        if (!hint.empty()) {
            if (hint == "this")
                return from.klass.empty()
                    ? std::string()
                    : known(from.klass + "::" + call.callee);
            if (endsWith(hint, "()")) {
                // g().f(): find g's return type, then R::f.
                const std::string g = hint.substr(0, hint.size() - 2);
                const std::string rt = returnTypeOf(from, g);
                return rt.empty() ? std::string()
                                  : known(rt + "::" + call.callee);
            }
            if (classes_.count(hint) > 0)
                return known(hint + "::" + call.callee);
            const auto bind = homeFile.typeBindings.find(hint);
            if (bind != homeFile.typeBindings.end())
                return known(bind->second + "::" + call.callee);
            return "";
        }
        // Bare call: prefer a method on the caller's own class.
        if (!from.klass.empty()) {
            const std::string method =
                from.klass + "::" + call.callee;
            if (!known(method).empty())
                return method;
        }
        return known(call.callee);
    }

  private:
    /**
     * `qualified` if it names definitions in exactly one file, else
     * "" (unknown, or ambiguous across files).
     */
    std::string
    known(const std::string &qualified) const
    {
        if (byQualified_.count(qualified) == 0
            || ambiguous_.count(qualified) > 0)
            return std::string();
        return qualified;
    }

    /** Return type of accessor `g` as seen from `from`'s class/file. */
    std::string
    returnTypeOf(const FunctionInfo &from, const std::string &g) const
    {
        if (!from.klass.empty()) {
            const auto it = byQualified_.find(from.klass + "::" + g);
            if (it != byQualified_.end())
                return fn(it->second.front()).returnType;
        }
        const auto it = byBase_.find(g);
        if (it == byBase_.end())
            return "";
        // Accept only if every definition agrees on the return type.
        std::string rt;
        for (const FnRef &ref : it->second) {
            const std::string &r = fn(ref).returnType;
            if (r.empty())
                continue;
            if (rt.empty())
                rt = r;
            else if (rt != r)
                return "";
        }
        return rt;
    }

    const ProgramIndex &index_;
    std::map<std::string, std::vector<FnRef>> byQualified_;
    std::map<std::string, std::vector<FnRef>> byBase_;
    std::set<std::string> classes_;
    std::set<std::string> ambiguous_;
};

} // namespace

std::vector<LockEdge>
buildLockOrderGraph(const ProgramIndex &index)
{
    const Linker link(index);

    // Resolved call graph (qualified name -> qualified callees) and
    // transitive lock-acquisition fixpoint over it.
    std::map<std::string, std::set<std::string>> callees;
    std::map<std::string, std::set<std::string>> acquired;
    for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
        const FileIndex &file = index.files[fi];
        for (std::size_t ki = 0; ki < file.functions.size(); ++ki) {
            const FunctionInfo &fn = file.functions[ki];
            const FnRef ref{static_cast<int>(fi), static_cast<int>(ki)};
            for (const LockSite &ls : fn.locks)
                acquired[fn.name].insert(ls.lockId);
            for (const CallSite &cs : fn.calls) {
                const std::string target = link.resolve(ref, cs);
                if (!target.empty() && target != fn.name)
                    callees[fn.name].insert(target);
            }
        }
    }
    for (bool changed = true; changed;) {
        changed = false;
        for (const auto &[caller, targets] : callees) {
            std::set<std::string> &acc = acquired[caller];
            const std::size_t before = acc.size();
            for (const std::string &t : targets) {
                const auto it = acquired.find(t);
                if (it != acquired.end())
                    acc.insert(it->second.begin(), it->second.end());
            }
            if (acc.size() != before)
                changed = true;
        }
    }

    // Edges: direct nestings, then call-with-held acquisitions.
    std::map<std::pair<std::string, std::string>, LockEdge> edges;
    auto addEdge = [&](LockEdge e) {
        const auto key = std::make_pair(e.from, e.to);
        const auto it = edges.find(key);
        if (it == edges.end()
            || std::make_pair(e.file, e.line)
                < std::make_pair(it->second.file, it->second.line))
            edges[key] = std::move(e);
    };
    for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
        const FileIndex &file = index.files[fi];
        for (std::size_t ki = 0; ki < file.functions.size(); ++ki) {
            const FunctionInfo &fn = file.functions[ki];
            const FnRef ref{static_cast<int>(fi), static_cast<int>(ki)};
            for (const NestedLock &nl : fn.nested)
                addEdge({nl.from, nl.to, file.path, nl.line, ""});
            for (const CallSite &cs : fn.calls) {
                if (cs.heldLocks.empty())
                    continue;
                const std::string target = link.resolve(ref, cs);
                if (target.empty() || target == fn.name)
                    continue;
                const auto it = acquired.find(target);
                if (it == acquired.end())
                    continue;
                for (const std::string &held : cs.heldLocks)
                    for (const std::string &to : it->second)
                        if (held != to)
                            addEdge({held, to, file.path, cs.line,
                                     target});
            }
        }
    }
    std::vector<LockEdge> out;
    out.reserve(edges.size());
    for (auto &[key, e] : edges)
        out.push_back(std::move(e));
    return out; // map iteration is already (from, to) sorted
}

std::vector<Finding>
lockOrderCycles(const ProgramIndex &index,
                const std::vector<LockEdge> &graph)
{
    // Adjacency with witness lookup.
    std::map<std::string, std::vector<const LockEdge *>> adj;
    for (const LockEdge &e : graph)
        adj[e.from].push_back(&e);

    // Every elementary cycle would be overkill; one witness cycle per
    // distinct node set is what a human needs. DFS from each node in
    // sorted order, following sorted edges, reporting the first path
    // that returns to its origin; canonicalize by the cycle's minimal
    // rotation to deduplicate.
    std::set<std::string> seenCycles;
    std::vector<Finding> findings;
    auto fileOf = [&](const std::string &path) -> const FileIndex * {
        for (const FileIndex &f : index.files)
            if (f.path == path)
                return &f;
        return nullptr;
    };
    for (const auto &[origin, outEdges] : adj) {
        // Iterative DFS carrying the edge path.
        std::vector<const LockEdge *> path;
        std::set<std::string> onPath{origin};
        std::function<bool(const std::string &)> dfs =
            [&](const std::string &node) -> bool {
            const auto it = adj.find(node);
            if (it == adj.end())
                return false;
            for (const LockEdge *e : it->second) {
                if (e->to == origin) {
                    path.push_back(e);
                    return true;
                }
                if (onPath.count(e->to) > 0)
                    continue; // smaller cycle; its own origin reports it
                onPath.insert(e->to);
                path.push_back(e);
                if (dfs(e->to))
                    return true;
                path.pop_back();
                onPath.erase(e->to);
            }
            return false;
        };
        if (!dfs(origin))
            continue;
        // Canonical key: rotate the node list to start at its minimum.
        std::vector<std::string> nodes;
        for (const LockEdge *e : path)
            nodes.push_back(e->from);
        const auto minIt = std::min_element(nodes.begin(), nodes.end());
        std::rotate(nodes.begin(), minIt, nodes.end());
        std::string key;
        for (const std::string &nd : nodes)
            key += nd + "|";
        if (!seenCycles.insert(key).second)
            continue;
        std::string msg = "lock-order cycle: ";
        for (const LockEdge *e : path) {
            msg += e->from + " -> " + e->to + " (" + e->file + ":"
                + std::to_string(e->line);
            if (!e->via.empty())
                msg += ", via " + e->via;
            msg += "); ";
        }
        msg += "a single global acquisition order is the "
               "deadlock-freedom argument (DESIGN.md §13)";
        const LockEdge *witness = path.front();
        const FileIndex *wf = fileOf(witness->file);
        if (wf != nullptr
            && isSuppressed(*wf, "lock-order-cycle", witness->line))
            continue;
        findings.push_back({"lock-order-cycle", witness->file,
                            witness->line, std::move(msg)});
    }
    return findings;
}

std::vector<Finding>
failpointCoverage(const ProgramIndex &index)
{
    std::vector<Finding> findings;
    // name -> sorted registration witnesses
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        registered;
    std::set<std::string> armed;
    for (const FileIndex &file : index.files) {
        for (const FailpointRef &r : file.failpointsRegistered)
            registered[r.name].emplace_back(file.path, r.line);
        for (const FailpointRef &r : file.failpointsArmed)
            armed.insert(r.name);
    }
    for (auto &[name, sites] : registered) {
        if (armed.count(name) > 0)
            continue;
        std::sort(sites.begin(), sites.end());
        const auto &[path, line] = sites.front();
        bool suppressed = false;
        for (const FileIndex &file : index.files)
            if (file.path == path
                && isSuppressed(file, "untested-failpoint", line))
                suppressed = true;
        if (suppressed)
            continue;
        findings.push_back(
            {"untested-failpoint", path, line,
             "failpoint '" + name + "' is registered here but never "
             "armed by any test (arm(), spec string, or shell "
             "PAQOC_FAILPOINTS); dead chaos coverage -- add an arming "
             "test or retire the point"});
    }
    for (const FileIndex &file : index.files) {
        for (const FailpointRef &r : file.unresolvedCheckedIo) {
            if (isSuppressed(file, "unguarded-checked-io", r.line))
                continue;
            findings.push_back(
                {"unguarded-checked-io", file.path, r.line,
                 "checked* I/O call whose failpoint name '" + r.name
                     + "' traces to no string literal in this file or "
                       "its companion header; fault injection cannot "
                       "target the path -- name the point with a "
                       "literal (or a defaulted literal parameter)"});
        }
    }
    return findings;
}

std::vector<Finding>
determinismTaint(const ProgramIndex &index)
{
    const Linker link(index);

    // Sink summaries per qualified name (overloads merged), plus the
    // resolved forward and reverse call maps.
    std::map<std::string, std::string> sinkKind; // name -> first kind
    std::map<std::string, std::set<std::string>> callees;
    std::map<std::string, std::set<std::string>> callers;
    for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
        const FileIndex &file = index.files[fi];
        for (std::size_t ki = 0; ki < file.functions.size(); ++ki) {
            const FunctionInfo &fn = file.functions[ki];
            const FnRef ref{static_cast<int>(fi), static_cast<int>(ki)};
            if (!fn.sinks.empty()
                && sinkKind.count(fn.name) == 0)
                sinkKind[fn.name] = fn.sinks.front().kind;
            for (const CallSite &cs : fn.calls) {
                const std::string target = link.resolve(ref, cs);
                if (target.empty() || target == fn.name)
                    continue;
                callees[fn.name].insert(target);
                callers[target].insert(fn.name);
            }
        }
    }
    // Effective sinks, exactly one level down: a function that hands
    // data to a sink-holding helper (`write(h.dump())` factored into
    // writeResponse) sinks for the caller-direction check too. No
    // fixpoint -- the pass's contract is one call level, not flow
    // analysis.
    std::map<std::string, std::string> effSink = sinkKind;
    for (const auto &[caller, targets] : callees) {
        if (effSink.count(caller) > 0)
            continue;
        for (const std::string &t : targets) {
            const auto s = sinkKind.find(t);
            if (s != sinkKind.end()) {
                effSink[caller] = s->second + " (via " + t + ")";
                break;
            }
        }
    }

    std::vector<Finding> findings;
    std::set<std::pair<std::string, int>> reported;
    for (const FileIndex &file : index.files) {
        for (const FunctionInfo &fn : file.functions) {
            for (const TaintSource &ts : fn.taintSources) {
                if (reported.count({file.path, ts.line}) > 0)
                    continue;
                std::string sink;
                if (!fn.sinks.empty()) {
                    sink = "a " + fn.sinks.front().kind + " sink in "
                        + fn.name + " (line "
                        + std::to_string(fn.sinks.front().line) + ")";
                } else {
                    const auto down = callees.find(fn.name);
                    if (down != callees.end()) {
                        for (const std::string &g : down->second) {
                            const auto s = sinkKind.find(g);
                            if (s != sinkKind.end()) {
                                sink = "a " + s->second
                                    + " sink in callee " + g;
                                break;
                            }
                        }
                    }
                    if (sink.empty()) {
                        const auto up = callers.find(fn.name);
                        if (up != callers.end()) {
                            for (const std::string &h : up->second) {
                                const auto s = effSink.find(h);
                                if (s != effSink.end()) {
                                    sink = "a " + s->second
                                        + " sink in caller " + h;
                                    break;
                                }
                            }
                        }
                    }
                }
                if (sink.empty())
                    continue;
                if (isSuppressed(file, "determinism-taint", ts.line))
                    continue;
                reported.insert({file.path, ts.line});
                findings.push_back(
                    {"determinism-taint", file.path, ts.line,
                     "nondeterminism source (" + ts.kind + ": "
                         + ts.detail + ") in " + fn.name
                         + " reaches " + sink
                         + "; serialized bytes must be a pure "
                           "function of program state -- inject the "
                           "value, drop it from the output, or "
                           "suppress with a determinism argument"});
            }
        }
    }
    return findings;
}

} // namespace lint
} // namespace paqoc
