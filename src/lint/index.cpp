#include "lint/index.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

#include "lint/lex.h"
#include "lint/lint.h"

namespace paqoc {
namespace lint {

namespace {

const std::set<std::string> &
keywords()
{
    static const std::set<std::string> kw = {
        "alignas",   "alignof",  "asm",       "auto",      "bool",
        "break",     "case",     "catch",     "char",      "class",
        "co_await",  "co_return","co_yield",  "const",     "consteval",
        "constexpr", "constinit","const_cast","continue",  "decltype",
        "default",   "delete",   "do",        "double",    "dynamic_cast",
        "else",      "enum",     "explicit",  "export",    "extern",
        "false",     "float",    "for",       "friend",    "goto",
        "if",        "inline",   "int",       "long",      "mutable",
        "namespace", "new",      "noexcept",  "nullptr",   "operator",
        "private",   "protected","public",    "register",  "reinterpret_cast",
        "requires",  "return",   "short",     "signed",    "sizeof",
        "static",    "static_assert",         "static_cast","struct",
        "switch",    "template", "this",      "thread_local","throw",
        "true",      "try",      "typedef",   "typeid",    "typename",
        "union",     "unsigned", "using",     "virtual",   "void",
        "volatile",  "wchar_t",  "while",
    };
    return kw;
}

bool
isKeyword(const std::string &s)
{
    return keywords().count(s) > 0;
}

bool
isAllCapsMacro(const std::string &s)
{
    if (s.empty() || !std::isupper(static_cast<unsigned char>(s[0])))
        return false;
    for (const char c : s)
        if (std::islower(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Type-like: starts uppercase, contains a lowercase letter. */
bool
isCamelType(const std::string &s)
{
    if (s.empty() || !std::isupper(static_cast<unsigned char>(s[0])))
        return false;
    for (const char c : s)
        if (std::islower(static_cast<unsigned char>(c)))
            return true;
    return false;
}

std::string
fileStem(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = stem.rfind('.');
    if (dot != std::string::npos)
        stem = stem.substr(0, dot);
    return stem;
}

/**
 * Blank preprocessor directive lines (keeping newlines) so unbalanced
 * braces or parens inside #if/#else branches cannot corrupt the scope
 * machine. Honors backslash continuations.
 */
std::string
blankPreprocessor(const std::string &stripped)
{
    std::string out = stripped;
    std::size_t i = 0;
    const std::size_t n = out.size();
    while (i < n) {
        std::size_t j = i;
        while (j < n && (out[j] == ' ' || out[j] == '\t'))
            ++j;
        bool directive = j < n && out[j] == '#';
        std::size_t end = i;
        while (end < n && out[end] != '\n')
            ++end;
        if (directive) {
            bool continued = true;
            while (continued) {
                continued = end > i && out[end - 1] == '\\';
                for (std::size_t k = i; k < end; ++k)
                    out[k] = ' ';
                if (!continued || end >= n)
                    break;
                i = end + 1;
                end = i;
                while (end < n && out[end] != '\n')
                    ++end;
            }
        }
        i = end < n ? end + 1 : n;
    }
    return out;
}

/** O(log n) offset→line lookup (the token walk asks constantly). */
class LineTable
{
  public:
    explicit LineTable(const std::string &text)
    {
        starts_.push_back(0);
        for (std::size_t i = 0; i < text.size(); ++i)
            if (text[i] == '\n')
                starts_.push_back(i + 1);
    }

    int
    lineOf(std::size_t offset) const
    {
        const auto it = std::upper_bound(starts_.begin(), starts_.end(),
                                         offset);
        return static_cast<int>(it - starts_.begin());
    }

  private:
    std::vector<std::size_t> starts_;
};

struct Frame
{
    enum class Kind
    {
        Namespace,
        Class,
        Function,
        Lambda,
        Block,
    };
    Kind kind = Kind::Block;
    std::string name;      ///< namespace or class name
    int funcIndex = -1;    ///< Function/Lambda: index into functions
    std::size_t lockMark = 0; ///< held-lock depth at frame entry
};

/** Index of the token matching an opening bracket, or npos. */
std::size_t
matchBackward(const std::vector<Token> &toks, std::size_t close,
              const char *open_c, const char *close_c)
{
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
        if (toks[i].is(close_c))
            ++depth;
        else if (toks[i].is(open_c) && --depth == 0)
            return i;
        if (i == 0)
            break;
    }
    return std::string::npos;
}

struct Classified
{
    Frame::Kind kind = Frame::Kind::Block;
    std::string name;              ///< namespace/class name
    std::vector<std::string> chain; ///< function name chain (A::B::f)
    std::string returnType;
    std::vector<std::string> params;
    std::size_t nameOffset = 0; ///< stripped-text offset of the name
};

/** Parameter names from the token slice between '(' and ')'. */
std::vector<std::string>
paramNames(const std::vector<Token> &sig, std::size_t open,
           std::size_t close)
{
    std::vector<std::string> params;
    std::size_t start = open + 1;
    int depth = 0;
    auto flush = [&](std::size_t end) {
        // Last identifier before any top-level '='.
        std::string name;
        for (std::size_t k = start; k < end; ++k) {
            if (sig[k].is("="))
                break;
            if (sig[k].isIdent() && !isKeyword(sig[k].text))
                name = sig[k].text;
        }
        if (!name.empty())
            params.push_back(name);
        start = end + 1;
    };
    for (std::size_t k = open + 1; k < close; ++k) {
        if (sig[k].is("(") || sig[k].is("[") || sig[k].is("{")
            || sig[k].is("<"))
            ++depth;
        else if (sig[k].is(")") || sig[k].is("]") || sig[k].is("}")
                 || sig[k].is(">"))
            --depth;
        else if (sig[k].is(",") && depth == 0)
            flush(k);
    }
    flush(close);
    return params;
}

/**
 * Classify what a '{' opens from its head: the tokens since the last
 * ';', '{', or '}'. Anything the lexical grammar cannot prove to be a
 * namespace, class, function, or lambda degrades to an inert Block --
 * wrong attribution is worse than no attribution.
 */
Classified
classifyBrace(const std::vector<Token> &toks, std::size_t brace)
{
    Classified c;
    // Collect the head.
    std::size_t lo = brace;
    while (lo > 0) {
        const Token &t = toks[lo - 1];
        if (t.is(";") || t.is("{") || t.is("}"))
            break;
        --lo;
    }
    std::vector<Token> head(toks.begin() + static_cast<long>(lo),
                            toks.begin() + static_cast<long>(brace));
    // Drop access-specifier labels ("public :").
    while (head.size() >= 2 && head[0].isIdent()
           && (head[0].is("public") || head[0].is("private")
               || head[0].is("protected"))
           && head[1].is(":"))
        head.erase(head.begin(), head.begin() + 2);
    if (head.empty())
        return c;
    if (head[0].is("namespace")) {
        c.kind = Frame::Kind::Namespace;
        if (head.size() > 1 && head[1].isIdent())
            c.name = head[1].text;
        return c;
    }
    // Skip a leading template<...> header.
    std::size_t first = 0;
    if (head[0].is("template") && head.size() > 1 && head[1].is("<")) {
        int depth = 0;
        for (std::size_t k = 1; k < head.size(); ++k) {
            if (head[k].is("<"))
                ++depth;
            else if (head[k].is(">") && --depth == 0) {
                first = k + 1;
                break;
            }
        }
        if (first == 0 || first >= head.size())
            return c;
    }
    const Token &lead = head[first];
    if (lead.is("enum") || lead.is("union"))
        return c;
    if (lead.is("class") || lead.is("struct")) {
        for (std::size_t k = first + 1; k < head.size(); ++k) {
            if (head[k].isIdent() && !isKeyword(head[k].text)
                && !isAllCapsMacro(head[k].text)) {
                c.kind = Frame::Kind::Class;
                c.name = head[k].text;
                return c;
            }
            if (head[k].is(":"))
                break;
        }
        return c; // anonymous aggregate
    }
    if (lead.is("if") || lead.is("for") || lead.is("while")
        || lead.is("switch") || lead.is("do") || lead.is("else")
        || lead.is("try") || lead.is("catch"))
        return c;
    // Constructor-initializer truncation: cut at the first top-level
    // single ':' ("::" is fused by the tokenizer, so a lone ':' here
    // really is a colon). Pair off '?' to spare ternaries.
    std::vector<Token> sig;
    {
        int depth = 0;
        int ternary = 0;
        std::size_t cut = head.size();
        for (std::size_t k = first; k < head.size(); ++k) {
            const Token &t = head[k];
            if (t.is("(") || t.is("[") || t.is("{"))
                ++depth;
            else if (t.is(")") || t.is("]") || t.is("}"))
                --depth;
            else if (t.is("?") && depth == 0)
                ++ternary;
            else if (t.is(":") && depth == 0) {
                if (ternary > 0) {
                    --ternary;
                } else {
                    cut = k;
                    break;
                }
            }
        }
        sig.assign(head.begin() + static_cast<long>(first),
                   head.begin() + static_cast<long>(cut));
    }
    // Strip trailing qualifiers, trailing returns, and attribute-style
    // macros (PAQOC_REQUIRES(mu_) and friends) off the signature tail.
    for (;;) {
        if (sig.empty())
            return c;
        const Token &last = sig.back();
        if (last.isIdent()
            && (last.is("const") || last.is("noexcept")
                || last.is("override") || last.is("final")
                || last.is("mutable"))) {
            sig.pop_back();
            continue;
        }
        if (last.isIdent() && sig.size() >= 2
            && sig[sig.size() - 2].is("->")) {
            sig.pop_back();
            sig.pop_back();
            continue;
        }
        if (last.is(")")) {
            const std::size_t open =
                matchBackward(sig, sig.size() - 1, "(", ")");
            if (open != std::string::npos && open > 0
                && sig[open - 1].isIdent()
                && (isAllCapsMacro(sig[open - 1].text)
                    || sig[open - 1].is("noexcept"))) {
                sig.resize(open - 1);
                continue;
            }
        }
        break;
    }
    if (sig.empty())
        return c;
    if (sig.back().is("]")) {
        c.kind = Frame::Kind::Lambda;
        c.nameOffset = sig.back().offset;
        return c;
    }
    if (!sig.back().is(")"))
        return c;
    const std::size_t open = matchBackward(sig, sig.size() - 1, "(", ")");
    if (open == std::string::npos || open == 0)
        return c;
    const Token &before = sig[open - 1];
    if (before.is("]")) {
        c.kind = Frame::Kind::Lambda;
        c.nameOffset = before.offset;
        c.params = paramNames(sig, open, sig.size() - 1);
        return c;
    }
    if (!before.isIdent() || isKeyword(before.text))
        return c;
    // Function definition: walk the A::B::f name chain backwards.
    std::vector<std::string> chain = {before.text};
    std::size_t name_off = before.offset;
    std::size_t p = open - 1;
    bool dtor = false;
    if (p > 0 && sig[p - 1].is("~")) {
        dtor = true;
        --p;
        name_off = sig[p].offset;
    }
    while (p >= 2 && sig[p - 1].is("::") && sig[p - 2].isIdent()) {
        chain.insert(chain.begin(), sig[p - 2].text);
        name_off = sig[p - 2].offset;
        p -= 2;
    }
    if (dtor)
        chain.back() = "~" + chain.back();
    // Return type: nearest plain identifier before the chain, skipping
    // cv/ref/ptr/storage noise.
    std::string rt;
    for (std::size_t k = p; k-- > 0;) {
        const Token &t = sig[k];
        if (t.is("&") || t.is("*"))
            continue;
        if (t.isIdent()
            && (t.is("const") || t.is("static") || t.is("inline")
                || t.is("virtual") || t.is("explicit")
                || t.is("constexpr") || t.is("friend")))
            continue;
        if (t.isIdent() && !isKeyword(t.text))
            rt = t.text;
        break;
    }
    c.kind = Frame::Kind::Function;
    c.chain = std::move(chain);
    c.returnType = rt;
    c.nameOffset = name_off;
    c.params = paramNames(sig, open, sig.size() - 1);
    return c;
}

/**
 * Normalize a MutexLock argument to a lock identity the global graph
 * can join on. `Class::member_` when the owner class is knowable,
 * `name()` for accessor calls, `<stem>:expr` otherwise -- the fallback
 * deliberately scopes to the file so two unrelated locals never alias.
 */
std::string
lockIdFor(const std::vector<Token> &expr, const std::string &klass,
          const std::map<std::string, std::string> &bindings,
          const std::string &stem)
{
    std::vector<Token> e = expr;
    while (!e.empty() && (e.front().is("&") || e.front().is("*")))
        e.erase(e.begin());
    if (e.size() == 1 && e[0].isIdent()) {
        if (!klass.empty())
            return klass + "::" + e[0].text;
        return stem + ":" + e[0].text;
    }
    if (e.size() == 3 && e[0].isIdent() && e[1].is("(") && e[2].is(")"))
        return e[0].text + "()";
    if (e.size() == 3 && (e[1].is(".") || e[1].is("->"))
        && e[0].isIdent() && e[2].isIdent()) {
        if (e[0].is("this")) {
            if (!klass.empty())
                return klass + "::" + e[2].text;
            return stem + ":" + e[2].text;
        }
        const auto it = bindings.find(e[0].text);
        if (it != bindings.end())
            return it->second + "::" + e[2].text;
        return stem + ":" + e[0].text + "." + e[2].text;
    }
    std::string joined;
    for (const Token &t : e)
        joined += t.text;
    return stem + ":" + joined;
}

/** First "..." literal whose offset falls inside (open, close). */
const StringLit *
literalInRange(const std::vector<StringLit> &lits, std::size_t open,
               std::size_t close)
{
    for (const StringLit &lit : lits)
        if (lit.offset > open && lit.offset < close)
            return &lit;
    return nullptr;
}

/** Offset of the ')' matching the '(' at `open` in stripped text. */
std::size_t
matchParenForward(const std::string &s, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** A plausible failpoint name per the DESIGN.md §9 grammar. */
bool
looksLikeFailpointName(const std::string &name)
{
    static const std::regex grammar(
        R"([a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+)");
    if (!std::regex_match(name, grammar))
        return false;
    const std::size_t dot = name.rfind('.');
    const std::string last = name.substr(dot + 1);
    static const std::set<std::string> kExtensions = {
        "bin", "json", "jsonl", "sock", "log",
        "txt", "tmp",  "sh",    "db",   "cpp",
        "cc",  "h",    "sock2", "pid",
    };
    return kExtensions.count(last) == 0;
}

/**
 * Follow a non-literal failpoint-name identifier through member-init
 * and assignment hops until a literal or a dead end.
 */
bool
tracePointIdent(std::string ident, const std::string &haystack, int depth)
{
    while (depth-- > 0) {
        const std::regex direct(ident + R"(\s*=\s*")");
        if (std::regex_search(haystack, direct))
            return true;
        const std::regex ctor_lit(ident + R"(\s*\(\s*")");
        if (std::regex_search(haystack, ctor_lit))
            return true;
        const std::regex hop(ident + R"(\s*[(=]\s*([A-Za-z_]\w*)\s*[);,])");
        std::smatch m;
        if (!std::regex_search(haystack, m, hop))
            return false;
        if (m[1].str() == ident)
            return false;
        ident = m[1].str();
    }
    return false;
}

const std::regex &
armedSpecRegex()
{
    static const std::regex spec(
        R"(([A-Za-z_][A-Za-z0-9_.]*)=(return-error|enospc|eintr|short-write|delay-ms|abort))");
    return spec;
}

} // namespace

std::vector<FailpointRef>
armedInShell(const std::string &content)
{
    std::vector<FailpointRef> armed;
    auto begin = std::sregex_iterator(content.begin(), content.end(),
                                      armedSpecRegex());
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        FailpointRef ref;
        ref.name = (*it)[1].str();
        ref.line = lineOfOffset(
            content, static_cast<std::size_t>(it->position()));
        armed.push_back(std::move(ref));
    }
    return armed;
}

FileIndex
indexFile(const std::string &path, const std::string &content,
          const std::string &companion)
{
    FileIndex out;
    out.path = path;
    out.contentHash = fnv1a(content);
    out.companionHash = fnv1a(companion);
    out.suppressions = parseSuppressions(splitLines(content));
    out.fileFindings = lintFileWithCompanion(path, content, companion);

    const std::string stripped =
        blankPreprocessor(stripCommentsAndStrings(content));
    const std::vector<StringLit> lits = stringLiterals(content);
    const std::vector<Token> toks = tokenize(stripped);
    const LineTable lines(stripped);
    const std::string stem = fileStem(path);

    // ---- Scope machine: functions, locks, calls, type bindings ----
    std::vector<Frame> frames;
    std::vector<int> funcStack;
    std::vector<std::vector<std::string>> heldStack;
    std::vector<std::vector<std::string>> paramStack;

    auto currentClass = [&]() -> std::string {
        for (std::size_t i = frames.size(); i-- > 0;) {
            if (frames[i].kind == Frame::Kind::Class)
                return frames[i].name;
            if (frames[i].kind == Frame::Kind::Namespace)
                break;
        }
        return "";
    };

    const std::size_t n = toks.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Token &t = toks[i];
        if (t.is("{")) {
            Classified c = classifyBrace(toks, i);
            Frame f;
            f.kind = c.kind;
            f.name = c.name;
            f.lockMark = funcStack.empty() ? 0 : heldStack.back().size();
            if (c.kind == Frame::Kind::Function
                || c.kind == Frame::Kind::Lambda) {
                FunctionInfo fn;
                if (c.kind == Frame::Kind::Lambda) {
                    const std::string outer = funcStack.empty()
                        ? stem
                        : out.functions[static_cast<std::size_t>(
                                            funcStack.back())]
                              .name;
                    fn.name = outer + "::<lambda:"
                        + std::to_string(lines.lineOf(t.offset)) + ">";
                    // A lambda capturing `this` still names members
                    // bare; inherit the class for lock identity only.
                    fn.klass = funcStack.empty()
                        ? ""
                        : out.functions[static_cast<std::size_t>(
                                            funcStack.back())]
                              .klass;
                } else if (c.chain.size() > 1) {
                    fn.klass = c.chain[c.chain.size() - 2];
                    std::string q;
                    for (const std::string &part : c.chain)
                        q += (q.empty() ? "" : "::") + part;
                    fn.name = q;
                } else {
                    const std::string klass = currentClass();
                    fn.klass = klass;
                    fn.name = klass.empty()
                        ? c.chain[0]
                        : klass + "::" + c.chain[0];
                }
                fn.returnType = c.returnType;
                fn.line = lines.lineOf(
                    c.nameOffset != 0 ? c.nameOffset : t.offset);
                if (!c.params.empty())
                    out.functionParams[fn.name] = c.params;
                out.functions.push_back(std::move(fn));
                f.funcIndex =
                    static_cast<int>(out.functions.size()) - 1;
                funcStack.push_back(f.funcIndex);
                heldStack.emplace_back(); // locks never cross in
                paramStack.push_back(c.params);
            }
            frames.push_back(std::move(f));
            continue;
        }
        if (t.is("}")) {
            if (frames.empty())
                continue;
            Frame f = frames.back();
            frames.pop_back();
            if (f.kind == Frame::Kind::Function
                || f.kind == Frame::Kind::Lambda) {
                out.functions[static_cast<std::size_t>(f.funcIndex)]
                    .endLine = lines.lineOf(t.offset);
                funcStack.pop_back();
                heldStack.pop_back();
                paramStack.pop_back();
            } else if (!funcStack.empty()) {
                if (heldStack.back().size() > f.lockMark)
                    heldStack.back().resize(f.lockMark);
            }
            continue;
        }
        if (!t.isIdent())
            continue;
        // MutexLock declaration: `MutexLock name(expr);`
        if (t.is("MutexLock") && i + 2 < n && toks[i + 1].isIdent()
            && toks[i + 2].is("(")) {
            std::size_t close = i + 2;
            int depth = 0;
            while (close < n) {
                if (toks[close].is("("))
                    ++depth;
                else if (toks[close].is(")") && --depth == 0)
                    break;
                ++close;
            }
            if (close >= n)
                continue;
            std::vector<Token> expr(
                toks.begin() + static_cast<long>(i) + 3,
                toks.begin() + static_cast<long>(close));
            if (!funcStack.empty()) {
                FunctionInfo &fn = out.functions[static_cast<std::size_t>(
                    funcStack.back())];
                const std::string id = lockIdFor(
                    expr, fn.klass, out.typeBindings, stem);
                const int line = lines.lineOf(t.offset);
                fn.locks.push_back({id, line});
                for (const std::string &held : heldStack.back())
                    fn.nested.push_back({held, id, line});
                heldStack.back().push_back(id);
            }
            i = close;
            continue;
        }
        // Type binding: `CamelType [&*]* name <delim>`
        if (isCamelType(t.text) && !isKeyword(t.text)) {
            std::size_t j = i + 1;
            while (j < n
                   && (toks[j].is("&") || toks[j].is("*")
                       || toks[j].is("const")))
                ++j;
            if (j < n && j > i + 0 && toks[j].isIdent()
                && !isKeyword(toks[j].text) && j + 1 < n) {
                const Token &delim = toks[j + 1];
                if (delim.is(";") || delim.is("=") || delim.is("(")
                    || delim.is("{") || delim.is(",") || delim.is(")"))
                    out.typeBindings[toks[j].text] = t.text;
            }
        }
        // Call site: ident '(' inside a function body.
        if (i + 1 < n && toks[i + 1].is("(") && !isKeyword(t.text)
            && !funcStack.empty()) {
            CallSite cs;
            cs.callee = t.text;
            cs.line = lines.lineOf(t.offset);
            cs.heldLocks = heldStack.back();
            if (i >= 2) {
                const Token &prev = toks[i - 1];
                if (prev.is("::") && toks[i - 2].isIdent())
                    cs.hint = toks[i - 2].text;
                else if ((prev.is(".") || prev.is("->"))
                         && toks[i - 2].isIdent())
                    cs.hint = toks[i - 2].text;
                else if ((prev.is(".") || prev.is("->"))
                         && toks[i - 2].is(")")) {
                    const std::size_t open =
                        matchBackward(toks, i - 2, "(", ")");
                    if (open != std::string::npos && open > 0
                        && toks[open - 1].isIdent())
                        cs.hint = toks[open - 1].text + "()";
                }
            }
            out.functions[static_cast<std::size_t>(funcStack.back())]
                .calls.push_back(std::move(cs));
        }
    }

    // ---- Taint sources and serialization sinks ----
    const bool inSrc = startsWith(path, "src/");
    auto ownerOf = [&](int line) -> FunctionInfo * {
        FunctionInfo *best = nullptr;
        int bestSpan = 0;
        for (FunctionInfo &fn : out.functions) {
            if (line < fn.line || line > fn.endLine || fn.endLine == 0)
                continue;
            const int span = fn.endLine - fn.line;
            if (best == nullptr || span < bestSpan) {
                best = &fn;
                bestSpan = span;
            }
        }
        return best;
    };
    if (inSrc) {
        static const std::regex wallClock(
            R"(\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(nullptr|NULL)\s*\))");
        static const std::regex ptrToInt(
            R"(reinterpret_cast\s*<\s*(std\s*::\s*)?(u?int(8|16|32|64)?_t|uintptr_t|intptr_t|size_t)\s*>)");
        const std::vector<std::string> slines = splitLines(stripped);
        for (std::size_t li = 0; li < slines.size(); ++li) {
            const int line = static_cast<int>(li) + 1;
            std::smatch m;
            if (std::regex_search(slines[li], m, wallClock)) {
                if (FunctionInfo *fn = ownerOf(line))
                    fn->taintSources.push_back(
                        {"wall-clock", line, m[0].str()});
            }
            if (std::regex_search(slines[li], m, ptrToInt)) {
                if (FunctionInfo *fn = ownerOf(line))
                    fn->taintSources.push_back(
                        {"pointer-to-int", line, m[0].str()});
            }
        }
        // Unordered iteration doubles as a taint source -- unless a
        // suppression already argues order cannot reach output bytes.
        std::set<std::string> unames =
            unorderedDeclNames(stripCommentsAndStrings(content));
        if (!companion.empty()) {
            const std::set<std::string> cn =
                unorderedDeclNames(stripCommentsAndStrings(companion));
            unames.insert(cn.begin(), cn.end());
        }
        if (!unames.empty()) {
            for (const RangeFor &rf :
                 findRangeFors(stripCommentsAndStrings(content))) {
                const int line = lineOfOffset(content, rf.offset);
                const auto sup = out.suppressions.find(line);
                if (sup != out.suppressions.end()
                    && (sup->second.count("unordered-iteration") > 0
                        || sup->second.count("determinism-taint") > 0))
                    continue;
                for (const std::string &name : unames) {
                    if (!containsWord(rf.rangeExpr, name))
                        continue;
                    if (FunctionInfo *fn = ownerOf(line))
                        fn->taintSources.push_back(
                            {"unordered-iter", line,
                             "range-for over '" + name + "'"});
                    break;
                }
            }
        }
        for (FunctionInfo &fn : out.functions) {
            for (const CallSite &cs : fn.calls) {
                if (cs.callee == "dump")
                    fn.sinks.push_back({"dump", cs.line});
                else if (cs.callee == "writeFrame")
                    fn.sinks.push_back({"writeFrame", cs.line});
                else if (cs.callee == "append"
                         && startsWith(path, "src/store/"))
                    fn.sinks.push_back({"journal-append", cs.line});
            }
        }
    }

    // ---- Failpoint references ----
    // The framework's own files declare and implement the checked*
    // wrappers; the scan wants their *call sites*, so the pair is
    // excluded wholesale (its parameter names are not point names).
    const bool registers = (inSrc || startsWith(path, "tools/"))
        && !startsWith(path, "src/common/failpoint.");
    const bool arms = startsWith(path, "tests/");
    if (registers) {
        static const std::regex direct(
            R"(\b(evaluate|checkedWrite|checkedRead|checkedSend|checkedFsync)\s*\()");
        auto begin = std::sregex_iterator(stripped.begin(),
                                          stripped.end(), direct);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::size_t open = static_cast<std::size_t>(
                it->position() + it->length() - 1);
            const std::size_t close = matchParenForward(stripped, open);
            if (close == std::string::npos)
                continue;
            // The point argument comes first; only look before the
            // first top-level ','.
            std::size_t firstComma = close;
            {
                int depth = 0;
                for (std::size_t p = open; p < close; ++p) {
                    if (stripped[p] == '(')
                        ++depth;
                    else if (stripped[p] == ')')
                        --depth;
                    else if (stripped[p] == ',' && depth == 1) {
                        firstComma = p;
                        break;
                    }
                }
            }
            const int line = lineOfOffset(stripped, open);
            if (const StringLit *lit =
                    literalInRange(lits, open, firstComma)) {
                out.failpointsRegistered.push_back({lit->text, line});
                continue;
            }
            // Non-literal point. A forwarder parameter is fine (the
            // call-site scan sees the caller's literal); a member or
            // local must trace to a literal, else fault injection
            // cannot target this path.
            std::string arg = stripped.substr(open + 1,
                                              firstComma - open - 1);
            std::string ident;
            for (const char ch : arg) {
                if (std::isalnum(static_cast<unsigned char>(ch))
                    || ch == '_')
                    ident += ch;
                else if (!ident.empty())
                    break;
            }
            if (ident.empty())
                continue;
            bool isParam = false;
            for (const FunctionInfo &fn : out.functions) {
                if (line < fn.line || line > fn.endLine
                    || fn.endLine == 0)
                    continue;
                const auto pit = out.functionParams.find(fn.name);
                if (pit != out.functionParams.end()
                    && std::find(pit->second.begin(), pit->second.end(),
                                 ident)
                        != pit->second.end()) {
                    isParam = true;
                    break;
                }
            }
            if (isParam)
                continue;
            if (tracePointIdent(ident, content + "\n" + companion, 3))
                continue;
            out.unresolvedCheckedIo.push_back({ident, line});
        }
        // Forwarders that take a point name and pass it down.
        static const std::regex forwarders(
            R"(\b(writeFully|openAppend)\s*\()");
        auto fb = std::sregex_iterator(stripped.begin(), stripped.end(),
                                       forwarders);
        for (auto it = fb; it != std::sregex_iterator(); ++it) {
            const std::size_t open = static_cast<std::size_t>(
                it->position() + it->length() - 1);
            const std::size_t close = matchParenForward(stripped, open);
            if (close == std::string::npos)
                continue;
            const StringLit *lit = literalInRange(lits, open, close);
            if (lit != nullptr && looksLikeFailpointName(lit->text))
                out.failpointsRegistered.push_back(
                    {lit->text, lit->line});
        }
        // Default arguments and constants that name a point:
        //   append_point = "journal.append"
        static const std::regex pointAssign(
            R"((\w*[Pp]oint\w*)\s*=\s*"([^"]+)\")");
        auto pb = std::sregex_iterator(content.begin(), content.end(),
                                       pointAssign);
        for (auto it = pb; it != std::sregex_iterator(); ++it) {
            const std::string name = (*it)[2].str();
            if (!looksLikeFailpointName(name))
                continue;
            out.failpointsRegistered.push_back(
                {name, lineOfOffset(
                           content,
                           static_cast<std::size_t>(it->position()))});
        }
    }
    if (arms) {
        static const std::regex armCall(R"(\barm\s*\()");
        auto ab = std::sregex_iterator(stripped.begin(), stripped.end(),
                                       armCall);
        for (auto it = ab; it != std::sregex_iterator(); ++it) {
            const std::size_t open = static_cast<std::size_t>(
                it->position() + it->length() - 1);
            const std::size_t close = matchParenForward(stripped, open);
            if (close == std::string::npos)
                continue;
            if (const StringLit *lit = literalInRange(lits, open, close))
                out.failpointsArmed.push_back({lit->text, lit->line});
        }
        // Any spec-shaped "name=action" inside any literal arms `name`
        // (armFromSpec strings, setenv PAQOC_FAILPOINTS values).
        for (const StringLit &lit : lits) {
            auto sb = std::sregex_iterator(lit.text.begin(),
                                           lit.text.end(),
                                           armedSpecRegex());
            for (auto it = sb; it != std::sregex_iterator(); ++it)
                out.failpointsArmed.push_back(
                    {(*it)[1].str(), lit.line});
        }
    }

    return out;
}

// ---- Cache serialization ----

namespace {

std::string
hashToHex(std::uint64_t h)
{
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

std::uint64_t
hexToHash(const std::string &s)
{
    std::uint64_t h = 0;
    std::istringstream is(s);
    is >> std::hex >> h;
    return h;
}

} // namespace

Json
FileIndex::toJson() const
{
    Json j = Json::object();
    j.set("path", Json(path));
    j.set("content_hash", Json(hashToHex(contentHash)));
    j.set("companion_hash", Json(hashToHex(companionHash)));
    Json fns = Json::array();
    for (const FunctionInfo &fn : functions) {
        Json f = Json::object();
        f.set("name", Json(fn.name));
        f.set("class", Json(fn.klass));
        f.set("return_type", Json(fn.returnType));
        f.set("line", Json(fn.line));
        f.set("end_line", Json(fn.endLine));
        Json calls = Json::array();
        for (const CallSite &cs : fn.calls) {
            Json c = Json::object();
            c.set("callee", Json(cs.callee));
            c.set("hint", Json(cs.hint));
            c.set("line", Json(cs.line));
            Json held = Json::array();
            for (const std::string &h : cs.heldLocks)
                held.push(Json(h));
            c.set("held", std::move(held));
            calls.push(std::move(c));
        }
        f.set("calls", std::move(calls));
        Json locks = Json::array();
        for (const LockSite &ls : fn.locks) {
            Json l = Json::object();
            l.set("id", Json(ls.lockId));
            l.set("line", Json(ls.line));
            locks.push(std::move(l));
        }
        f.set("locks", std::move(locks));
        Json nested = Json::array();
        for (const NestedLock &nl : fn.nested) {
            Json e = Json::object();
            e.set("from", Json(nl.from));
            e.set("to", Json(nl.to));
            e.set("line", Json(nl.line));
            nested.push(std::move(e));
        }
        f.set("nested", std::move(nested));
        Json taints = Json::array();
        for (const TaintSource &ts : fn.taintSources) {
            Json s = Json::object();
            s.set("kind", Json(ts.kind));
            s.set("line", Json(ts.line));
            s.set("detail", Json(ts.detail));
            taints.push(std::move(s));
        }
        f.set("taint_sources", std::move(taints));
        Json sinks_j = Json::array();
        for (const SinkSite &ss : fn.sinks) {
            Json s = Json::object();
            s.set("kind", Json(ss.kind));
            s.set("line", Json(ss.line));
            sinks_j.push(std::move(s));
        }
        f.set("sinks", std::move(sinks_j));
        fns.push(std::move(f));
    }
    j.set("functions", std::move(fns));
    Json bindings = Json::object();
    for (const auto &[name, type] : typeBindings)
        bindings.set(name, Json(type));
    j.set("type_bindings", std::move(bindings));
    Json params = Json::object();
    for (const auto &[fn, names] : functionParams) {
        Json arr = Json::array();
        for (const std::string &p : names)
            arr.push(Json(p));
        params.set(fn, std::move(arr));
    }
    j.set("function_params", std::move(params));
    auto refList = [](const std::vector<FailpointRef> &refs) {
        Json arr = Json::array();
        for (const FailpointRef &r : refs) {
            Json e = Json::object();
            e.set("name", Json(r.name));
            e.set("line", Json(r.line));
            arr.push(std::move(e));
        }
        return arr;
    };
    j.set("failpoints_registered", refList(failpointsRegistered));
    j.set("failpoints_armed", refList(failpointsArmed));
    j.set("unresolved_checked_io", refList(unresolvedCheckedIo));
    Json findings = Json::array();
    for (const Finding &f : fileFindings) {
        Json e = Json::object();
        e.set("rule", Json(f.rule));
        e.set("file", Json(f.file));
        e.set("line", Json(f.line));
        e.set("message", Json(f.message));
        findings.push(std::move(e));
    }
    j.set("file_findings", std::move(findings));
    Json sup = Json::object();
    for (const auto &[line, rules] : suppressions) {
        Json arr = Json::array();
        for (const std::string &r : rules)
            arr.push(Json(r));
        sup.set(std::to_string(line), std::move(arr));
    }
    j.set("suppressions", std::move(sup));
    return j;
}

FileIndex
FileIndex::fromJson(const Json &j)
{
    FileIndex out;
    out.path = j.at("path").asString();
    out.contentHash = hexToHash(j.at("content_hash").asString());
    out.companionHash = hexToHash(j.at("companion_hash").asString());
    for (const Json &f : j.at("functions").items()) {
        FunctionInfo fn;
        fn.name = f.at("name").asString();
        fn.klass = f.at("class").asString();
        fn.returnType = f.at("return_type").asString();
        fn.line = f.at("line").asInt();
        fn.endLine = f.at("end_line").asInt();
        for (const Json &c : f.at("calls").items()) {
            CallSite cs;
            cs.callee = c.at("callee").asString();
            cs.hint = c.at("hint").asString();
            cs.line = c.at("line").asInt();
            for (const Json &h : c.at("held").items())
                cs.heldLocks.push_back(h.asString());
            fn.calls.push_back(std::move(cs));
        }
        for (const Json &l : f.at("locks").items())
            fn.locks.push_back(
                {l.at("id").asString(), l.at("line").asInt()});
        for (const Json &e : f.at("nested").items())
            fn.nested.push_back({e.at("from").asString(),
                                 e.at("to").asString(),
                                 e.at("line").asInt()});
        for (const Json &s : f.at("taint_sources").items())
            fn.taintSources.push_back({s.at("kind").asString(),
                                       s.at("line").asInt(),
                                       s.at("detail").asString()});
        for (const Json &s : f.at("sinks").items())
            fn.sinks.push_back(
                {s.at("kind").asString(), s.at("line").asInt()});
        out.functions.push_back(std::move(fn));
    }
    for (const auto &[name, type] : j.at("type_bindings").members())
        out.typeBindings[name] = type.asString();
    for (const auto &[fn, arr] : j.at("function_params").members()) {
        std::vector<std::string> names;
        for (const Json &p : arr.items())
            names.push_back(p.asString());
        out.functionParams[fn] = std::move(names);
    }
    auto refList = [&](const char *key) {
        std::vector<FailpointRef> refs;
        for (const Json &e : j.at(key).items())
            refs.push_back(
                {e.at("name").asString(), e.at("line").asInt()});
        return refs;
    };
    out.failpointsRegistered = refList("failpoints_registered");
    out.failpointsArmed = refList("failpoints_armed");
    out.unresolvedCheckedIo = refList("unresolved_checked_io");
    for (const Json &e : j.at("file_findings").items())
        out.fileFindings.push_back(
            {e.at("rule").asString(), e.at("file").asString(),
             e.at("line").asInt(), e.at("message").asString()});
    for (const auto &[line, arr] : j.at("suppressions").members()) {
        std::set<std::string> rules;
        for (const Json &r : arr.items())
            rules.insert(r.asString());
        out.suppressions[std::stoi(line)] = std::move(rules);
    }
    return out;
}

} // namespace lint
} // namespace paqoc
