#include "lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <tuple>

#include "common/error.h"
#include "common/thread_pool.h"
#include "lint/index.h"
#include "lint/lex.h"

namespace paqoc {
namespace lint {

namespace {

namespace fs = std::filesystem;

constexpr int kCacheVersion = 1;

std::string
readFileOrDie(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    PAQOC_FATAL_IF(!in, "lint: cannot read ", path.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Every file the analyzer looks at, sorted: .cpp/.h everywhere under
 * the roots, .sh only under tests/ (chaos and e2e drivers arm
 * failpoints from the shell).
 */
std::vector<std::string>
enumerateTree(const std::string &base, const std::vector<std::string> &roots)
{
    std::vector<std::string> paths;
    for (const std::string &root : roots) {
        const fs::path dir = fs::path(base) / root;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            const std::string rel =
                fs::relative(entry.path(), base).generic_string();
            // .cc is reserved for lint *fixtures* (exercised by unit
            // tests through lintFile, deliberately not tree-walked),
            // matching the per-file linter's historical contract.
            if (ext == ".cpp" || ext == ".h") {
                paths.push_back(rel);
            } else if (ext == ".sh" && startsWith(rel, "tests/")) {
                paths.push_back(rel);
            }
        }
    }
    // Directory iteration order is unspecified; the report (and the
    // cache file) are outputs, so sort.
    std::sort(paths.begin(), paths.end());
    return paths;
}

std::string
companionHeaderOf(const std::string &base, const std::string &rel)
{
    std::string stemPath;
    if (endsWith(rel, ".cpp"))
        stemPath = rel.substr(0, rel.size() - 4);
    else if (endsWith(rel, ".cc"))
        stemPath = rel.substr(0, rel.size() - 3);
    else
        return "";
    const fs::path header = fs::path(base) / (stemPath + ".h");
    if (!fs::exists(header))
        return "";
    return readFileOrDie(header);
}

/** path -> cached FileIndex, or empty on any unusable cache file. */
std::map<std::string, FileIndex>
loadCache(const std::string &cachePath, bool &loaded)
{
    std::map<std::string, FileIndex> cache;
    loaded = false;
    if (cachePath.empty() || !fs::exists(cachePath))
        return cache;
    try {
        const Json doc = Json::parse(readFileOrDie(cachePath));
        if (!doc.isObject()
            || doc.get("version", Json(0)).asInt() != kCacheVersion)
            return cache;
        for (const Json &entry : doc.at("files").items()) {
            FileIndex idx = FileIndex::fromJson(entry);
            cache[idx.path] = std::move(idx);
        }
        loaded = true;
    } catch (const std::exception &) {
        // A stale or corrupt cache is a cold start, never an error.
        cache.clear();
        loaded = false;
    }
    return cache;
}

void
saveCache(const std::string &cachePath, const ProgramIndex &index)
{
    if (cachePath.empty())
        return;
    Json doc = Json::object();
    doc.set("version", Json(kCacheVersion));
    Json files = Json::array();
    for (const FileIndex &f : index.files)
        files.push(f.toJson());
    doc.set("files", std::move(files));
    std::ofstream out(cachePath, std::ios::binary | std::ios::trunc);
    PAQOC_FATAL_IF(!out, "lint: cannot write cache ", cachePath);
    out << doc.dump() << '\n';
}

std::string
canonicalGuardFor(const std::string &path)
{
    std::string rel = path;
    if (startsWith(rel, "src/"))
        rel = rel.substr(4);
    if (endsWith(rel, ".h"))
        rel = rel.substr(0, rel.size() - 2);
    std::string guard = "PAQOC_";
    for (const char c : rel) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    guard += "_H_";
    return guard;
}

/** Replace whole-word occurrences of `from` with `to`. */
std::string
replaceWord(const std::string &text, const std::string &from,
            const std::string &to)
{
    std::string out;
    std::size_t pos = 0;
    auto isWord = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (pos < text.size()) {
        const std::size_t at = text.find(from, pos);
        if (at == std::string::npos) {
            out += text.substr(pos);
            break;
        }
        const bool leftOk = at == 0 || !isWord(text[at - 1]);
        const std::size_t end = at + from.size();
        const bool rightOk = end >= text.size() || !isWord(text[end]);
        out += text.substr(pos, at - pos);
        out += (leftOk && rightOk) ? to : from;
        pos = end;
    }
    return out;
}

} // namespace

std::string
fixHeaderGuardContent(const std::string &path, const std::string &content)
{
    if (!endsWith(path, ".h"))
        return content;
    const std::string stripped = stripCommentsAndStrings(content);
    if (stripped.find("#pragma once") != std::string::npos)
        return content;
    const std::string expected = canonicalGuardFor(path);
    static const std::regex ifndefRe(R"(#\s*ifndef\s+([A-Za-z0-9_]+))");
    std::smatch m;
    if (std::regex_search(stripped, m, ifndefRe)) {
        const std::string got = m[1].str();
        if (got == expected)
            return content;
        // Rename the guard everywhere it appears as a whole token:
        // #ifndef, #define, and the #endif trailer comment. The
        // comment mention lives in stripped-out text, so rewrite the
        // raw bytes.
        return replaceWord(content, got, expected);
    }
    // No guard at all: wrap the file.
    std::string out = "#ifndef " + expected + "\n#define " + expected
        + "\n\n";
    out += content;
    if (!out.empty() && out.back() != '\n')
        out += '\n';
    out += "\n#endif // " + expected + "\n";
    return out;
}

std::vector<std::string>
fixHeaderGuards(const std::string &base,
                const std::vector<std::string> &roots)
{
    std::vector<std::string> fixed;
    for (const std::string &rel : enumerateTree(base, roots)) {
        if (!endsWith(rel, ".h"))
            continue;
        const fs::path full = fs::path(base) / rel;
        const std::string content = readFileOrDie(full);
        const std::string repaired = fixHeaderGuardContent(rel, content);
        if (repaired == content)
            continue;
        std::ofstream out(full, std::ios::binary | std::ios::trunc);
        PAQOC_FATAL_IF(!out, "lint: cannot rewrite ", rel);
        out << repaired;
        fixed.push_back(rel);
    }
    return fixed;
}

AnalyzeResult
analyzeTree(const std::string &base, const std::vector<std::string> &roots,
            const AnalyzeOptions &options)
{
    AnalyzeResult result;
    const std::vector<std::string> paths = enumerateTree(base, roots);

    std::map<std::string, FileIndex> cached =
        loadCache(options.cachePath, result.cache.loaded);

    // Preallocated slots + index-order parallelFor keeps the result
    // deterministic for any worker count (the pool's own contract).
    ProgramIndex program;
    program.files.resize(paths.size());
    std::vector<char> reused(paths.size(), 0);
    ThreadPool::global().parallelFor(paths.size(), [&](std::size_t i) {
        const std::string &rel = paths[i];
        const std::string content =
            readFileOrDie(fs::path(base) / rel);
        const std::string companion = companionHeaderOf(base, rel);
        const std::uint64_t contentHash = fnv1a(content);
        const std::uint64_t companionHash = fnv1a(companion);
        const auto hit = cached.find(rel);
        if (hit != cached.end()
            && hit->second.contentHash == contentHash
            && hit->second.companionHash == companionHash) {
            program.files[i] = hit->second;
            reused[i] = 1;
            return;
        }
        if (endsWith(rel, ".sh")) {
            FileIndex idx;
            idx.path = rel;
            idx.contentHash = contentHash;
            idx.companionHash = companionHash; // fnv1a("") -- matches
                                               // the warm-run probe
            idx.failpointsArmed = armedInShell(content);
            program.files[i] = std::move(idx);
            return;
        }
        program.files[i] = indexFile(rel, content, companion);
    });

    result.cache.files = static_cast<int>(paths.size());
    for (const char r : reused)
        result.cache.reused += r != 0;
    result.cache.reindexed = result.cache.files - result.cache.reused;

    // Per-file findings straight from the indexes; whole-program
    // passes over the linked view. The passes always run -- they are
    // cheap next to indexing, and any file's change can move a global
    // conclusion.
    for (const FileIndex &f : program.files)
        result.findings.insert(result.findings.end(),
                               f.fileFindings.begin(),
                               f.fileFindings.end());
    result.lockGraph = buildLockOrderGraph(program);
    for (auto &group :
         {lockOrderCycles(program, result.lockGraph),
          failpointCoverage(program), determinismTaint(program)})
        result.findings.insert(result.findings.end(), group.begin(),
                               group.end());
    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule)
                      < std::tie(b.file, b.line, b.rule);
              });

    saveCache(options.cachePath, program);
    return result;
}

Json
analyzeReportJson(const AnalyzeResult &result)
{
    Json report = findingsToJson(result.findings);
    Json graph = Json::array();
    for (const LockEdge &e : result.lockGraph) {
        Json edge = Json::object();
        edge.set("from", Json(e.from));
        edge.set("to", Json(e.to));
        edge.set("file", Json(e.file));
        edge.set("line", Json(e.line));
        edge.set("via", Json(e.via));
        graph.push(std::move(edge));
    }
    report.set("lock_order_graph", std::move(graph));
    Json cache = Json::object();
    cache.set("loaded", Json(result.cache.loaded));
    cache.set("files", Json(result.cache.files));
    cache.set("reused", Json(result.cache.reused));
    cache.set("reindexed", Json(result.cache.reindexed));
    report.set("cache", std::move(cache));
    return report;
}

std::vector<Finding>
lintTree(const std::string &base, const std::vector<std::string> &roots)
{
    return analyzeTree(base, roots, AnalyzeOptions{}).findings;
}

} // namespace lint
} // namespace paqoc
