#ifndef PAQOC_LINT_INDEX_H_
#define PAQOC_LINT_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "lint/lint.h"

namespace paqoc {
namespace lint {

/**
 * Per-file symbol/call/lock-site index (DESIGN.md §13). Built once
 * per file from the shared token stream (lex.h) -- no libclang --
 * and cached by content hash, it is the substrate every whole-program
 * pass links through:
 *
 *  - functions with qualified names, body extents, and per-call-site
 *    "locks held here" snapshots feed the lock-order pass;
 *  - failpoint registrations (src/, tools/) and armings (tests/)
 *    feed the failpoint-coverage pass;
 *  - taint sources and serialization sinks, attributed to their
 *    enclosing function, feed the determinism-taint pass.
 *
 * The extractor is lexical, so it is deliberately conservative:
 * lambda bodies become separate anonymous functions (locks held at
 * the definition site are NOT considered held inside the lambda --
 * it may run on another thread entirely), and constructs the scope
 * machine cannot classify degrade to inert block scopes rather than
 * wrong attributions.
 */

/** One call site inside a function body. */
struct CallSite
{
    std::string callee; ///< base name (`submit` in `pool().submit`)
    /// resolution hint: `X` for `X::f(...)`, `obj` for `obj.f(...)` /
    /// `obj->f(...)`, `g()` for `g().f(...)`, empty for a bare call
    std::string hint;
    int line = 0;
    /// lock ids held lexically at this call (acquisition order)
    std::vector<std::string> heldLocks;
};

/** One MutexLock acquisition. */
struct LockSite
{
    std::string lockId; ///< normalized (see lockIdFor in index.cpp)
    int line = 0;
};

/** A→B: B acquired while A is held, in one function body. */
struct NestedLock
{
    std::string from;
    std::string to;
    int line = 0; ///< acquisition line of `to`
};

/** A taint source (determinism pass). */
struct TaintSource
{
    std::string kind; ///< wall-clock | pointer-to-int | unordered-iter
    int line = 0;
    std::string detail;
};

/** A serialization sink call (determinism pass). */
struct SinkSite
{
    std::string kind; ///< dump | writeFrame | journal-append
    int line = 0;
};

/** A failpoint name referenced in source (registration or arming). */
struct FailpointRef
{
    std::string name;
    int line = 0;
};

struct FunctionInfo
{
    std::string name;  ///< qualified: `Class::method`, `free`, or
                       ///< `outer::<lambda:LINE>`
    std::string klass; ///< enclosing class ("" for free functions)
    std::string returnType; ///< last class-like token before the name
    int line = 0;           ///< definition start (1-based)
    int endLine = 0;        ///< body close (1-based)
    std::vector<CallSite> calls;
    std::vector<LockSite> locks;
    std::vector<NestedLock> nested;
    std::vector<TaintSource> taintSources;
    std::vector<SinkSite> sinks;
};

struct FileIndex
{
    std::string path;
    std::uint64_t contentHash = 0;
    std::uint64_t companionHash = 0; ///< companion header (for .cpp)
    std::vector<FunctionInfo> functions;
    /// `Type name` declarations (members, locals, params) with a
    /// class-like type: resolution hints for obj.method() calls
    std::map<std::string, std::string> typeBindings;
    /// parameter names per qualified function name (forwarder
    /// detection in the checked-io trace)
    std::map<std::string, std::vector<std::string>> functionParams;
    std::vector<FailpointRef> failpointsRegistered;
    std::vector<FailpointRef> failpointsArmed;
    /// checked* call sites whose point argument is not a literal
    std::vector<FailpointRef> unresolvedCheckedIo;
    std::vector<Finding> fileFindings; ///< per-file rule findings
    std::map<int, std::set<std::string>> suppressions;

    Json toJson() const;
    static FileIndex fromJson(const Json &j);
};

/**
 * Build the index for one file: scope machine over the token stream,
 * failpoint reference scans over the raw text, taint/sink
 * attribution, plus the per-file lint rules (lintFileWithCompanion).
 * `companion` is the companion header's content for a .cpp ("" when
 * absent); it feeds the unordered-iteration rule and the checked-io
 * literal trace.
 */
FileIndex indexFile(const std::string &path, const std::string &content,
                    const std::string &companion);

/**
 * Arming references in a shell script (chaos/e2e drivers): any
 * `name=action` spec whose action is one of the failpoint grammar's
 * verbs counts as arming `name`.
 */
std::vector<FailpointRef> armedInShell(const std::string &content);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_INDEX_H_
