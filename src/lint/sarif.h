#ifndef PAQOC_LINT_SARIF_H_
#define PAQOC_LINT_SARIF_H_

#include <vector>

#include "common/json.h"
#include "lint/lint.h"

namespace paqoc {
namespace lint {

/**
 * SARIF 2.1.0 export (paqoc_lint --sarif): one run, the full rule
 * catalogue as tool.driver.rules (stable ids + one-line descriptions),
 * one result per finding with a physicalLocation region. The document
 * is deterministic: rules in ruleNames() order, results in the
 * analyzer's (file, line, rule) order, insertion-ordered Json dump.
 */
Json sarifReport(const std::vector<Finding> &findings);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_SARIF_H_
