#ifndef PAQOC_LINT_PASSES_H_
#define PAQOC_LINT_PASSES_H_

#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/lint.h"

namespace paqoc {
namespace lint {

/**
 * Whole-program passes over the linked per-file indexes (DESIGN.md
 * §13). Each pass is a pure function of the ProgramIndex, so cached
 * and freshly-built file indexes are indistinguishable to it, and the
 * passes re-run on every invocation (they are cheap next to indexing).
 */

/** Every file index, sorted by path (the analyzer guarantees order). */
struct ProgramIndex
{
    std::vector<FileIndex> files;
};

/**
 * One edge of the global lock-order graph: lock `to` is acquired
 * (directly, or transitively through `via`) while `from` is held.
 */
struct LockEdge
{
    std::string from;
    std::string to;
    std::string file; ///< witness file
    int line = 0;     ///< witness line (acquisition or call site)
    /// "" for a direct nesting; the resolved callee's qualified name
    /// when the acquisition happens inside a call made under `from`
    std::string via;
};

/**
 * Build the lock-order graph: direct nestings from every function
 * body, plus call-with-held edges -- a call made while holding A,
 * resolved through the call index to a function whose transitive
 * lock-acquisition set (a fixpoint over the resolved call graph)
 * contains B, contributes A→B. Calls that resolve ambiguously
 * contribute nothing: precision over recall, a wrong edge is a false
 * deadlock report. Edges are deduplicated on (from, to) keeping the
 * lexically first witness, and sorted (from, to) for determinism.
 */
std::vector<LockEdge> buildLockOrderGraph(const ProgramIndex &index);

/**
 * Cycles in the lock-order graph, one `lock-order-cycle` finding per
 * distinct cycle (canonicalized by its minimal rotation), anchored at
 * the witness of the cycle's first edge with the full path spelled
 * out in the message. Suppressions at the witness line apply.
 */
std::vector<Finding> lockOrderCycles(const ProgramIndex &index,
                                     const std::vector<LockEdge> &graph);

/**
 * Failpoint-coverage audit. `untested-failpoint`: a name registered
 * in src/ or tools/ that nothing in tests/ (arm() calls, spec strings,
 * shell PAQOC_FAILPOINTS) ever arms, reported once at its first
 * registration site. `unguarded-checked-io`: a checked* call whose
 * point argument traced to no literal (index.h). Suppressions at the
 * witness line apply.
 */
std::vector<Finding> failpointCoverage(const ProgramIndex &index);

/**
 * Determinism taint, one resolved call level deep in both directions:
 * a taint source whose enclosing function also sinks, sinks via a
 * called function, or is called by a function that sinks, yields a
 * `determinism-taint` finding at the source line. Suppressions at the
 * source line apply (an `unordered-iteration` suppression already
 * removed the source at index time).
 */
std::vector<Finding> determinismTaint(const ProgramIndex &index);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_PASSES_H_
