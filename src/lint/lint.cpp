#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <utility>

#include "common/error.h"
#include "lint/lex.h"

namespace paqoc {
namespace lint {

namespace {

/**
 * Names declared with type Matrix (value, reference, or
 * std::vector<Matrix>) in stripped text: local variables, members,
 * and function parameters alike. Function names that merely *return*
 * Matrix also land here, which is harmless for the product rule --
 * call syntax `name(...)` is excluded at the use site.
 */
std::set<std::string>
matrixDeclNames(const std::string &stripped)
{
    std::set<std::string> names;
    static const std::regex decl(
        R"((?:\bMatrix|std\s*::\s*vector\s*<\s*Matrix\s*>)\s*[&*]?\s*([A-Za-z_]\w*))");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
    return names;
}

/**
 * Offsets [start, end) of every for/while body in stripped text
 * (braced or single-statement). Nested loop bodies appear once per
 * enclosing loop; callers dedup findings by line.
 */
std::vector<std::pair<std::size_t, std::size_t>>
findLoopBodies(const std::string &s)
{
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    static const std::regex kw(R"(\b(for|while)\b)");
    auto begin = std::sregex_iterator(s.begin(), s.end(), kw);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t p =
            static_cast<std::size_t>(it->position() + it->length());
        while (p < s.size()
               && std::isspace(static_cast<unsigned char>(s[p])))
            ++p;
        if (p >= s.size() || s[p] != '(')
            continue;
        int depth = 0;
        while (p < s.size()) {
            if (s[p] == '(')
                ++depth;
            else if (s[p] == ')' && --depth == 0)
                break;
            ++p;
        }
        if (p >= s.size())
            continue;
        ++p; // past ')'
        while (p < s.size()
               && std::isspace(static_cast<unsigned char>(s[p])))
            ++p;
        if (p < s.size() && s[p] == '{') {
            std::size_t q = p;
            int braces = 0;
            while (q < s.size()) {
                if (s[q] == '{')
                    ++braces;
                else if (s[q] == '}' && --braces == 0)
                    break;
                ++q;
            }
            bodies.emplace_back(p, std::min(q + 1, s.size()));
        } else {
            const std::size_t semi = s.find(';', p);
            bodies.emplace_back(
                p, semi == std::string::npos ? s.size() : semi + 1);
        }
    }
    return bodies;
}

/** Does this file build serialized output a client or disk can see? */
bool
producesOutput(const std::string &stripped)
{
    static const char *kSinks[] = {"Json",     "journal",  "Journal",
                                   "protocol", "ofstream", "writeFrame"};
    for (const char *sink : kSinks)
        if (containsWord(stripped, sink))
            return true;
    return false;
}

std::string
expectedHeaderGuard(const std::string &path)
{
    std::string rel = path;
    if (startsWith(rel, "src/"))
        rel = rel.substr(4);
    const std::size_t dot = rel.rfind(".h");
    if (dot != std::string::npos)
        rel = rel.substr(0, dot);
    std::string guard = "PAQOC_";
    for (const char c : rel) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    guard += "_H_";
    return guard;
}

struct FileContext
{
    const std::string &path;
    const std::string &raw;
    const std::string &stripped;
    const std::vector<std::string> &strippedLines;
    const std::map<int, std::set<std::string>> &suppressed;
    std::vector<Finding> &findings;

    bool
    isAllowed(const std::string &rule, int line) const
    {
        const auto it = suppressed.find(line);
        return it != suppressed.end() && it->second.count(rule) > 0;
    }

    void
    emit(const std::string &rule, int line, std::string message) const
    {
        if (isAllowed(rule, line))
            return;
        findings.push_back({rule, path, line, std::move(message)});
    }
};

void
checkLinePattern(const FileContext &ctx, const std::string &rule,
                 const std::regex &pattern, const std::string &message)
{
    for (std::size_t i = 0; i < ctx.strippedLines.size(); ++i) {
        if (std::regex_search(ctx.strippedLines[i], pattern))
            ctx.emit(rule, static_cast<int>(i) + 1, message);
    }
}

void
checkUnseededRandom(const FileContext &ctx)
{
    if (ctx.path == "src/common/rng.h")
        return;
    static const std::regex pattern(
        R"(\b(rand|srand)\s*\(|\brandom_device\b|\bmt19937)");
    checkLinePattern(ctx, "unseeded-random", pattern,
                     "unseeded/global randomness; use the seeded "
                     "paqoc::Rng from src/common/rng.h");
}

void
checkNakedMutex(const FileContext &ctx)
{
    if (ctx.path == "src/common/thread_annotations.h")
        return;
    static const std::regex pattern(
        R"(std\s*::\s*(mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock)\b)");
    checkLinePattern(ctx, "naked-mutex", pattern,
                     "raw std synchronization primitive; use the "
                     "annotated Mutex/MutexLock/CondVar wrappers from "
                     "src/common/thread_annotations.h so "
                     "-Wthread-safety can see the lock");
}

void
checkPrintfOutput(const FileContext &ctx)
{
    if (!startsWith(ctx.path, "src/"))
        return; // tools, tests, and benches may write to streams
    static const std::regex pattern(
        R"(\b(printf|fprintf|puts|fputs|putchar|sprintf)\s*\()");
    checkLinePattern(ctx, "printf-output", pattern,
                     "printf-family call in library code; return "
                     "values or use the error-reporting helpers "
                     "instead of writing to process streams");
}

void
checkProcessControl(const FileContext &ctx)
{
    // Process lifetime is the supervising state machines' business
    // alone: a fork/kill/wait anywhere else bypasses the restart
    // budget, the heartbeat watchdog, and the signal-forwarding state
    // machine. The fleet router is the supervisor generalized to a
    // worker pool, so it shares the license.
    if (startsWith(ctx.path, "src/service/supervisor.")
        || startsWith(ctx.path, "src/fleet/router."))
        return;
    static const std::regex pattern(
        R"((::\s*)?\b(fork|vfork|kill|killpg|waitpid|wait4|posix_spawn\w*|exec[lv]\w*)\s*\()");
    checkLinePattern(ctx, "process-control", pattern,
                     "process-control syscall outside "
                     "src/service/supervisor.* or src/fleet/router.*; "
                     "child lifetime must flow through runSupervised "
                     "or the fleet Router so restarts, heartbeats, and "
                     "signal forwarding live in one audited state "
                     "machine");
}

void
checkFloatNumerics(const FileContext &ctx)
{
    const bool numeric = startsWith(ctx.path, "src/linalg/")
        || startsWith(ctx.path, "src/qoc/")
        || startsWith(ctx.path, "src/paqoc/")
        || startsWith(ctx.path, "src/sim/");
    if (!numeric)
        return;
    static const std::regex pattern(R"(\bfloat\b)");
    checkLinePattern(ctx, "float-numerics", pattern,
                     "`float` in QOC numerics; pulse math is "
                     "double-only (mixed precision changes GRAPE "
                     "convergence)");
}

void
checkRawIo(const FileContext &ctx)
{
    // Only the layers whose I/O the chaos tests must be able to fault:
    // durable storage, the wire protocol, and the fleet front end.
    // Reads are covered by the protocol's own wrapper; writes are
    // where corruption lives.
    const bool covered = startsWith(ctx.path, "src/store/")
        || startsWith(ctx.path, "src/service/")
        || startsWith(ctx.path, "src/fleet/")
        || startsWith(ctx.path, "src/tier/");
    if (!covered)
        return;
    // The SCM_RIGHTS fd handoff is the one allowlisted path: cmsg
    // ancillary payloads have no checked* spelling (sendmsg carries
    // the fd itself, not bytes the chaos tests could tear), and the
    // file carries its own `fleet.fdpass` failpoint instead.
    if (ctx.path == "src/fleet/fdpass.cpp")
        return;
    static const std::regex pattern(
        R"((::\s*)?\b(write|send|pwrite|writev|sendto|sendmsg)\s*\()");
    checkLinePattern(ctx, "raw-io", pattern,
                     "raw write()/send()-family syscall bypasses the "
                     "failpoint-aware checked* wrappers in "
                     "src/common/failpoint.h; route I/O through them "
                     "so fault injection covers this path");
}

void
checkHeaderGuard(const FileContext &ctx)
{
    if (!endsWith(ctx.path, ".h"))
        return;
    if (ctx.stripped.find("#pragma once") != std::string::npos)
        return;
    const std::string expected = expectedHeaderGuard(ctx.path);
    static const std::regex ifndef_re(R"(#\s*ifndef\s+([A-Za-z0-9_]+))");
    static const std::regex define_re(R"(#\s*define\s+([A-Za-z0-9_]+))");
    std::smatch mi, md;
    const bool has_ifndef =
        std::regex_search(ctx.stripped, mi, ifndef_re);
    const bool has_define =
        std::regex_search(ctx.stripped, md, define_re);
    if (!has_ifndef || !has_define) {
        ctx.emit("header-guard", 1,
                 "missing include guard; expected " + expected
                     + " (or #pragma once)");
        return;
    }
    const std::string got = mi[1].str();
    const int line = lineOfOffset(
        ctx.stripped, static_cast<std::size_t>(mi.position()));
    if (got != expected)
        ctx.emit("header-guard", line,
                 "include guard " + got + " does not match canonical "
                     + expected);
    else if (md[1].str() != got)
        ctx.emit("header-guard", line,
                 "#ifndef " + got + " is not followed by a matching "
                     + "#define");
}

void
checkMatrixProductInLoop(const FileContext &ctx)
{
    // Only the QOC/simulator hot paths: a Matrix operator* allocates
    // its result, and inside GRAPE-scale loops that allocation churn
    // is exactly what the kernel layer (matmulInto + scratch reuse)
    // exists to eliminate.
    const bool hot = startsWith(ctx.path, "src/qoc/")
        || startsWith(ctx.path, "src/sim/");
    if (!hot)
        return;
    const std::set<std::string> names = matrixDeclNames(ctx.stripped);
    if (names.empty())
        return;
    // name [idx]? * name [idx]?  -- call syntax `name(...)` on either
    // side is excluded (left: the ')' breaks the match; right: the
    // lookahead), so element access u(r, c) never trips the rule.
    static const std::regex prod(
        R"(([A-Za-z_]\w*)\s*(\[[^\][]*\])?\s*\*\s*([A-Za-z_]\w*)\b\s*(\[[^\][]*\])?(?!\s*[\(\[]))");
    // name.adjoint() * ...  /  name * name.adjoint()
    static const std::regex chain_left(
        R"(([A-Za-z_]\w*)\s*\.\s*(adjoint|transpose|conjugate)\s*\(\s*\)\s*\*)");
    static const std::regex chain_right(
        R"(([A-Za-z_]\w*)\b\s*\*\s*([A-Za-z_]\w*)\s*\.\s*(adjoint|transpose|conjugate)\s*\(\s*\))");
    std::set<int> flagged;
    for (const auto &[begin, end] : findLoopBodies(ctx.stripped)) {
        const std::string body = ctx.stripped.substr(begin, end - begin);
        auto scan = [&](const std::regex &re, auto matches) {
            auto it = std::sregex_iterator(body.begin(), body.end(), re);
            for (; it != std::sregex_iterator(); ++it) {
                if (!matches(*it))
                    continue;
                flagged.insert(lineOfOffset(
                    ctx.stripped,
                    begin + static_cast<std::size_t>(it->position())));
            }
        };
        scan(prod, [&](const std::smatch &m) {
            return names.count(m[1].str()) > 0
                && names.count(m[3].str()) > 0;
        });
        scan(chain_left, [&](const std::smatch &m) {
            return names.count(m[1].str()) > 0;
        });
        scan(chain_right, [&](const std::smatch &m) {
            return names.count(m[1].str()) > 0
                && names.count(m[2].str()) > 0;
        });
    }
    for (const int line : flagged)
        ctx.emit("matrix-product-in-loop", line,
                 "allocating Matrix operator* inside a loop; multiply "
                 "into reused scratch via matmulInto / the kernels:: "
                 "entry points (DESIGN.md §11), or hoist the product "
                 "out of the loop");
}

void
checkUnorderedIteration(const FileContext &ctx,
                        const std::set<std::string> &extra_decls)
{
    if (!producesOutput(ctx.stripped))
        return;
    std::set<std::string> names = unorderedDeclNames(ctx.stripped);
    names.insert(extra_decls.begin(), extra_decls.end());
    if (names.empty())
        return;
    for (const RangeFor &rf : findRangeFors(ctx.stripped)) {
        for (const std::string &name : names) {
            if (!containsWord(rf.rangeExpr, name))
                continue;
            ctx.emit("unordered-iteration",
                     lineOfOffset(ctx.stripped, rf.offset),
                     "iterating unordered container '" + name
                         + "' in a file that produces serialized "
                           "output; hash order must not reach bytes a "
                           "client sees -- use std::map, sort before "
                           "emitting, or suppress with a determinism "
                           "argument");
            break;
        }
    }
}

} // namespace

int
ruleCount()
{
    return static_cast<int>(ruleNames().size());
}

std::vector<std::string>
ruleNames()
{
    return {"determinism-taint", "float-numerics",
            "header-guard",      "lock-order-cycle",
            "matrix-product-in-loop", "naked-mutex",
            "printf-output",     "process-control",
            "raw-io",            "unguarded-checked-io",
            "unordered-iteration", "unseeded-random",
            "untested-failpoint"};
}

std::string
ruleDescription(const std::string &rule)
{
    static const std::map<std::string, std::string> kDescriptions = {
        {"determinism-taint",
         "nondeterminism source (wall clock, pointer-to-integer cast, "
         "unordered iteration) reaches a serialization sink within "
         "one call level"},
        {"float-numerics",
         "`float` in QOC numerics; pulse math is double-only"},
        {"header-guard",
         "header must carry the canonical PAQOC_<PATH>_H_ include "
         "guard (autofixable with --fix)"},
        {"lock-order-cycle",
         "cycle in the global lock-order graph; a consistent "
         "acquisition order is the deadlock-freedom argument"},
        {"matrix-product-in-loop",
         "allocating Matrix operator* inside a hot loop; use "
         "matmulInto / kernels:: into reused scratch"},
        {"naked-mutex",
         "raw std synchronization primitive invisible to clang "
         "-Wthread-safety; use the annotated wrappers"},
        {"printf-output",
         "printf-family call in library code; libraries return "
         "values, they do not write to process streams"},
        {"process-control",
         "process-control syscall outside the supervisor/router; "
         "child lifetime flows through one audited state machine"},
        {"raw-io",
         "raw write()/send()-family syscall bypasses the "
         "failpoint-aware checked* wrappers"},
        {"unguarded-checked-io",
         "checked* I/O call whose failpoint name cannot be traced to "
         "a literal; fault injection cannot target the path"},
        {"unordered-iteration",
         "hash-order iteration in a file that produces serialized "
         "output"},
        {"unseeded-random",
         "unseeded/global randomness; use the seeded paqoc::Rng"},
        {"untested-failpoint",
         "failpoint registered in source but never armed by any "
         "test; dead chaos coverage"},
    };
    const auto it = kDescriptions.find(rule);
    return it == kDescriptions.end() ? std::string() : it->second;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &content)
{
    return lintFileWithCompanion(path, content, "");
}

std::vector<Finding>
lintFileWithCompanion(const std::string &path, const std::string &content,
                      const std::string &companion)
{
    std::vector<Finding> findings;
    std::set<std::string> companion_decls;
    if (!companion.empty())
        companion_decls =
            unorderedDeclNames(stripCommentsAndStrings(companion));
    const std::string stripped = stripCommentsAndStrings(content);
    const std::vector<std::string> raw_lines = splitLines(content);
    const std::vector<std::string> stripped_lines = splitLines(stripped);
    const std::map<int, std::set<std::string>> suppressed =
        parseSuppressions(raw_lines);
    FileContext ctx{path,           content,    stripped,
                    stripped_lines, suppressed, findings};
    checkUnseededRandom(ctx);
    checkNakedMutex(ctx);
    checkPrintfOutput(ctx);
    checkProcessControl(ctx);
    checkFloatNumerics(ctx);
    checkRawIo(ctx);
    checkHeaderGuard(ctx);
    checkMatrixProductInLoop(ctx);
    checkUnorderedIteration(ctx, companion_decls);
    return findings;
}

Json
findingsToJson(const std::vector<Finding> &findings)
{
    Json report = Json::object();
    report.set("ok", Json(findings.empty()));
    report.set("checked_rules", Json(ruleCount()));
    Json list = Json::array();
    for (const Finding &f : findings) {
        Json j = Json::object();
        j.set("rule", Json(f.rule));
        j.set("file", Json(f.file));
        j.set("line", Json(f.line));
        j.set("message", Json(f.message));
        list.push(std::move(j));
    }
    report.set("findings", std::move(list));
    return report;
}

} // namespace lint
} // namespace paqoc
