#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"

namespace paqoc {
namespace lint {

namespace {

/**
 * Blank out comments, string literals (including raw strings), and
 * character literals, preserving length and newlines so line/column
 * arithmetic on the result matches the original file. Suppression
 * comments are parsed from the *original* text, so blanking them here
 * is fine.
 */
std::string
stripCommentsAndStrings(const std::string &src)
{
    std::string out = src;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto blank = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < n; ++k)
            if (out[k] != '\n')
                out[k] = ' ';
    };
    while (i < n) {
        const char c = src[i];
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t j = i;
            while (j < n && src[j] != '\n')
                ++j;
            blank(i, j);
            i = j;
        } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/'))
                ++j;
            j = std::min(n, j + 2);
            blank(i, j);
            i = j;
        } else if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            // Raw string R"delim( ... )delim"
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(' && delim.size() < 16)
                delim += src[p++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = src.find(closer, p);
            const std::size_t j =
                end == std::string::npos ? n : end + closer.size();
            blank(i, j);
            i = j;
        } else if (c == '"' || c == '\'') {
            std::size_t j = i + 1;
            while (j < n && src[j] != c) {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            j = std::min(n, j + 1);
            blank(i, j);
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

int
lineOfOffset(const std::string &text, std::size_t offset)
{
    int line = 1;
    for (std::size_t i = 0; i < offset && i < text.size(); ++i)
        if (text[i] == '\n')
            ++line;
    return line;
}

/**
 * Suppressions: `// paqoc-lint: allow(rule-a, rule-b) note` covers the
 * named rules on its own line and the next one.
 */
std::map<int, std::set<std::string>>
parseSuppressions(const std::vector<std::string> &raw_lines)
{
    std::map<int, std::set<std::string>> allowed;
    const std::regex pattern(
        R"(paqoc-lint:\s*allow\(([A-Za-z0-9_,\- ]+)\))");
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(raw_lines[i], m, pattern))
            continue;
        std::stringstream rules(m[1].str());
        std::string rule;
        while (std::getline(rules, rule, ',')) {
            const std::size_t a = rule.find_first_not_of(" \t");
            const std::size_t b = rule.find_last_not_of(" \t");
            if (a == std::string::npos)
                continue;
            const std::string name = rule.substr(a, b - a + 1);
            const int line = static_cast<int>(i) + 1;
            allowed[line].insert(name);
            allowed[line + 1].insert(name);
        }
    }
    return allowed;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Whole-word occurrences of `word` in `line` (stripped text). */
bool
containsWord(const std::string &line, const std::string &word)
{
    std::size_t pos = 0;
    auto is_word = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while ((pos = line.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_word(line[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok =
            end >= line.size() || !is_word(line[end]);
        if (left_ok && right_ok)
            return true;
        pos = end;
    }
    return false;
}

/**
 * Names of variables/members declared with an unordered container
 * type in `stripped`. Handles nested template arguments by matching
 * angle brackets, and skips over annotation macros between the type
 * and the terminating ;/=/{.
 */
std::set<std::string>
unorderedDeclNames(const std::string &stripped)
{
    std::set<std::string> names;
    const std::regex decl(R"(unordered_(?:map|set)\s*<)");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t pos =
            static_cast<std::size_t>(it->position() + it->length());
        int depth = 1;
        while (pos < stripped.size() && depth > 0) {
            if (stripped[pos] == '<')
                ++depth;
            else if (stripped[pos] == '>')
                --depth;
            ++pos;
        }
        // The declared name is the first identifier after the closing
        // '>' (skipping whitespace, '&', '*').
        while (pos < stripped.size()
               && (std::isspace(static_cast<unsigned char>(
                       stripped[pos]))
                   || stripped[pos] == '&' || stripped[pos] == '*'))
            ++pos;
        std::string name;
        while (pos < stripped.size()
               && (std::isalnum(static_cast<unsigned char>(
                       stripped[pos]))
                   || stripped[pos] == '_'))
            name += stripped[pos++];
        if (!name.empty())
            names.insert(name);
    }
    return names;
}

/** One range-for statement found in stripped text. */
struct RangeFor
{
    std::size_t offset = 0;  ///< offset of the `for` keyword
    std::string rangeExpr;   ///< text after the top-level ':'
};

std::vector<RangeFor>
findRangeFors(const std::string &stripped)
{
    std::vector<RangeFor> found;
    std::size_t pos = 0;
    while ((pos = stripped.find("for", pos)) != std::string::npos) {
        const std::size_t at = pos;
        pos += 3;
        const bool word =
            (at == 0
             || !(std::isalnum(static_cast<unsigned char>(
                      stripped[at - 1]))
                  || stripped[at - 1] == '_'))
            && (pos >= stripped.size()
                || !(std::isalnum(static_cast<unsigned char>(
                         stripped[pos]))
                     || stripped[pos] == '_'));
        if (!word)
            continue;
        std::size_t p = pos;
        while (p < stripped.size()
               && std::isspace(static_cast<unsigned char>(stripped[p])))
            ++p;
        if (p >= stripped.size() || stripped[p] != '(')
            continue;
        // Find the matching ')' and a top-level ':' (not '::').
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t q = p; q < stripped.size(); ++q) {
            const char c = stripped[q];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                --depth;
                if (depth == 0) {
                    close = q;
                    break;
                }
            } else if (c == ':' && depth == 1
                       && colon == std::string::npos) {
                const bool dbl =
                    (q + 1 < stripped.size() && stripped[q + 1] == ':')
                    || (q > 0 && stripped[q - 1] == ':');
                if (!dbl)
                    colon = q;
            } else if (c == ';' && depth == 1) {
                break; // classic for-loop, not a range-for
            }
        }
        if (colon == std::string::npos || close == std::string::npos)
            continue;
        found.push_back(
            {at, stripped.substr(colon + 1, close - colon - 1)});
    }
    return found;
}

/**
 * Names declared with type Matrix (value, reference, or
 * std::vector<Matrix>) in stripped text: local variables, members,
 * and function parameters alike. Function names that merely *return*
 * Matrix also land here, which is harmless for the product rule --
 * call syntax `name(...)` is excluded at the use site.
 */
std::set<std::string>
matrixDeclNames(const std::string &stripped)
{
    std::set<std::string> names;
    static const std::regex decl(
        R"((?:\bMatrix|std\s*::\s*vector\s*<\s*Matrix\s*>)\s*[&*]?\s*([A-Za-z_]\w*))");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
    return names;
}

/**
 * Offsets [start, end) of every for/while body in stripped text
 * (braced or single-statement). Nested loop bodies appear once per
 * enclosing loop; callers dedup findings by line.
 */
std::vector<std::pair<std::size_t, std::size_t>>
findLoopBodies(const std::string &s)
{
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    static const std::regex kw(R"(\b(for|while)\b)");
    auto begin = std::sregex_iterator(s.begin(), s.end(), kw);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t p =
            static_cast<std::size_t>(it->position() + it->length());
        while (p < s.size()
               && std::isspace(static_cast<unsigned char>(s[p])))
            ++p;
        if (p >= s.size() || s[p] != '(')
            continue;
        int depth = 0;
        while (p < s.size()) {
            if (s[p] == '(')
                ++depth;
            else if (s[p] == ')' && --depth == 0)
                break;
            ++p;
        }
        if (p >= s.size())
            continue;
        ++p; // past ')'
        while (p < s.size()
               && std::isspace(static_cast<unsigned char>(s[p])))
            ++p;
        if (p < s.size() && s[p] == '{') {
            std::size_t q = p;
            int braces = 0;
            while (q < s.size()) {
                if (s[q] == '{')
                    ++braces;
                else if (s[q] == '}' && --braces == 0)
                    break;
                ++q;
            }
            bodies.emplace_back(p, std::min(q + 1, s.size()));
        } else {
            const std::size_t semi = s.find(';', p);
            bodies.emplace_back(
                p, semi == std::string::npos ? s.size() : semi + 1);
        }
    }
    return bodies;
}

/** Does this file build serialized output a client or disk can see? */
bool
producesOutput(const std::string &stripped)
{
    static const char *kSinks[] = {"Json",     "journal",  "Journal",
                                   "protocol", "ofstream", "writeFrame"};
    for (const char *sink : kSinks)
        if (containsWord(stripped, sink))
            return true;
    return false;
}

std::string
expectedHeaderGuard(const std::string &path)
{
    std::string rel = path;
    if (startsWith(rel, "src/"))
        rel = rel.substr(4);
    const std::size_t dot = rel.rfind(".h");
    if (dot != std::string::npos)
        rel = rel.substr(0, dot);
    std::string guard = "PAQOC_";
    for (const char c : rel) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    guard += "_H_";
    return guard;
}

struct FileContext
{
    const std::string &path;
    const std::string &raw;
    const std::string &stripped;
    const std::vector<std::string> &strippedLines;
    const std::map<int, std::set<std::string>> &suppressed;
    std::vector<Finding> &findings;

    bool
    isAllowed(const std::string &rule, int line) const
    {
        const auto it = suppressed.find(line);
        return it != suppressed.end() && it->second.count(rule) > 0;
    }

    void
    emit(const std::string &rule, int line, std::string message) const
    {
        if (isAllowed(rule, line))
            return;
        findings.push_back({rule, path, line, std::move(message)});
    }
};

void
checkLinePattern(const FileContext &ctx, const std::string &rule,
                 const std::regex &pattern, const std::string &message)
{
    for (std::size_t i = 0; i < ctx.strippedLines.size(); ++i) {
        if (std::regex_search(ctx.strippedLines[i], pattern))
            ctx.emit(rule, static_cast<int>(i) + 1, message);
    }
}

void
checkUnseededRandom(const FileContext &ctx)
{
    if (ctx.path == "src/common/rng.h")
        return;
    static const std::regex pattern(
        R"(\b(rand|srand)\s*\(|\brandom_device\b|\bmt19937)");
    checkLinePattern(ctx, "unseeded-random", pattern,
                     "unseeded/global randomness; use the seeded "
                     "paqoc::Rng from src/common/rng.h");
}

void
checkNakedMutex(const FileContext &ctx)
{
    if (ctx.path == "src/common/thread_annotations.h")
        return;
    static const std::regex pattern(
        R"(std\s*::\s*(mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock)\b)");
    checkLinePattern(ctx, "naked-mutex", pattern,
                     "raw std synchronization primitive; use the "
                     "annotated Mutex/MutexLock/CondVar wrappers from "
                     "src/common/thread_annotations.h so "
                     "-Wthread-safety can see the lock");
}

void
checkPrintfOutput(const FileContext &ctx)
{
    if (!startsWith(ctx.path, "src/"))
        return; // tools, tests, and benches may write to streams
    static const std::regex pattern(
        R"(\b(printf|fprintf|puts|fputs|putchar|sprintf)\s*\()");
    checkLinePattern(ctx, "printf-output", pattern,
                     "printf-family call in library code; return "
                     "values or use the error-reporting helpers "
                     "instead of writing to process streams");
}

void
checkProcessControl(const FileContext &ctx)
{
    // Process lifetime is the supervising state machines' business
    // alone: a fork/kill/wait anywhere else bypasses the restart
    // budget, the heartbeat watchdog, and the signal-forwarding state
    // machine. The fleet router is the supervisor generalized to a
    // worker pool, so it shares the license.
    if (startsWith(ctx.path, "src/service/supervisor.")
        || startsWith(ctx.path, "src/fleet/router."))
        return;
    static const std::regex pattern(
        R"((::\s*)?\b(fork|vfork|kill|killpg|waitpid|wait4|posix_spawn\w*|exec[lv]\w*)\s*\()");
    checkLinePattern(ctx, "process-control", pattern,
                     "process-control syscall outside "
                     "src/service/supervisor.* or src/fleet/router.*; "
                     "child lifetime must flow through runSupervised "
                     "or the fleet Router so restarts, heartbeats, and "
                     "signal forwarding live in one audited state "
                     "machine");
}

void
checkFloatNumerics(const FileContext &ctx)
{
    const bool numeric = startsWith(ctx.path, "src/linalg/")
        || startsWith(ctx.path, "src/qoc/")
        || startsWith(ctx.path, "src/paqoc/")
        || startsWith(ctx.path, "src/sim/");
    if (!numeric)
        return;
    static const std::regex pattern(R"(\bfloat\b)");
    checkLinePattern(ctx, "float-numerics", pattern,
                     "`float` in QOC numerics; pulse math is "
                     "double-only (mixed precision changes GRAPE "
                     "convergence)");
}

void
checkRawIo(const FileContext &ctx)
{
    // Only the layers whose I/O the chaos tests must be able to fault:
    // durable storage, the wire protocol, and the fleet front end.
    // Reads are covered by the protocol's own wrapper; writes are
    // where corruption lives.
    const bool covered = startsWith(ctx.path, "src/store/")
        || startsWith(ctx.path, "src/service/")
        || startsWith(ctx.path, "src/fleet/");
    if (!covered)
        return;
    static const std::regex pattern(
        R"((::\s*)?\b(write|send|pwrite|writev|sendto|sendmsg)\s*\()");
    checkLinePattern(ctx, "raw-io", pattern,
                     "raw write()/send() syscall bypasses the "
                     "failpoint-aware checked* wrappers in "
                     "src/common/failpoint.h; route I/O through them "
                     "so fault injection covers this path");
}

void
checkHeaderGuard(const FileContext &ctx)
{
    if (ctx.path.size() < 2
        || ctx.path.compare(ctx.path.size() - 2, 2, ".h") != 0)
        return;
    if (ctx.stripped.find("#pragma once") != std::string::npos)
        return;
    const std::string expected = expectedHeaderGuard(ctx.path);
    static const std::regex ifndef_re(R"(#\s*ifndef\s+([A-Za-z0-9_]+))");
    static const std::regex define_re(R"(#\s*define\s+([A-Za-z0-9_]+))");
    std::smatch mi, md;
    const bool has_ifndef =
        std::regex_search(ctx.stripped, mi, ifndef_re);
    const bool has_define =
        std::regex_search(ctx.stripped, md, define_re);
    if (!has_ifndef || !has_define) {
        ctx.emit("header-guard", 1,
                 "missing include guard; expected " + expected
                     + " (or #pragma once)");
        return;
    }
    const std::string got = mi[1].str();
    const int line = lineOfOffset(
        ctx.stripped, static_cast<std::size_t>(mi.position()));
    if (got != expected)
        ctx.emit("header-guard", line,
                 "include guard " + got + " does not match canonical "
                     + expected);
    else if (md[1].str() != got)
        ctx.emit("header-guard", line,
                 "#ifndef " + got + " is not followed by a matching "
                     + "#define");
}

void
checkMatrixProductInLoop(const FileContext &ctx)
{
    // Only the QOC/simulator hot paths: a Matrix operator* allocates
    // its result, and inside GRAPE-scale loops that allocation churn
    // is exactly what the kernel layer (matmulInto + scratch reuse)
    // exists to eliminate.
    const bool hot = startsWith(ctx.path, "src/qoc/")
        || startsWith(ctx.path, "src/sim/");
    if (!hot)
        return;
    const std::set<std::string> names =
        matrixDeclNames(ctx.stripped);
    if (names.empty())
        return;
    // name [idx]? * name [idx]?  -- call syntax `name(...)` on either
    // side is excluded (left: the ')' breaks the match; right: the
    // lookahead), so element access u(r, c) never trips the rule.
    static const std::regex prod(
        R"(([A-Za-z_]\w*)\s*(\[[^\][]*\])?\s*\*\s*([A-Za-z_]\w*)\b\s*(\[[^\][]*\])?(?!\s*[\(\[]))");
    // name.adjoint() * ...  /  name * name.adjoint()
    static const std::regex chain_left(
        R"(([A-Za-z_]\w*)\s*\.\s*(adjoint|transpose|conjugate)\s*\(\s*\)\s*\*)");
    static const std::regex chain_right(
        R"(([A-Za-z_]\w*)\b\s*\*\s*([A-Za-z_]\w*)\s*\.\s*(adjoint|transpose|conjugate)\s*\(\s*\))");
    std::set<int> flagged;
    for (const auto &[begin, end] : findLoopBodies(ctx.stripped)) {
        const std::string body = ctx.stripped.substr(begin, end - begin);
        auto scan = [&](const std::regex &re, auto matches) {
            auto it = std::sregex_iterator(body.begin(), body.end(), re);
            for (; it != std::sregex_iterator(); ++it) {
                if (!matches(*it))
                    continue;
                flagged.insert(lineOfOffset(
                    ctx.stripped,
                    begin + static_cast<std::size_t>(it->position())));
            }
        };
        scan(prod, [&](const std::smatch &m) {
            return names.count(m[1].str()) > 0
                && names.count(m[3].str()) > 0;
        });
        scan(chain_left, [&](const std::smatch &m) {
            return names.count(m[1].str()) > 0;
        });
        scan(chain_right, [&](const std::smatch &m) {
            return names.count(m[1].str()) > 0
                && names.count(m[2].str()) > 0;
        });
    }
    for (const int line : flagged)
        ctx.emit("matrix-product-in-loop", line,
                 "allocating Matrix operator* inside a loop; multiply "
                 "into reused scratch via matmulInto / the kernels:: "
                 "entry points (DESIGN.md §11), or hoist the product "
                 "out of the loop");
}

void
checkUnorderedIteration(const FileContext &ctx,
                        const std::set<std::string> &extra_decls)
{
    if (!producesOutput(ctx.stripped))
        return;
    std::set<std::string> names = unorderedDeclNames(ctx.stripped);
    names.insert(extra_decls.begin(), extra_decls.end());
    if (names.empty())
        return;
    for (const RangeFor &rf : findRangeFors(ctx.stripped)) {
        for (const std::string &name : names) {
            if (!containsWord(rf.rangeExpr, name))
                continue;
            ctx.emit("unordered-iteration",
                     lineOfOffset(ctx.stripped, rf.offset),
                     "iterating unordered container '" + name
                         + "' in a file that produces serialized "
                           "output; hash order must not reach bytes a "
                           "client sees -- use std::map, sort before "
                           "emitting, or suppress with a determinism "
                           "argument");
            break;
        }
    }
}

void
lintInto(const std::string &path, const std::string &content,
         const std::set<std::string> &companion_decls,
         std::vector<Finding> &findings)
{
    const std::string stripped = stripCommentsAndStrings(content);
    const std::vector<std::string> raw_lines = splitLines(content);
    const std::vector<std::string> stripped_lines =
        splitLines(stripped);
    const std::map<int, std::set<std::string>> suppressed =
        parseSuppressions(raw_lines);
    FileContext ctx{path,           content,    stripped,
                    stripped_lines, suppressed, findings};
    checkUnseededRandom(ctx);
    checkNakedMutex(ctx);
    checkPrintfOutput(ctx);
    checkProcessControl(ctx);
    checkFloatNumerics(ctx);
    checkRawIo(ctx);
    checkHeaderGuard(ctx);
    checkMatrixProductInLoop(ctx);
    checkUnorderedIteration(ctx, companion_decls);
}

std::string
readFileOrDie(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    PAQOC_FATAL_IF(!in, "paqoc_lint: cannot read '", p.string(), "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
ruleCount()
{
    return static_cast<int>(ruleNames().size());
}

std::vector<std::string>
ruleNames()
{
    return {"float-numerics",  "header-guard",
            "matrix-product-in-loop", "naked-mutex",
            "printf-output",   "process-control",
            "raw-io",          "unordered-iteration",
            "unseeded-random"};
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    lintInto(path, content, {}, findings);
    return findings;
}

std::vector<Finding>
lintTree(const std::string &base, const std::vector<std::string> &roots)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    for (const std::string &root : roots) {
        const fs::path dir = fs::path(base) / root;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cpp" && ext != ".h")
                continue;
            paths.push_back(
                fs::relative(entry.path(), base).generic_string());
        }
    }
    // Directory iteration order is unspecified; the lint report is
    // itself an output, so sort.
    std::sort(paths.begin(), paths.end());

    std::vector<Finding> findings;
    for (const std::string &rel : paths) {
        const std::string content =
            readFileOrDie(fs::path(base) / rel);
        // A .cpp sees the unordered members declared by its companion
        // header (same stem), so member iteration in the
        // implementation file is caught too.
        std::set<std::string> companion_decls;
        if (rel.size() > 4
            && rel.compare(rel.size() - 4, 4, ".cpp") == 0) {
            const fs::path header =
                fs::path(base) / (rel.substr(0, rel.size() - 4) + ".h");
            if (fs::exists(header))
                companion_decls = unorderedDeclNames(
                    stripCommentsAndStrings(readFileOrDie(header)));
        }
        lintInto(rel, content, companion_decls, findings);
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule)
                      < std::tie(b.file, b.line, b.rule);
              });
    return findings;
}

Json
findingsToJson(const std::vector<Finding> &findings)
{
    Json report = Json::object();
    report.set("ok", Json(findings.empty()));
    report.set("checked_rules", Json(ruleCount()));
    Json list = Json::array();
    for (const Finding &f : findings) {
        Json j = Json::object();
        j.set("rule", Json(f.rule));
        j.set("file", Json(f.file));
        j.set("line", Json(f.line));
        j.set("message", Json(f.message));
        list.push(std::move(j));
    }
    report.set("findings", std::move(list));
    return report;
}

} // namespace lint
} // namespace paqoc
