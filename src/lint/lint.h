#ifndef PAQOC_LINT_LINT_H_
#define PAQOC_LINT_LINT_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace paqoc {
namespace lint {

/**
 * Project linter (DESIGN.md §8): token/regex-level enforcement of
 * PAQOC's concurrency and determinism invariants, with no libclang
 * dependency so it builds and runs anywhere the project does. The
 * rules are deliberately shallow -- they look at lexed source text
 * (comments and string literals stripped), not an AST -- and
 * deliberately strict: a site that is safe for a non-obvious reason
 * carries an explicit, greppable suppression comment:
 *
 *     // paqoc-lint: allow(rule-name[, rule-name...]) why it is safe
 *
 * which silences the named rules on that line and the next one (so a
 * justification may sit on its own line above the flagged code).
 *
 * Rule catalogue (ids are stable; tests and CI match on them):
 *   unseeded-random      rand()/srand()/std::random_device/std::mt19937
 *                        anywhere outside src/common/rng.h: all
 *                        randomness must flow through the seeded Rng.
 *   unordered-iteration  range-for over a container declared
 *                        unordered_map/unordered_set in a file that
 *                        produces serialized output (Json, journal,
 *                        protocol frames, file streams): hash order
 *                        must never reach bytes a client can see.
 *   naked-mutex          std::mutex / std::condition_variable /
 *                        std::lock_guard / std::unique_lock /
 *                        std::scoped_lock outside the annotated
 *                        wrappers in src/common/thread_annotations.h:
 *                        unwrapped primitives are invisible to clang's
 *                        -Wthread-safety analysis.
 *   printf-output        printf-family calls (printf, fprintf, puts,
 *                        fputs, putchar, sprintf -- snprintf into a
 *                        local buffer is fine) in library code under
 *                        src/: libraries return values, they do not
 *                        write to the process's streams.
 *   header-guard         every .h must carry the canonical include
 *                        guard PAQOC_<PATH>_H_ (matching #ifndef /
 *                        #define pair) or #pragma once.
 *   float-numerics       the `float` type in QOC numerics
 *                        (src/linalg, src/qoc, src/paqoc, src/sim):
 *                        pulse math is double-only; mixed precision
 *                        silently changes GRAPE convergence.
 *   raw-io               raw write()/send()-family syscalls in the
 *                        store, service, and fleet layers (src/store,
 *                        src/service, src/fleet): durable and wire
 *                        I/O must go through the failpoint-aware
 *                        checked* wrappers in src/common/failpoint.h
 *                        so chaos tests can inject faults on every
 *                        path.
 *   process-control      fork()/vfork()/kill()/waitpid()/exec*()/
 *                        posix_spawn*() anywhere except
 *                        src/service/supervisor.* and
 *                        src/fleet/router.*: child-process lifetime
 *                        flows through runSupervised or the fleet
 *                        Router so the restart budget, heartbeat
 *                        watchdog, and signal forwarding live in one
 *                        audited state machine (DESIGN.md §10, §12).
 *   matrix-product-in-loop  Matrix operator* between matrix-typed
 *                        operands inside a for/while body in src/qoc
 *                        or src/sim: the product allocates its result
 *                        every trip; hot loops multiply into reused
 *                        scratch via matmulInto or the kernels::
 *                        entry points instead (DESIGN.md §11).
 *                        Element access `m(r, c)` and calls never
 *                        trip the rule.
 */
struct Finding
{
    std::string rule;    ///< stable rule id (see catalogue above)
    std::string file;    ///< path as given to the linter
    int line = 0;        ///< 1-based
    std::string message; ///< human-readable explanation
};

/** Number of distinct rules the linter implements. */
int ruleCount();

/** The stable rule ids, sorted (for --list-rules and tests). */
std::vector<std::string> ruleNames();

/**
 * Lint one in-memory file. `path` decides which rules apply (library
 * vs. tool code, exempt files) and must use '/' separators relative
 * to the repository root, e.g. "src/qoc/pulse_cache.cpp".
 */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &content);

/**
 * Lint every .cpp/.h under `roots` (relative to `base`), in sorted
 * path order so reports are deterministic. Unreadable files raise
 * FatalError.
 */
std::vector<Finding> lintTree(const std::string &base,
                              const std::vector<std::string> &roots);

/**
 * Machine-readable report: {"ok": bool, "checked_rules": N,
 * "findings": [{rule, file, line, message}...]} with findings in
 * (file, line, rule) order.
 */
Json findingsToJson(const std::vector<Finding> &findings);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_LINT_H_
