#ifndef PAQOC_LINT_LINT_H_
#define PAQOC_LINT_LINT_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace paqoc {
namespace lint {

/**
 * Project analyzer (DESIGN.md §8, §13): enforcement of PAQOC's
 * concurrency and determinism invariants, with no libclang dependency
 * so it builds and runs anywhere the project does. Two layers:
 *
 *  - *Per-file rules* look at lexed source text (comments and string
 *    literals stripped), one file at a time. They are deliberately
 *    shallow and deliberately strict.
 *  - *Whole-program passes* (analyzer.h) link a per-file
 *    symbol/call/lock-site index (index.h) across the tree: the
 *    lock-order graph, the failpoint-coverage audit, and the
 *    determinism taint pass all report properties no single file can
 *    show.
 *
 * A site that is safe for a non-obvious reason carries an explicit,
 * greppable suppression comment:
 *
 *     // paqoc-lint: allow(rule-name[, rule-name...]) why it is safe
 *
 * which silences the named rules on that line and the next one (so a
 * justification may sit on its own line above the flagged code).
 * Whole-program findings land on a concrete witness line (the lock
 * acquisition, the taint source, the failpoint registration) and are
 * suppressed the same way, at that line.
 *
 * Per-file rule catalogue (ids are stable; tests and CI match on
 * them):
 *   unseeded-random      rand()/srand()/std::random_device/std::mt19937
 *                        anywhere outside src/common/rng.h: all
 *                        randomness must flow through the seeded Rng.
 *   unordered-iteration  range-for over a container declared
 *                        unordered_map/unordered_set in a file that
 *                        produces serialized output (Json, journal,
 *                        protocol frames, file streams): hash order
 *                        must never reach bytes a client can see.
 *   naked-mutex          std::mutex / std::condition_variable /
 *                        std::lock_guard / std::unique_lock /
 *                        std::scoped_lock outside the annotated
 *                        wrappers in src/common/thread_annotations.h:
 *                        unwrapped primitives are invisible to clang's
 *                        -Wthread-safety analysis.
 *   printf-output        printf-family calls (printf, fprintf, puts,
 *                        fputs, putchar, sprintf -- snprintf into a
 *                        local buffer is fine) in library code under
 *                        src/: libraries return values, they do not
 *                        write to the process's streams.
 *   header-guard         every .h must carry the canonical include
 *                        guard PAQOC_<PATH>_H_ (matching #ifndef /
 *                        #define pair) or #pragma once. The only rule
 *                        with an autofix (paqoc_lint --fix).
 *   float-numerics       the `float` type in QOC numerics
 *                        (src/linalg, src/qoc, src/paqoc, src/sim):
 *                        pulse math is double-only; mixed precision
 *                        silently changes GRAPE convergence.
 *   raw-io               raw write()/send()-family syscalls (write,
 *                        send, pwrite, writev, sendto, sendmsg) in
 *                        the store, service, fleet, and tier layers
 *                        (src/store, src/service, src/fleet,
 *                        src/tier): durable
 *                        and wire I/O must go through the
 *                        failpoint-aware checked* wrappers in
 *                        src/common/failpoint.h so chaos tests can
 *                        inject faults on every path. The SCM_RIGHTS
 *                        handoff in src/fleet/fdpass.cpp is the one
 *                        allowlisted file: cmsg ancillary payloads
 *                        have no checked* spelling, and the file
 *                        carries its own `fleet.fdpass` failpoint.
 *   process-control      fork()/vfork()/kill()/waitpid()/exec*()/
 *                        posix_spawn*() anywhere except
 *                        src/service/supervisor.* and
 *                        src/fleet/router.*: child-process lifetime
 *                        flows through runSupervised or the fleet
 *                        Router so the restart budget, heartbeat
 *                        watchdog, and signal forwarding live in one
 *                        audited state machine (DESIGN.md §10, §12).
 *   matrix-product-in-loop  Matrix operator* between matrix-typed
 *                        operands inside a for/while body in src/qoc
 *                        or src/sim: the product allocates its result
 *                        every trip; hot loops multiply into reused
 *                        scratch via matmulInto or the kernels::
 *                        entry points instead (DESIGN.md §11).
 *                        Element access `m(r, c)` and calls never
 *                        trip the rule.
 *
 * Whole-program rule catalogue (analyzer.h; DESIGN.md §13):
 *   lock-order-cycle     a cycle in the global lock-order graph: lock
 *                        B acquired (directly or through a resolved
 *                        call chain) while lock A is held, and A
 *                        likewise reachable while B is held. Reported
 *                        with the full witness path.
 *   untested-failpoint   a failpoint name registered in src/ or
 *                        tools/ that no test (arm() calls and spec
 *                        strings in tests/ C++, PAQOC_FAILPOINTS
 *                        specs in tests/ shell scripts) ever arms:
 *                        dead chaos coverage.
 *   unguarded-checked-io a checked* I/O call site whose failpoint
 *                        name is not a literal and cannot be traced
 *                        to one in the file or its companion header:
 *                        fault injection cannot target the path.
 *   determinism-taint    a nondeterminism source (wall clock,
 *                        pointer-to-integer cast, unordered
 *                        iteration) that reaches a serialization sink
 *                        (Json dump, journal append, protocol frame)
 *                        in the same function or one resolved call
 *                        level away.
 */
struct Finding
{
    std::string rule;    ///< stable rule id (see catalogue above)
    std::string file;    ///< path as given to the linter
    int line = 0;        ///< 1-based
    std::string message; ///< human-readable explanation
};

/** Number of distinct rules the analyzer implements. */
int ruleCount();

/** The stable rule ids, sorted (for --list-rules and tests). */
std::vector<std::string> ruleNames();

/** One-line description per rule id (SARIF rule metadata). */
std::string ruleDescription(const std::string &rule);

/**
 * Run the per-file rules over one in-memory file. `path` decides
 * which rules apply (library vs. tool code, exempt files) and must
 * use '/' separators relative to the repository root, e.g.
 * "src/qoc/pulse_cache.cpp". Whole-program rules need the analyzer
 * (analyzer.h) and do not fire here.
 */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &content);

/**
 * lintFile with the companion header's content (same stem, .h), so
 * member iteration over unordered containers declared in the header
 * is caught in the implementation file too. Pass "" when absent.
 */
std::vector<Finding>
lintFileWithCompanion(const std::string &path, const std::string &content,
                      const std::string &companion);

/**
 * Full analysis of every .cpp/.h under `roots` (relative to `base`):
 * per-file rules plus the whole-program passes, findings in sorted
 * (file, line, rule) order so reports are deterministic. Unreadable
 * files raise FatalError. Thin wrapper over analyzeTree (analyzer.h)
 * with no cache; implemented there.
 */
std::vector<Finding> lintTree(const std::string &base,
                              const std::vector<std::string> &roots);

/**
 * Machine-readable report: {"ok": bool, "checked_rules": N,
 * "findings": [{rule, file, line, message}...]} with findings in
 * (file, line, rule) order.
 */
Json findingsToJson(const std::vector<Finding> &findings);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_LINT_H_
