#ifndef PAQOC_LINT_ANALYZER_H_
#define PAQOC_LINT_ANALYZER_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "lint/lint.h"
#include "lint/passes.h"

namespace paqoc {
namespace lint {

/**
 * Analyzer orchestration (DESIGN.md §13): enumerate the tree, build or
 * reuse per-file indexes in parallel, run the whole-program passes,
 * and fold everything into one deterministic report.
 *
 * The incremental cache is a single JSON file holding every FileIndex
 * keyed by FNV-1a content hash (plus the companion header's hash,
 * because a .cpp's index depends on declarations it pulls from its
 * header). A warm run re-lints only files whose bytes changed; the
 * whole-program passes always re-run, because they are a pure, cheap
 * function of the linked indexes and any file's change can move a
 * global conclusion.
 */

struct AnalyzeOptions
{
    /// cache file path; "" disables the cache entirely
    std::string cachePath;
};

/** What the incremental cache did on this run (reported in --json). */
struct CacheStats
{
    bool loaded = false; ///< a usable cache file was read
    int files = 0;       ///< indexed files considered
    int reused = 0;      ///< indexes served from the cache
    int reindexed = 0;   ///< indexes rebuilt (changed or cold)
};

struct AnalyzeResult
{
    std::vector<Finding> findings;  ///< (file, line, rule) sorted
    std::vector<LockEdge> lockGraph; ///< the full lock-order graph
    CacheStats cache;
};

/**
 * Run the full analysis over every .cpp/.h under `roots` (relative to
 * `base`), plus .sh chaos/e2e drivers under tests/ for the
 * failpoint-arming scan. Unreadable files raise FatalError.
 */
AnalyzeResult analyzeTree(const std::string &base,
                          const std::vector<std::string> &roots,
                          const AnalyzeOptions &options);

/**
 * The extended machine-readable report: findingsToJson's fields plus
 * "lock_order_graph" (every edge with witness and via) and "cache"
 * (the CacheStats of this run).
 */
Json analyzeReportJson(const AnalyzeResult &result);

/**
 * header-guard autofix, pure part: returns `content` rewritten so the
 * file carries the canonical PAQOC_<PATH>_H_ guard -- renaming an
 * existing #ifndef/#define/#endif-comment trio, or wrapping the file
 * in a fresh guard when it has none. Returns `content` unchanged when
 * the guard is already canonical or the file uses #pragma once
 * (idempotent by construction).
 */
std::string fixHeaderGuardContent(const std::string &path,
                                  const std::string &content);

/**
 * Apply fixHeaderGuardContent to every .h under `roots`, rewriting
 * changed files in place. Returns the repo-relative paths rewritten.
 */
std::vector<std::string>
fixHeaderGuards(const std::string &base,
                const std::vector<std::string> &roots);

} // namespace lint
} // namespace paqoc

#endif // PAQOC_LINT_ANALYZER_H_
