#ifndef PAQOC_COMMON_RNG_H_
#define PAQOC_COMMON_RNG_H_

#include <cstdint>

namespace paqoc {

/**
 * Deterministic SplitMix64 random number generator.
 *
 * All randomness in the project (workload generation, GRAPE initial
 * guesses, property-test inputs) flows through this generator so that
 * every run is reproducible from a printed seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi]. Requires lo <= hi. */
    int
    range(int lo, int hi)
    {
        return lo + static_cast<int>(below(
            static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace paqoc

#endif // PAQOC_COMMON_RNG_H_
