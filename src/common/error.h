#ifndef PAQOC_COMMON_ERROR_H_
#define PAQOC_COMMON_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace paqoc {

/**
 * Exception thrown for user-facing errors: malformed circuits, invalid
 * parameters, unsatisfiable requests. Analogous to gem5's fatal().
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Exception thrown for internal invariant violations: states that should
 * never be reachable regardless of input. Analogous to gem5's panic().
 */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

template <typename Err, typename... Args>
[[noreturn]] void
throwFormatted(const char *file, int line, Args &&...args)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": ";
    (oss << ... << args);
    throw Err(oss.str());
}

} // namespace detail

} // namespace paqoc

/** Raise a FatalError when a user-level precondition fails. */
#define PAQOC_FATAL_IF(cond, ...)                                           \
    do {                                                                    \
        if (cond) {                                                         \
            ::paqoc::detail::throwFormatted<::paqoc::FatalError>(           \
                __FILE__, __LINE__, __VA_ARGS__);                           \
        }                                                                   \
    } while (false)

/** Raise an InternalError when an internal invariant is violated. */
#define PAQOC_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::paqoc::detail::throwFormatted<::paqoc::InternalError>(        \
                __FILE__, __LINE__, "assertion failed: " #cond " ",        \
                __VA_ARGS__);                                               \
        }                                                                   \
    } while (false)

#endif // PAQOC_COMMON_ERROR_H_
