#ifndef PAQOC_COMMON_QUOTA_H_
#define PAQOC_COMMON_QUOTA_H_

#include <atomic>
#include <chrono>
#include <string>

#include "common/error.h"

namespace paqoc {

/**
 * Per-request resource budgets (DESIGN.md §10). A zero limit means
 * "unlimited"; the service resolves each request's effective limits
 * from its own caps plus the request's overrides (resolveQuota) and
 * hands the optimizer a QuotaToken to charge against.
 */
struct QuotaLimits
{
    /** GRAPE/ADAM iterations across all trials of the request. */
    long maxIters = 0;
    /** Wall-clock budget from token construction, in milliseconds. */
    double maxWallMs = 0.0;
    /** Distinct pulses the request may derive (cache misses). */
    long maxResidentPulses = 0;

    bool
    any() const
    {
        return maxIters > 0 || maxWallMs > 0.0 || maxResidentPulses > 0;
    }
};

/**
 * Effective per-request limits: the request's value, clamped by the
 * server cap. A zero cap passes the request value through; a zero (or
 * absent) request value inherits the cap; otherwise the smaller wins,
 * so a request can tighten but never widen the server's budget.
 */
inline QuotaLimits
resolveQuota(const QuotaLimits &caps, const QuotaLimits &requested)
{
    auto clamp_long = [](long cap, long req) {
        if (cap <= 0)
            return req < 0 ? 0L : req;
        if (req <= 0)
            return cap;
        return req < cap ? req : cap;
    };
    auto clamp_ms = [](double cap, double req) {
        if (cap <= 0.0)
            return req < 0.0 ? 0.0 : req;
        if (req <= 0.0)
            return cap;
        return req < cap ? req : cap;
    };
    QuotaLimits out;
    out.maxIters = clamp_long(caps.maxIters, requested.maxIters);
    out.maxWallMs = clamp_ms(caps.maxWallMs, requested.maxWallMs);
    out.maxResidentPulses =
        clamp_long(caps.maxResidentPulses, requested.maxResidentPulses);
    return out;
}

/** Raised when a hard quota is exhausted mid-request. */
class QuotaExceededError : public FatalError
{
  public:
    QuotaExceededError(const char *limit, const std::string &detail,
                       long iters_charged = 0)
        : FatalError("quota_exceeded: " + std::string(limit)
                     + (detail.empty() ? "" : " (" + detail + ")")),
          limit_(limit), iters_charged_(iters_charged)
    {}

    /** Stable limit id: "max_iters" | "max_wall_ms" |
     *  "max_resident_pulses". */
    const char *limit() const { return limit_; }

    /** Iterations spent before the trip -- tripped work still costs
     *  real compute, so tenant budgets charge it (fleet/budget.h). */
    long itersCharged() const { return iters_charged_; }

  private:
    const char *limit_;
    long iters_charged_;
};

/**
 * Cooperative budget token of one request. GRAPE charges an iteration
 * at the end of every ADAM step and the pulse generators charge one
 * resident pulse per cache-missing derivation; the first charge that
 * exhausts a budget trips the token permanently. In hard mode the
 * charging site raises QuotaExceededError (throwIfExceeded); in
 * degrade mode (degradeOnExceeded) the optimizer instead stops early
 * and hands back its best effort through the stitched-fallback path.
 *
 * Thread-safe: trials charge concurrently from the thread pool. Which
 * trial observes the trip first depends on scheduling, but whether the
 * request as a whole trips is a function of total work vs. budget, and
 * a tripped hard token always surfaces as the same structured error.
 */
class QuotaToken
{
  public:
    explicit QuotaToken(const QuotaLimits &limits,
                        bool degrade_on_exceeded = false)
        : limits_(limits), degrade_(degrade_on_exceeded),
          start_(std::chrono::steady_clock::now())
    {}

    QuotaToken(const QuotaToken &) = delete;
    QuotaToken &operator=(const QuotaToken &) = delete;

    /**
     * Charge `n` optimizer iterations (also polls the wall clock).
     * False once any budget is exhausted. Iterations are counted even
     * when maxIters is unlimited: itersCharged() feeds the per-tenant
     * budget ledger (fleet/budget.h), which meters spend regardless of
     * whether this request carries a hard cap.
     */
    bool
    chargeIterations(long n)
    {
        if (tripped())
            return false;
        const long total =
            iters_.fetch_add(n, std::memory_order_relaxed) + n;
        if (limits_.maxIters > 0 && total > limits_.maxIters)
            trip("max_iters");
        else if (wallExceeded())
            trip("max_wall_ms");
        return !tripped();
    }

    /** Charge one derived (cache-missing) pulse. */
    bool
    chargeResidentPulse()
    {
        if (tripped())
            return false;
        if (limits_.maxResidentPulses > 0
            && resident_.fetch_add(1, std::memory_order_relaxed) + 1
                   > limits_.maxResidentPulses)
            trip("max_resident_pulses");
        else if (wallExceeded())
            trip("max_wall_ms");
        return !tripped();
    }

    bool exceeded() const { return tripped(); }

    /** Stable id of the first exhausted limit (nullptr if none). */
    const char *
    limitName() const
    {
        return limit_.load(std::memory_order_acquire);
    }

    bool degradeOnExceeded() const { return degrade_; }

    /** Raise the structured error for the tripped limit. */
    [[noreturn]] void
    throwQuotaExceeded() const
    {
        const char *limit = limitName();
        throw QuotaExceededError(limit != nullptr ? limit : "quota",
                                 describe(limit), itersCharged());
    }

    long itersCharged() const
    { return iters_.load(std::memory_order_relaxed); }
    long residentCharged() const
    { return resident_.load(std::memory_order_relaxed); }
    const QuotaLimits &limits() const { return limits_; }

  private:
    bool
    tripped() const
    {
        return limit_.load(std::memory_order_acquire) != nullptr;
    }

    void
    trip(const char *limit)
    {
        const char *expected = nullptr;
        limit_.compare_exchange_strong(expected, limit,
                                       std::memory_order_acq_rel);
    }

    bool
    wallExceeded() const
    {
        if (limits_.maxWallMs <= 0.0)
            return false;
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double, std::milli>(elapsed)
                   .count()
               > limits_.maxWallMs;
    }

    std::string
    describe(const char *limit) const
    {
        if (limit == nullptr)
            return "";
        const std::string name(limit);
        if (name == "max_iters")
            return "iteration budget "
                   + std::to_string(limits_.maxIters) + " exhausted";
        if (name == "max_wall_ms")
            return "wall-clock budget "
                   + std::to_string(limits_.maxWallMs)
                   + " ms exhausted";
        if (name == "max_resident_pulses")
            return "resident-pulse budget "
                   + std::to_string(limits_.maxResidentPulses)
                   + " exhausted";
        return "";
    }

    QuotaLimits limits_;
    bool degrade_;
    std::chrono::steady_clock::time_point start_;
    std::atomic<long> iters_{0};
    std::atomic<long> resident_{0};
    std::atomic<const char *> limit_{nullptr};
};

} // namespace paqoc

#endif // PAQOC_COMMON_QUOTA_H_
