#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace paqoc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    PAQOC_FATAL_IF(headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    PAQOC_FATAL_IF(cells.size() != headers_.size(),
                   "row has ", cells.size(), " cells, expected ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << cells[c];
        }
        oss << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    oss << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) oss << ',';
            oss << cells[c];
        }
        oss << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

} // namespace paqoc
