#include "common/circuit_breaker.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace paqoc {
namespace {

/**
 * Default clock: monotonic milliseconds. Never serialized -- breaker
 * timing gates *whether* a remote call happens, not what any payload
 * contains (tests inject a fake clock instead of sleeping).
 */
double
monotonicMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options,
                               Clock clock)
    : options_(options),
      clock_(clock ? std::move(clock) : Clock(&monotonicMs))
{
    const int depth = std::max(1, options_.windowSize);
    MutexLock lock(mutex_);
    window_.assign(static_cast<std::size_t>(depth), false);
}

bool
CircuitBreaker::allow()
{
    MutexLock lock(mutex_);
    maybeProbeLocked();
    switch (state_) {
    case State::Closed:
        ++counters_.allowed;
        return true;
    case State::Open:
        ++counters_.rejected;
        return false;
    case State::HalfOpen:
        if (probesInFlight_ < std::max(1, options_.halfOpenProbes)) {
            ++probesInFlight_;
            ++counters_.allowed;
            return true;
        }
        ++counters_.rejected;
        return false;
    }
    return false; // unreachable
}

void
CircuitBreaker::onSuccess()
{
    MutexLock lock(mutex_);
    if (state_ == State::HalfOpen) {
        // Probe came back healthy: close and forget the bad spell.
        state_ = State::Closed;
        ++counters_.closed;
        probesInFlight_ = 0;
        std::fill(window_.begin(), window_.end(), false);
        windowNext_ = 0;
        windowCount_ = 0;
        windowFailures_ = 0;
        return;
    }
    if (state_ == State::Closed)
        recordLocked(/*failure=*/false);
}

void
CircuitBreaker::onFailure()
{
    MutexLock lock(mutex_);
    if (state_ == State::HalfOpen) {
        // The probe failed: back to Open for a fresh cooldown.
        openLocked();
        return;
    }
    if (state_ != State::Closed)
        return;
    recordLocked(/*failure=*/true);
    if (windowCount_ < std::max(1, options_.minSamples))
        return;
    const double rate = static_cast<double>(windowFailures_)
        / static_cast<double>(windowCount_);
    if (rate >= options_.failureRateToOpen)
        openLocked();
}

CircuitBreaker::State
CircuitBreaker::state()
{
    MutexLock lock(mutex_);
    maybeProbeLocked();
    return state_;
}

CircuitBreaker::Counters
CircuitBreaker::counters() const
{
    MutexLock lock(mutex_);
    return counters_;
}

const char *
CircuitBreaker::stateName(State state)
{
    switch (state) {
    case State::Closed:
        return "closed";
    case State::Open:
        return "open";
    case State::HalfOpen:
        return "half-open";
    }
    return "?";
}

void
CircuitBreaker::recordLocked(bool failure)
{
    const int depth = static_cast<int>(window_.size());
    if (windowCount_ == depth) {
        // Window full: the slot being overwritten falls out of the
        // rate.
        if (window_[static_cast<std::size_t>(windowNext_)])
            --windowFailures_;
    } else {
        ++windowCount_;
    }
    window_[static_cast<std::size_t>(windowNext_)] = failure;
    if (failure)
        ++windowFailures_;
    windowNext_ = (windowNext_ + 1) % depth;
}

void
CircuitBreaker::openLocked()
{
    state_ = State::Open;
    ++counters_.opened;
    openedAtMs_ = clock_();
    probesInFlight_ = 0;
}

void
CircuitBreaker::maybeProbeLocked()
{
    if (state_ != State::Open)
        return;
    if (clock_() - openedAtMs_ < options_.cooldownMs)
        return;
    state_ = State::HalfOpen;
    ++counters_.halfOpened;
    probesInFlight_ = 0;
}

} // namespace paqoc
