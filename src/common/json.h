#ifndef PAQOC_COMMON_JSON_H_
#define PAQOC_COMMON_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace paqoc {

/**
 * Minimal JSON document model shared by the pulse-schedule export, the
 * daemon wire protocol, and the bench JSON lines. Self-contained on
 * purpose: the container images carry no JSON library and the repo
 * bakes in no third-party code.
 *
 * Design points that matter to callers:
 *  - Objects preserve insertion order and dump() is deterministic, so
 *    two structurally identical documents serialize byte-identically
 *    (the service's determinism guarantee leans on this).
 *  - Numbers are doubles; integral values in the exact-double range
 *    print without a decimal point, everything else prints with %.17g
 *    so doubles survive a round trip exactly.
 *  - parse() raises FatalError with a line/column position on any
 *    malformed input; it never partially succeeds.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool value) : type_(Type::Bool), bool_(value) {}
    Json(double value) : type_(Type::Number), number_(value) {}
    Json(int value) : Json(static_cast<double>(value)) {}
    Json(std::size_t value) : Json(static_cast<double>(value)) {}
    Json(const char *value) : type_(Type::String), string_(value) {}
    Json(std::string value)
        : type_(Type::String), string_(std::move(value))
    {}

    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; raise FatalError on a type mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() narrowed to int; rejects non-integral values. */
    int asInt() const;
    const std::string &asString() const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t index) const;
    /** Append an element (value must be an array). */
    Json &push(Json value);

    /** Object access. */
    bool contains(const std::string &key) const;
    /** Member lookup; raises FatalError when the key is absent. */
    const Json &at(const std::string &key) const;
    /** Member lookup returning `fallback` when the key is absent. */
    const Json &get(const std::string &key, const Json &fallback) const;
    /** Insert or overwrite a member (value must be an object). */
    Json &set(const std::string &key, Json value);

    const std::vector<Json> &items() const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Compact deterministic serialization. */
    std::string dump() const;

    /** Parse a complete JSON document (trailing junk is an error). */
    static Json parse(const std::string &text);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace paqoc

#endif // PAQOC_COMMON_JSON_H_
