#ifndef PAQOC_COMMON_TABLE_H_
#define PAQOC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace paqoc {

/**
 * Fixed-column text table used by the benchmark harnesses to print
 * paper-style rows (Table I/II/III, Fig. 10-14 series).
 *
 * The table right-pads every cell to its column's widest entry so the
 * output lines up in a terminal, and can also emit CSV for plotting.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for callers). */
    static std::string num(double value, int precision = 3);

    /** Format a percentage such as "54.2%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render as an aligned text table. */
    std::string toText() const;

    /** Render as CSV (RFC-4180-ish, commas in cells are not escaped). */
    std::string toCsv() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace paqoc

#endif // PAQOC_COMMON_TABLE_H_
