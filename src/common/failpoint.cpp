#include "common/failpoint.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string_view>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"
#include "common/thread_annotations.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0 // non-Linux fallback: rely on SIG_IGN instead
#endif

namespace paqoc {
namespace failpoint {

namespace {

struct Point
{
    Action action = Action::Off;
    long arg = 0;
    long remaining = -1; // -1 = unlimited, 0 = exhausted
    std::size_t fired = 0;
};

struct Registry
{
    Mutex mutex;
    std::map<std::string, Point, std::less<>> points
        PAQOC_GUARDED_BY(mutex);
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/**
 * Number of points that can still fire. Lets the unarmed fast path of
 * evaluate() skip the registry lock entirely.
 */
std::atomic<int> g_live{0};

int
countLive(const Registry &r) PAQOC_REQUIRES(r.mutex)
{
    int live = 0;
    for (const auto &kv : r.points)
        if (kv.second.remaining != 0)
            ++live;
    return live;
}

const char *
actionName(Action action)
{
    switch (action) {
    case Action::Off:
        return "off";
    case Action::ReturnError:
        return "return-error";
    case Action::Enospc:
        return "enospc";
    case Action::Eintr:
        return "eintr";
    case Action::ShortWrite:
        return "short-write";
    case Action::DelayMs:
        return "delay-ms";
    case Action::Abort:
        return "abort";
    }
    return "off";
}

Action
parseAction(const std::string &name)
{
    if (name == "return-error")
        return Action::ReturnError;
    if (name == "enospc")
        return Action::Enospc;
    if (name == "eintr")
        return Action::Eintr;
    if (name == "short-write")
        return Action::ShortWrite;
    if (name == "delay-ms")
        return Action::DelayMs;
    if (name == "abort")
        return Action::Abort;
    PAQOC_FATAL_IF(true, "failpoint: unknown action '", name,
                   "' (expected return-error, enospc, eintr, "
                   "short-write, delay-ms, or abort)");
    return Action::Off;
}

long
parseLong(const std::string &text, const char *what)
{
    PAQOC_FATAL_IF(text.empty(), "failpoint: empty ", what);
    for (char c : text)
        PAQOC_FATAL_IF(c < '0' || c > '9', "failpoint: bad ", what, " '",
                       text, "'");
    return std::strtol(text.c_str(), nullptr, 10);
}

/** Parse "action", "action(arg)", or either followed by ":count". */
Point
parseSpec(const std::string &spec)
{
    Point point;
    std::string body = spec;
    const std::size_t colon = body.rfind(':');
    if (colon != std::string::npos && body.find(')', colon) == std::string::npos) {
        point.remaining = parseLong(body.substr(colon + 1), "count");
        PAQOC_FATAL_IF(point.remaining <= 0,
                       "failpoint: count must be positive in '", spec,
                       "'");
        body.resize(colon);
    }
    const std::size_t open = body.find('(');
    if (open != std::string::npos) {
        PAQOC_FATAL_IF(body.empty() || body.back() != ')',
                       "failpoint: unbalanced '(' in '", spec, "'");
        point.arg =
            parseLong(body.substr(open + 1, body.size() - open - 2),
                      "argument");
        body.resize(open);
    }
    point.action = parseAction(body);
    return point;
}

std::string
trimmed(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && (text[begin] == ' ' || text[begin] == '\t'))
        ++begin;
    while (end > begin
           && (text[end - 1] == ' ' || text[end - 1] == '\t'))
        --end;
    return text.substr(begin, end - begin);
}

void
armOne(const std::string &name, const std::string &spec)
{
    PAQOC_FATAL_IF(name.empty(), "failpoint: empty point name");
    const Point point = parseSpec(spec);
    Registry &r = registry();
    MutexLock lock(r.mutex);
    r.points[name] = point;
    g_live.store(countLive(r), std::memory_order_relaxed);
}

void
armList(const std::string &list)
{
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string entry =
            trimmed(list.substr(begin, end - begin));
        begin = end + 1;
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        PAQOC_FATAL_IF(eq == std::string::npos,
                       "failpoint: entry '", entry,
                       "' is not name=action[(arg)][:count]");
        armOne(trimmed(entry.substr(0, eq)),
               trimmed(entry.substr(eq + 1)));
    }
}

/** Load PAQOC_FAILPOINTS exactly once, before the first evaluation. */
void
ensureEnvLoaded()
{
    static const bool loaded = []() {
        if (const char *env = std::getenv("PAQOC_FAILPOINTS"))
            if (*env != '\0')
                armList(env);
        return true;
    }();
    (void)loaded;
}

} // namespace

Hit
evaluate(const char *name)
{
    ensureEnvLoaded();
    if (g_live.load(std::memory_order_relaxed) == 0)
        return {};
    Hit hit;
    {
        Registry &r = registry();
        MutexLock lock(r.mutex);
        const auto it = r.points.find(std::string_view(name));
        if (it == r.points.end() || it->second.remaining == 0)
            return {};
        Point &point = it->second;
        if (point.remaining > 0 && --point.remaining == 0)
            g_live.store(countLive(r), std::memory_order_relaxed);
        ++point.fired;
        hit.action = point.action;
        hit.arg = point.arg;
    }
    if (hit.action == Action::DelayMs)
        std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    if (hit.action == Action::Abort)
        std::abort();
    return hit;
}

void
arm(const std::string &name, const std::string &spec)
{
    ensureEnvLoaded();
    armOne(name, spec);
}

void
armFromSpec(const std::string &list)
{
    ensureEnvLoaded();
    armList(list);
}

void
disarm(const std::string &name)
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    r.points.erase(name);
    g_live.store(countLive(r), std::memory_order_relaxed);
}

void
disarmAll()
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    r.points.clear();
    g_live.store(0, std::memory_order_relaxed);
}

std::vector<std::string>
armed()
{
    ensureEnvLoaded();
    std::vector<std::string> out;
    Registry &r = registry();
    MutexLock lock(r.mutex);
    for (const auto &kv : r.points) {
        const Point &point = kv.second;
        if (point.remaining == 0)
            continue;
        std::string text = kv.first;
        text += '=';
        text += actionName(point.action);
        if (point.action == Action::DelayMs) {
            text += '(';
            text += std::to_string(point.arg);
            text += ')';
        }
        if (point.remaining > 0) {
            text += ':';
            text += std::to_string(point.remaining);
        }
        out.push_back(std::move(text));
    }
    return out;
}

std::size_t
fired(const std::string &name)
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    const auto it = r.points.find(name);
    return it == r.points.end() ? 0 : it->second.fired;
}

namespace {

/**
 * Shared failure translation for the checked wrappers. Returns true
 * when the injected action fully decided the call (error already in
 * errno and *result set); false means "perform the real operation",
 * with *prefix holding a possibly shortened byte count.
 */
bool
injectedFailure(const Hit &hit, std::size_t n, std::size_t *prefix,
                ssize_t *result)
{
    *prefix = n;
    switch (hit.action) {
    case Action::ReturnError:
        errno = EIO;
        *result = -1;
        return true;
    case Action::Enospc:
        errno = ENOSPC;
        *result = -1;
        return true;
    case Action::Eintr:
        errno = EINTR;
        *result = -1;
        return true;
    case Action::ShortWrite:
        // Really transfer a prefix, then fail: leaves a torn record
        // or frame behind for recovery paths to deal with.
        *prefix = n / 2;
        return false;
    case Action::Off:
    case Action::DelayMs:
    case Action::Abort:
        return false;
    }
    return false;
}

} // namespace

ssize_t
checkedWrite(const char *point, int fd, const void *buf, std::size_t n)
{
    const Hit hit = evaluate(point);
    std::size_t prefix = n;
    ssize_t result = 0;
    if (injectedFailure(hit, n, &prefix, &result))
        return result;
    const ssize_t wrote = ::write(fd, buf, prefix);
    if (hit.action == Action::ShortWrite && wrote >= 0) {
        errno = EIO;
        return -1;
    }
    return wrote;
}

ssize_t
checkedRead(const char *point, int fd, void *buf, std::size_t n)
{
    const Hit hit = evaluate(point);
    std::size_t prefix = n;
    ssize_t result = 0;
    if (injectedFailure(hit, n, &prefix, &result))
        return result;
    const ssize_t got = ::read(fd, buf, prefix);
    if (hit.action == Action::ShortWrite && got >= 0) {
        errno = EIO;
        return -1;
    }
    return got;
}

ssize_t
checkedSend(const char *point, int fd, const void *buf, std::size_t n)
{
    const Hit hit = evaluate(point);
    std::size_t prefix = n;
    ssize_t result = 0;
    if (injectedFailure(hit, n, &prefix, &result))
        return result;
    const ssize_t sent = ::send(fd, buf, prefix, MSG_NOSIGNAL);
    if (hit.action == Action::ShortWrite && sent >= 0) {
        errno = EIO;
        return -1;
    }
    return sent;
}

int
checkedFsync(const char *point, int fd)
{
    const Hit hit = evaluate(point);
    std::size_t prefix = 0;
    ssize_t result = 0;
    if (injectedFailure(hit, 0, &prefix, &result))
        return static_cast<int>(result);
    return ::fsync(fd);
}

} // namespace failpoint
} // namespace paqoc
