#ifndef PAQOC_COMMON_FAILPOINT_H_
#define PAQOC_COMMON_FAILPOINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include <sys/types.h>

namespace paqoc {

/**
 * Deterministic fault injection (DESIGN.md §9). A *failpoint* is a
 * named site on an I/O or convergence boundary that normally does
 * nothing and costs one atomic load. When armed -- programmatically
 * (tests) or through the environment (chaos runs) -- it injects a
 * failure the site's caller must survive:
 *
 *   PAQOC_FAILPOINTS=journal.append=enospc:1,protocol.write=eintr
 *
 * Each entry is `name=action[(arg)][:count]`; `count` bounds how many
 * times the point fires (unlimited when omitted). Actions:
 *
 *   return-error   the wrapped call fails with EIO
 *   enospc         the wrapped call fails with ENOSPC
 *   eintr          the wrapped call fails with EINTR (retry loops!)
 *   short-write    a *prefix* of the buffer is really written, then
 *                  the call fails with EIO -- tears records/frames
 *   delay-ms(N)    sleep N ms, then proceed normally
 *   abort          std::abort() -- crash-recovery e2e tests
 *
 * Armed points fire in call order with counted budgets, so a chaos
 * run is reproducible from its PAQOC_FAILPOINTS string alone. The
 * catalog of point names lives in DESIGN.md §9.
 */
namespace failpoint {

enum class Action
{
    Off,         ///< not armed (or budget exhausted)
    ReturnError, ///< fail with EIO
    Enospc,      ///< fail with ENOSPC
    Eintr,       ///< fail with EINTR
    ShortWrite,  ///< write/read a prefix, then fail with EIO
    DelayMs,     ///< sleep `arg` ms, then proceed
    Abort,       ///< std::abort()
};

/** What one evaluation of a failpoint decided. */
struct Hit
{
    Action action = Action::Off;
    long arg = 0;
};

/**
 * Consume one firing of `name`. Returns {Off} when the point is not
 * armed or its count is exhausted. DelayMs sleeps before returning
 * (callers treat it as "proceed"); Abort never returns. The first
 * call anywhere in the process also loads PAQOC_FAILPOINTS.
 */
Hit evaluate(const char *name);

/** Arm `name` with a spec like "enospc", "delay-ms(5)", "eintr:2". */
void arm(const std::string &name, const std::string &spec);

/** Arm a comma-separated `name=spec` list (the env-var grammar). */
void armFromSpec(const std::string &list);

void disarm(const std::string &name);
void disarmAll();

/** Sorted "name=action[(arg)][:remaining]" strings of live points. */
std::vector<std::string> armed();

/** How many times `name` has fired since it was (last) armed. */
std::size_t fired(const std::string &name);

/**
 * Failpoint-aware syscall wrappers. All raw write()/send() calls in
 * the I/O layers (src/store, src/service) go through these -- the
 * `raw-io` lint rule enforces it -- so every byte the system persists
 * or transmits can be failed on demand. checkedSend passes
 * MSG_NOSIGNAL: a peer that died mid-frame yields EPIPE to the
 * caller instead of a process-killing SIGPIPE.
 */
ssize_t checkedWrite(const char *point, int fd, const void *buf,
                     std::size_t n);
ssize_t checkedRead(const char *point, int fd, void *buf,
                    std::size_t n);
ssize_t checkedSend(const char *point, int fd, const void *buf,
                    std::size_t n);
int checkedFsync(const char *point, int fd);

} // namespace failpoint

} // namespace paqoc

#endif // PAQOC_COMMON_FAILPOINT_H_
