#ifndef PAQOC_COMMON_THREAD_POOL_H_
#define PAQOC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace paqoc {

/**
 * Fixed-size worker pool behind all parallelism in the compiler: batch
 * pulse generation, concurrent GRAPE duration probes, and the blocked
 * gemm. Tasks are plain queued closures; parallelFor additionally lets
 * the calling thread execute chunks itself, so a pool of size 1 (or a
 * call made from inside a worker) degrades to an ordinary serial loop
 * instead of deadlocking.
 *
 * Determinism contract: the pool schedules *when* work runs, never
 * *what* work runs. Every parallel site in the compiler derives its
 * task set and its result folding order from program state alone, so
 * compile reports are bit-identical for any pool size, including 1.
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers; 0 means hardware_concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (>= 1). */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Queue a task and get a future for its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        post([task]() { (*task)(); });
        return fut;
    }

    /**
     * Run body(i) for every i in [0, n), `grain` consecutive indices
     * per task. The caller participates (it drains chunks alongside
     * the workers), and a call made from inside a pool worker runs
     * inline serially -- nested parallelism never deadlocks, it just
     * flattens. The first exception thrown by any chunk is rethrown on
     * the caller once all chunks finished.
     */
    template <typename F>
    void
    parallelFor(std::size_t n, F &&body, std::size_t grain = 1)
    {
        if (n == 0)
            return;
        if (grain == 0)
            grain = 1;
        const std::size_t chunks = (n + grain - 1) / grain;
        if (size() <= 1 || chunks <= 1 || onWorkerThread()) {
            for (std::size_t i = 0; i < n; ++i)
                body(i);
            return;
        }

        struct State
        {
            std::atomic<std::size_t> next{0};
            std::size_t n = 0;
            std::size_t grain = 1;
            std::function<void(std::size_t)> body;
            Mutex mutex;
            CondVar cv;
            std::size_t done PAQOC_GUARDED_BY(mutex) = 0;
            std::exception_ptr error PAQOC_GUARDED_BY(mutex);
        };
        auto st = std::make_shared<State>();
        st->n = n;
        st->grain = grain;
        st->body = std::forward<F>(body);

        auto drain = [](const std::shared_ptr<State> &s) {
            for (;;) {
                const std::size_t begin =
                    s->next.fetch_add(s->grain, std::memory_order_relaxed);
                if (begin >= s->n)
                    return;
                const std::size_t end = std::min(begin + s->grain, s->n);
                std::exception_ptr err;
                try {
                    for (std::size_t i = begin; i < end; ++i)
                        s->body(i);
                } catch (...) {
                    err = std::current_exception();
                }
                MutexLock lock(s->mutex);
                if (err && !s->error)
                    s->error = err;
                s->done += end - begin;
                if (s->done == s->n)
                    s->cv.notify_all();
            }
        };

        const std::size_t helpers =
            std::min<std::size_t>(size(), chunks) - 1;
        for (std::size_t h = 0; h < helpers; ++h)
            post([st, drain]() { drain(st); });
        drain(st);

        MutexLock lock(st->mutex);
        while (st->done != st->n)
            st->cv.wait(st->mutex);
        if (st->error)
            std::rethrow_exception(st->error);
    }

    /** True when the current thread is a worker of any ThreadPool. */
    static bool onWorkerThread();

    /**
     * The process-wide pool (default size: hardware_concurrency).
     * Intended to be resized only from single-threaded context (CLI
     * startup, bench setup) via setGlobalThreads.
     */
    static ThreadPool &global();
    static void setGlobalThreads(unsigned threads);

    /** The default worker count a `threads = 0` knob resolves to. */
    static unsigned defaultThreads();

  private:
    void post(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ PAQOC_GUARDED_BY(mutex_);
    bool stop_ PAQOC_GUARDED_BY(mutex_) = false;
};

} // namespace paqoc

#endif // PAQOC_COMMON_THREAD_POOL_H_
