#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdint>

#include "common/error.h"

namespace paqoc {

namespace {

const Json kNullJson;

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    PAQOC_FATAL_IF(!std::isfinite(v),
                   "json: cannot serialize non-finite number");
    // Exact integers print without a fraction so counters look like
    // counters; everything else uses %.17g for lossless round trips.
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

/** Recursive-descent parser over the raw text. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipWhitespace();
        PAQOC_FATAL_IF(pos_ != text_.size(), "json: trailing characters ",
                       where());
        return value;
    }

  private:
    std::string
    where() const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return "at line " + std::to_string(line) + " column "
            + std::to_string(col);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWhitespace();
        PAQOC_FATAL_IF(pos_ >= text_.size(),
                       "json: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        PAQOC_FATAL_IF(peek() != c, "json: expected '", c, "' ",
                       where());
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t len = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    Json
    parseValue()
    {
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return Json(parseString());
        case 't':
            PAQOC_FATAL_IF(!consumeLiteral("true"), "json: bad literal ",
                           where());
            return Json(true);
        case 'f':
            PAQOC_FATAL_IF(!consumeLiteral("false"),
                           "json: bad literal ", where());
            return Json(false);
        case 'n':
            PAQOC_FATAL_IF(!consumeLiteral("null"), "json: bad literal ",
                           where());
            return Json();
        default: return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            PAQOC_FATAL_IF(peek() != '"', "json: expected member name ",
                           where());
            std::string key = parseString();
            expect(':');
            obj.set(key, parseValue());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            PAQOC_FATAL_IF(c != ',', "json: expected ',' or '}' ",
                           where());
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            PAQOC_FATAL_IF(c != ',', "json: expected ',' or ']' ",
                           where());
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            PAQOC_FATAL_IF(pos_ >= text_.size(),
                           "json: unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                PAQOC_FATAL_IF(static_cast<unsigned char>(c) < 0x20,
                               "json: raw control character in string ",
                               where());
                out += c;
                continue;
            }
            PAQOC_FATAL_IF(pos_ >= text_.size(),
                           "json: unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': appendCodepoint(out); break;
            default:
                PAQOC_FATAL_IF(true, "json: bad escape '\\", e, "' ",
                               where());
            }
        }
    }

    void
    appendCodepoint(std::string &out)
    {
        auto hex4 = [&]() -> unsigned {
            PAQOC_FATAL_IF(pos_ + 4 > text_.size(),
                           "json: truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
                const char c = text_[pos_++];
                v <<= 4;
                if (c >= '0' && c <= '9')
                    v |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    v |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    v |= static_cast<unsigned>(c - 'A' + 10);
                else
                    PAQOC_FATAL_IF(true, "json: bad \\u escape ",
                                   where());
            }
            return v;
        };
        std::uint32_t cp = hex4();
        if (cp >= 0xd800 && cp <= 0xdbff) {
            PAQOC_FATAL_IF(pos_ + 2 > text_.size()
                               || text_[pos_] != '\\'
                               || text_[pos_ + 1] != 'u',
                           "json: unpaired surrogate ", where());
            pos_ += 2;
            const std::uint32_t lo = hex4();
            PAQOC_FATAL_IF(lo < 0xdc00 || lo > 0xdfff,
                           "json: bad low surrogate ", where());
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        }
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    Json
    parseNumber()
    {
        skipWhitespace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()
               && ((text_[pos_] >= '0' && text_[pos_] <= '9')
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        PAQOC_FATAL_IF(pos_ == start, "json: unexpected character ",
                       where());
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        PAQOC_FATAL_IF(end == tok.c_str() || *end != '\0'
                           || !std::isfinite(v),
                       "json: bad number '", tok, "' ", where());
        return Json(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    PAQOC_FATAL_IF(type_ != Type::Bool, "json: value is not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    PAQOC_FATAL_IF(type_ != Type::Number, "json: value is not a number");
    return number_;
}

int
Json::asInt() const
{
    const double v = asNumber();
    PAQOC_FATAL_IF(v != std::floor(v) || std::abs(v) > 2147483647.0,
                   "json: number ", v, " is not a 32-bit integer");
    return static_cast<int>(v);
}

const std::string &
Json::asString() const
{
    PAQOC_FATAL_IF(type_ != Type::String, "json: value is not a string");
    return string_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    PAQOC_FATAL_IF(true, "json: value has no size");
    return 0;
}

const Json &
Json::at(std::size_t index) const
{
    PAQOC_FATAL_IF(type_ != Type::Array, "json: value is not an array");
    PAQOC_FATAL_IF(index >= array_.size(), "json: index ", index,
                   " out of range (size ", array_.size(), ")");
    return array_[index];
}

Json &
Json::push(Json value)
{
    PAQOC_FATAL_IF(type_ != Type::Array, "json: value is not an array");
    array_.push_back(std::move(value));
    return *this;
}

bool
Json::contains(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : object_)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    PAQOC_FATAL_IF(type_ != Type::Object, "json: value is not an object");
    for (const auto &[k, v] : object_)
        if (k == key)
            return v;
    PAQOC_FATAL_IF(true, "json: missing member '", key, "'");
    return kNullJson;
}

const Json &
Json::get(const std::string &key, const Json &fallback) const
{
    if (type_ != Type::Object)
        return fallback;
    for (const auto &[k, v] : object_)
        if (k == key)
            return v;
    return fallback;
}

Json &
Json::set(const std::string &key, Json value)
{
    PAQOC_FATAL_IF(type_ != Type::Object, "json: value is not an object");
    for (auto &[k, v] : object_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

const std::vector<Json> &
Json::items() const
{
    PAQOC_FATAL_IF(type_ != Type::Array, "json: value is not an array");
    return array_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    PAQOC_FATAL_IF(type_ != Type::Object, "json: value is not an object");
    return object_;
}

std::string
Json::dump() const
{
    std::string out;
    switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: appendNumber(out, number_); break;
    case Type::String: appendEscaped(out, string_); break;
    case Type::Array: {
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out += ',';
            out += array_[i].dump();
        }
        out += ']';
        break;
    }
    case Type::Object: {
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0)
                out += ',';
            appendEscaped(out, object_[i].first);
            out += ':';
            out += object_[i].second.dump();
        }
        out += '}';
        break;
    }
    }
    return out;
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace paqoc
