#ifndef PAQOC_COMMON_BENCH_SNAPSHOT_H_
#define PAQOC_COMMON_BENCH_SNAPSHOT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace paqoc {

/**
 * Benchmark snapshot model (DESIGN.md §11): a named set of metrics
 * with an explicit better-direction each, plus free-form context
 * (host ISA, kernel backend, build type) that explains -- but never
 * participates in -- a comparison. The bench binaries emit canonical
 * BENCH_*.json snapshots at the repo root; CI re-measures and
 * compares against the committed file, failing loudly on regression.
 *
 * Metrics and context preserve insertion order, so a snapshot
 * serialized twice from the same run is byte-identical (the Json
 * layer guarantees order-preserving deterministic dumps, with doubles
 * surviving the round trip exactly).
 */
struct BenchMetric
{
    double value = 0.0;
    /** True for throughput/speedup, false for latency/cost. */
    bool higherIsBetter = true;
};

struct BenchSnapshot
{
    /** Snapshot name, e.g. "micro_kernels"; recorded in the file. */
    std::string name;
    std::vector<std::pair<std::string, BenchMetric>> metrics;
    std::vector<std::pair<std::string, std::string>> context;

    /** Insert or overwrite a metric, keeping first-insert order. */
    void setMetric(const std::string &metric_name, double value,
                   bool higher_is_better);

    /** Insert or overwrite a context string. */
    void setContext(const std::string &key, const std::string &value);

    /** Look up a metric; nullptr when absent. */
    const BenchMetric *findMetric(const std::string &metric_name) const;

    Json toJson() const;

    /** Inverse of toJson; raises FatalError on schema mismatch. */
    static BenchSnapshot fromJson(const Json &doc);

    /** Write toJson().dump() + newline to `path` (FatalError on I/O). */
    void save(const std::string &path) const;

    /** Parse the snapshot file at `path` (FatalError on any failure). */
    static BenchSnapshot load(const std::string &path);
};

/** Comparison verdict for one metric of the committed snapshot. */
struct MetricDelta
{
    std::string name;
    double committed = 0.0;
    double fresh = 0.0;
    bool higherIsBetter = true;
    /** fresh / committed (0 when committed == 0). */
    double ratio = 0.0;
    /** Metric absent from the fresh snapshot (counts as regressed). */
    bool missing = false;
    /** Fresh value is outside the tolerance band in the bad direction. */
    bool regressed = false;
};

struct SnapshotComparison
{
    std::vector<MetricDelta> deltas;
    /** True when no committed metric regressed or went missing. */
    bool ok = true;

    /** Human-readable one-line-per-metric report. */
    std::string describe() const;
};

/**
 * Compare a fresh measurement against the committed snapshot. Every
 * committed metric is checked; metrics only present in `fresh` are
 * ignored (adding metrics is never a regression). `tolerance` is the
 * allowed fractional slack: a higher-is-better metric regresses when
 * fresh < committed * (1 - tolerance); a lower-is-better metric when
 * fresh > committed * (1 + tolerance).
 */
SnapshotComparison compareSnapshots(const BenchSnapshot &committed,
                                    const BenchSnapshot &fresh,
                                    double tolerance);

} // namespace paqoc

#endif // PAQOC_COMMON_BENCH_SNAPSHOT_H_
