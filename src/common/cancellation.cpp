#include "common/cancellation.h"

#include "common/failpoint.h"

namespace paqoc {

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
    case CancelReason::None:
        return "none";
    case CancelReason::DeadlineExceeded:
        return "deadline_exceeded";
    case CancelReason::ClientDisconnected:
        return "client_disconnected";
    case CancelReason::ExplicitCancel:
        return "explicit_cancel";
    case CancelReason::OverloadShed:
        return "overload_shed";
    case CancelReason::Shutdown:
        return "shutdown";
    }
    return "none";
}

namespace detail {

void
CancelState::trip(CancelReason why) const
{
    // First reason wins (QuotaToken's CAS discipline): concurrent
    // cancels race, but the recorded reason is whichever landed, not
    // a torn mix, and counters key off exactly one reason.
    int expected = static_cast<int>(CancelReason::None);
    reason.compare_exchange_strong(expected, static_cast<int>(why),
                                   std::memory_order_acq_rel);
}

CancelState::Clock::time_point
CancelState::effectiveDeadline() const
{
    Clock::time_point tightest(Clock::duration(
        deadline.load(std::memory_order_acquire)));
    for (const CancelState *up = parent.get(); up != nullptr;
         up = up->parent.get()) {
        const Clock::time_point theirs(Clock::duration(
            up->deadline.load(std::memory_order_acquire)));
        if (theirs < tightest)
            tightest = theirs;
    }
    return tightest;
}

bool
CancelState::poll() const
{
    // Fast path: already tripped (or not) -- one relaxed load.
    if (reason.load(std::memory_order_relaxed)
        != static_cast<int>(CancelReason::None))
        return true;

    // `cancel.poll` failpoint: lets tests force a cancellation at a
    // precise poll site (the GRAPE loop, a batch item, ...) without
    // any wire traffic. Any injected failure action cancels;
    // delay-ms just stretches the poll (evaluate sleeps internally).
    const failpoint::Hit hit = failpoint::evaluate("cancel.poll");
    if (hit.action != failpoint::Action::Off
        && hit.action != failpoint::Action::DelayMs) {
        trip(CancelReason::ExplicitCancel);
        return true;
    }

    const Clock::time_point armed(Clock::duration(
        deadline.load(std::memory_order_acquire)));
    if (armed != Clock::time_point::max() && Clock::now() >= armed) {
        trip(CancelReason::DeadlineExceeded);
        return true;
    }

    if (parent != nullptr && parent->poll()) {
        trip(static_cast<CancelReason>(
            parent->reason.load(std::memory_order_acquire)));
        return true;
    }
    return false;
}

} // namespace detail

void
CancelToken::throwCancelled(long iters_charged) const
{
    const CancelReason why = reason();
    throw CancelledError(why == CancelReason::None
                             ? CancelReason::ExplicitCancel
                             : why,
                         "", iters_charged);
}

} // namespace paqoc
