#include "common/thread_pool.h"

#include <algorithm>

namespace paqoc {

namespace {

thread_local bool tls_on_worker = false;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    threads = std::max(1u, threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    tls_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stop_ && queue_.empty())
                cv_.wait(mutex_);
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

bool
ThreadPool::onWorkerThread()
{
    return tls_on_worker;
}

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace {

std::unique_ptr<ThreadPool> &
globalSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

Mutex &
globalMutex()
{
    static Mutex m;
    return m;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    MutexLock lock(globalMutex());
    std::unique_ptr<ThreadPool> &slot = globalSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(defaultThreads());
    return *slot;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    MutexLock lock(globalMutex());
    std::unique_ptr<ThreadPool> &slot = globalSlot();
    if (slot && slot->size() == threads)
        return;
    slot = std::make_unique<ThreadPool>(threads);
}

} // namespace paqoc
