#include "common/bench_snapshot.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace paqoc {

namespace {

constexpr const char *kSchema = "paqoc-bench-snapshot-v1";

} // namespace

void
BenchSnapshot::setMetric(const std::string &metric_name, double value,
                         bool higher_is_better)
{
    for (auto &[n, m] : metrics) {
        if (n == metric_name) {
            m = BenchMetric{value, higher_is_better};
            return;
        }
    }
    metrics.emplace_back(metric_name,
                         BenchMetric{value, higher_is_better});
}

void
BenchSnapshot::setContext(const std::string &key,
                          const std::string &value)
{
    for (auto &[k, v] : context) {
        if (k == key) {
            v = value;
            return;
        }
    }
    context.emplace_back(key, value);
}

const BenchMetric *
BenchSnapshot::findMetric(const std::string &metric_name) const
{
    for (const auto &[n, m] : metrics)
        if (n == metric_name)
            return &m;
    return nullptr;
}

Json
BenchSnapshot::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", Json(kSchema));
    doc.set("name", Json(name));
    Json ctx = Json::object();
    for (const auto &[k, v] : context)
        ctx.set(k, Json(v));
    doc.set("context", std::move(ctx));
    Json ms = Json::object();
    for (const auto &[n, m] : metrics) {
        Json one = Json::object();
        one.set("value", Json(m.value));
        one.set("higher_is_better", Json(m.higherIsBetter));
        ms.set(n, std::move(one));
    }
    doc.set("metrics", std::move(ms));
    return doc;
}

BenchSnapshot
BenchSnapshot::fromJson(const Json &doc)
{
    PAQOC_FATAL_IF(!doc.isObject() || !doc.contains("schema")
                       || doc.at("schema").asString() != kSchema,
                   "not a ", kSchema, " document");
    BenchSnapshot snap;
    snap.name = doc.get("name", Json("")).asString();
    if (doc.contains("context")) {
        for (const auto &[k, v] : doc.at("context").members())
            snap.context.emplace_back(k, v.asString());
    }
    for (const auto &[n, m] : doc.at("metrics").members()) {
        snap.metrics.emplace_back(
            n, BenchMetric{m.at("value").asNumber(),
                           m.at("higher_is_better").asBool()});
    }
    return snap;
}

void
BenchSnapshot::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    PAQOC_FATAL_IF(!out, "cannot open snapshot file '", path,
                   "' for writing");
    out << toJson().dump() << "\n";
    out.flush();
    PAQOC_FATAL_IF(!out, "failed writing snapshot file '", path, "'");
}

BenchSnapshot
BenchSnapshot::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    PAQOC_FATAL_IF(!in, "cannot read snapshot file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return fromJson(Json::parse(ss.str()));
}

std::string
SnapshotComparison::describe() const
{
    std::ostringstream out;
    for (const MetricDelta &d : deltas) {
        out << (d.regressed ? "REGRESSED " : "ok        ") << d.name
            << ": committed=" << d.committed;
        if (d.missing)
            out << " fresh=<missing>";
        else
            out << " fresh=" << d.fresh << " ratio=" << d.ratio;
        out << (d.higherIsBetter ? " (higher is better)"
                                 : " (lower is better)")
            << "\n";
    }
    return out.str();
}

SnapshotComparison
compareSnapshots(const BenchSnapshot &committed,
                 const BenchSnapshot &fresh, double tolerance)
{
    SnapshotComparison cmp;
    for (const auto &[n, m] : committed.metrics) {
        MetricDelta d;
        d.name = n;
        d.committed = m.value;
        d.higherIsBetter = m.higherIsBetter;
        const BenchMetric *f = fresh.findMetric(n);
        if (f == nullptr) {
            d.missing = true;
            d.regressed = true;
        } else {
            d.fresh = f->value;
            d.ratio = m.value == 0.0 ? 0.0 : f->value / m.value;
            if (m.higherIsBetter)
                d.regressed = f->value < m.value * (1.0 - tolerance);
            else
                d.regressed = f->value > m.value * (1.0 + tolerance);
        }
        cmp.ok = cmp.ok && !d.regressed;
        cmp.deltas.push_back(std::move(d));
    }
    return cmp;
}

} // namespace paqoc
