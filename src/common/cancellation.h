#ifndef PAQOC_COMMON_CANCELLATION_H_
#define PAQOC_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>

#include "common/error.h"

namespace paqoc {

/**
 * Cooperative cancellation (DESIGN.md §15). A CancelSource owns the
 * cancelled bit of one unit of work; CancelTokens are cheap handles
 * the expensive loops poll. The uncancelled fast path is one relaxed
 * atomic load (the failpoint.h discipline), so polling once per GRAPE
 * iteration is free.
 *
 * Why the work stops is part of the contract -- the server turns the
 * reason into a typed wire response and distinct counters, so the
 * taxonomy below is stable API, not decoration.
 */
enum class CancelReason : int
{
    None = 0,
    DeadlineExceeded,   ///< the request's deadline passed mid-run
    ClientDisconnected, ///< the requesting connection went away
    ExplicitCancel,     ///< a `cancel` op named this request
    OverloadShed,       ///< shed by the overload controller
    Shutdown,           ///< the daemon is draining for exit
};

/** Stable wire name of a reason ("deadline_exceeded", ...). */
const char *cancelReasonName(CancelReason reason);

/**
 * Raised when cancelled work unwinds (the QuotaExceededError shape:
 * the service catches it and answers with a structured `cancelled`
 * response). `iters_charged` preserves the work already spent so
 * tenant budgets still bill a cancelled derivation's real compute.
 */
class CancelledError : public FatalError
{
  public:
    explicit CancelledError(CancelReason reason,
                            const std::string &detail = "",
                            long iters_charged = 0)
        : FatalError("cancelled: "
                     + std::string(cancelReasonName(reason))
                     + (detail.empty() ? "" : " (" + detail + ")")),
          reason_(reason), iters_charged_(iters_charged)
    {}

    CancelReason reason() const { return reason_; }
    const char *reasonName() const { return cancelReasonName(reason_); }
    long itersCharged() const { return iters_charged_; }

  private:
    CancelReason reason_;
    long iters_charged_;
};

namespace detail {

/**
 * Shared cancellation state. Tokens may outlive their source (a
 * detached worker can poll after the connection that spawned the
 * request died), so the state is reference-counted, immutable except
 * for the atomics, and safe to poll from any thread.
 */
struct CancelState
{
    using Clock = std::chrono::steady_clock;

    /** CancelReason, or None. Relaxed loads on the poll fast path;
     *  the trip CAS publishes with acq_rel like QuotaToken. */
    mutable std::atomic<int> reason{0};
    /** Absolute deadline; max() means "not deadline-armed". Written
     *  once (armDeadline) before the token is shared. */
    std::atomic<Clock::time_point::rep> deadline{
        Clock::time_point::max().time_since_epoch().count()};
    /** Parent link: a child is cancelled whenever its parent is. */
    std::shared_ptr<const CancelState> parent;

    bool poll() const;
    void trip(CancelReason why) const;
    Clock::time_point effectiveDeadline() const;
};

} // namespace detail

/**
 * Read-only handle polled by the work. Default-constructed tokens are
 * null: never cancelled, no deadline -- so call sites can thread a
 * token unconditionally and pay nothing when cancellation is not
 * wired up.
 */
class CancelToken
{
  public:
    using Clock = detail::CancelState::Clock;

    CancelToken() = default;

    /** True once the source (or any ancestor) cancelled, the armed
     *  deadline passed, or the `cancel.poll` failpoint fired. */
    bool
    cancelled() const
    {
        return state_ != nullptr && state_->poll();
    }

    /** Why (None while cancelled() is false). */
    CancelReason
    reason() const
    {
        if (state_ == nullptr)
            return CancelReason::None;
        return static_cast<CancelReason>(
            state_->reason.load(std::memory_order_acquire));
    }

    /** Tightest armed deadline along the parent chain (max() = none). */
    Clock::time_point
    deadline() const
    {
        return state_ != nullptr ? state_->effectiveDeadline()
                                 : Clock::time_point::max();
    }

    /** Milliseconds until the deadline (infinity when none armed,
     *  clamped at zero once it passed). Tier fetches cap their op
     *  budget with this. */
    double
    remainingMs() const
    {
        const Clock::time_point d = deadline();
        if (d == Clock::time_point::max())
            return std::numeric_limits<double>::infinity();
        const double ms =
            std::chrono::duration<double, std::milli>(d - Clock::now())
                .count();
        return ms > 0.0 ? ms : 0.0;
    }

    /** Raise CancelledError if cancelled; otherwise no-op. */
    void
    throwIfCancelled(long iters_charged = 0) const
    {
        if (cancelled())
            throwCancelled(iters_charged);
    }

    /** Raise the structured error for the recorded reason. */
    [[noreturn]] void throwCancelled(long iters_charged = 0) const;

    bool valid() const { return state_ != nullptr; }

  private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<const detail::CancelState> s)
        : state_(std::move(s))
    {}

    std::shared_ptr<const detail::CancelState> state_;
};

/**
 * Owning side. The server holds one source per in-flight request;
 * cancel() is idempotent and the first reason wins (a request both
 * shed and disconnected reports whichever tripped first, which keeps
 * counters additive).
 */
class CancelSource
{
  public:
    using Clock = detail::CancelState::Clock;

    CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

    /** A child source: cancelled on its own OR when `parent` is.
     *  Children let a batch hand each item a narrower lifetime while
     *  one request-level cancel still stops everything. */
    explicit CancelSource(const CancelToken &parent)
        : CancelSource()
    {
        state_->parent = parent.state_;
    }

    /** Arm the deadline: polls trip with DeadlineExceeded once `when`
     *  passes. Call before sharing the token (submission time). */
    void
    armDeadline(Clock::time_point when)
    {
        state_->deadline.store(when.time_since_epoch().count(),
                               std::memory_order_release);
    }

    /** Trip the state; the first call's reason sticks. */
    void cancel(CancelReason why) const { state_->trip(why); }

    bool
    cancelled() const
    {
        return state_->poll();
    }

    CancelReason
    reason() const
    {
        return static_cast<CancelReason>(
            state_->reason.load(std::memory_order_acquire));
    }

    CancelToken token() const { return CancelToken(state_); }

  private:
    std::shared_ptr<detail::CancelState> state_;
};

} // namespace paqoc

#endif // PAQOC_COMMON_CANCELLATION_H_
