#ifndef PAQOC_COMMON_THREAD_ANNOTATIONS_H_
#define PAQOC_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/**
 * Clang thread-safety annotations (DESIGN.md §8). Under clang with
 * -Wthread-safety the compiler proves, at build time, that every
 * access to a PAQOC_GUARDED_BY member happens with its mutex held and
 * that every PAQOC_REQUIRES function is only called under the right
 * lock. Under gcc (or any compiler without the attribute) the macros
 * expand to nothing, so they cost nothing and gate nothing.
 *
 * Project rule (enforced by tools/paqoc_lint, rule `naked-mutex`):
 * concurrent code uses the annotated `Mutex` / `MutexLock` / `CondVar`
 * wrappers below, never raw std::mutex / std::lock_guard /
 * std::condition_variable, so the analysis covers every lock in the
 * tree. Condition waits are written as explicit
 *
 *     MutexLock lock(mutex_);
 *     while (!predicate)
 *         cv_.wait(mutex_);
 *
 * loops rather than predicate-lambda waits: the loop body is analyzed
 * in the scope that visibly holds the capability, whereas a lambda
 * would be analyzed as an unannotated function and either warn
 * spuriously or need a blanket opt-out.
 */

#if defined(__clang__) && (!defined(SWIG))
#define PAQOC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PAQOC_THREAD_ANNOTATION_(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PAQOC_CAPABILITY(x) PAQOC_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define PAQOC_SCOPED_CAPABILITY PAQOC_THREAD_ANNOTATION_(scoped_lockable)

/** Member data that may only be read or written with `x` held. */
#define PAQOC_GUARDED_BY(x) PAQOC_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is protected by `x`. */
#define PAQOC_PT_GUARDED_BY(x) PAQOC_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define PAQOC_REQUIRES(...) \
    PAQOC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function that must be called with the capabilities NOT held. */
#define PAQOC_EXCLUDES(...) \
    PAQOC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability (and returns holding it). */
#define PAQOC_ACQUIRE(...) \
    PAQOC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define PAQOC_RELEASE(...) \
    PAQOC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function that acquires the capability when it returns `ret`. */
#define PAQOC_TRY_ACQUIRE(ret, ...) \
    PAQOC_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/** Returns a reference to the capability guarding the class. */
#define PAQOC_RETURN_CAPABILITY(x) \
    PAQOC_THREAD_ANNOTATION_(lock_returned(x))

/** Escape hatch: function body is exempt from the analysis. */
#define PAQOC_NO_THREAD_SAFETY_ANALYSIS \
    PAQOC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace paqoc {

/**
 * std::mutex wearing the capability attribute, so clang can track who
 * holds it. BasicLockable (lock/unlock/try_lock), which is exactly
 * what CondVar::wait needs to release and reacquire around a sleep.
 */
class PAQOC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PAQOC_ACQUIRE() { mutex_.lock(); }
    void unlock() PAQOC_RELEASE() { mutex_.unlock(); }
    bool try_lock() PAQOC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  private:
    std::mutex mutex_;
};

/**
 * Scoped lock over Mutex (the project's std::lock_guard). The
 * SCOPED_CAPABILITY attribute tells the analysis the capability is
 * held from construction to destruction.
 */
class PAQOC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) PAQOC_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() PAQOC_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable paired with Mutex. wait() REQUIRES the mutex:
 * the caller visibly holds it (normally via MutexLock), wait releases
 * it for the sleep and reacquires before returning, so from the
 * analysis' point of view the capability is held across the call --
 * which is exactly the guarantee the caller's critical section needs.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Sleep until notified; `mutex` must be held (and stays held). */
    void
    wait(Mutex &mutex) PAQOC_REQUIRES(mutex)
    {
        cv_.wait(mutex);
    }

    /**
     * Sleep until notified or `timeout` elapsed; `mutex` must be held
     * (and stays held). Callers re-check their predicate in the usual
     * while loop -- the return value is deliberately dropped so timed
     * waits read exactly like untimed ones.
     */
    template <typename Rep, typename Period>
    void
    wait_for(Mutex &mutex,
             const std::chrono::duration<Rep, Period> &timeout)
        PAQOC_REQUIRES(mutex)
    {
        (void)cv_.wait_for(mutex, timeout);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace paqoc

#endif // PAQOC_COMMON_THREAD_ANNOTATIONS_H_
