#ifndef PAQOC_COMMON_CIRCUIT_BREAKER_H_
#define PAQOC_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_annotations.h"

namespace paqoc {

/** Tuning of a CircuitBreaker (DESIGN.md §14). */
struct CircuitBreakerOptions
{
    /** Sliding window: how many recent outcomes the rate is over. */
    int windowSize = 16;
    /**
     * Minimum outcomes in the window before the breaker may trip; a
     * single failed first call must not open a cold breaker.
     */
    int minSamples = 4;
    /** Failure rate in [0, 1] at or above which Closed trips Open. */
    double failureRateToOpen = 0.5;
    /** How long an Open breaker rejects before probing (half-open). */
    double cooldownMs = 1000.0;
    /** Probe calls admitted concurrently while HalfOpen. */
    int halfOpenProbes = 1;
};

/**
 * Per-endpoint circuit breaker: the fault-isolation valve between the
 * daemon and any remote dependency (today: the shared pulse tier).
 *
 * States and transitions (DESIGN.md §14):
 *
 *   Closed    all calls admitted; outcomes recorded in a sliding
 *             window of the last `windowSize` calls. When the window
 *             holds >= minSamples outcomes and the failure rate
 *             reaches failureRateToOpen, the breaker trips Open.
 *   Open      all calls rejected without touching the network. After
 *             cooldownMs the next allow() moves to HalfOpen.
 *   HalfOpen  up to halfOpenProbes probe calls admitted; the first
 *             reported success closes the breaker (window reset), the
 *             first failure re-opens it for another cooldown.
 *
 * Callers bracket every guarded operation as
 *
 *     if (!breaker.allow()) { ...skip the dependency... }
 *     else { ...do the op...; ok ? breaker.onSuccess()
 *                                : breaker.onFailure(); }
 *
 * Thread-safe; all methods may race freely. Time is read through the
 * injected monotonic-milliseconds clock so tests drive transitions
 * deterministically without sleeping.
 */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    /** Monotonic milliseconds; injectable for deterministic tests. */
    using Clock = std::function<double()>;

    /** Cumulative transition/admission counters (tier_* stats). */
    struct Counters
    {
        std::uint64_t opened = 0;
        std::uint64_t halfOpened = 0;
        std::uint64_t closed = 0;
        std::uint64_t allowed = 0;
        std::uint64_t rejected = 0;
    };

    explicit CircuitBreaker(CircuitBreakerOptions options = {},
                            Clock clock = {});

    /**
     * Gate one call: true admits it (and, while HalfOpen, consumes a
     * probe slot), false means skip the dependency entirely. An Open
     * breaker whose cooldown has expired flips to HalfOpen here.
     */
    bool allow();

    /** Report the outcome of an admitted call. */
    void onSuccess();
    void onFailure();

    /** Current state (cooldown expiry applied first). */
    State state();
    Counters counters() const;

    /** "closed" / "open" / "half-open" (stats + shutdown table). */
    static const char *stateName(State state);

  private:
    void recordLocked(bool failure) PAQOC_REQUIRES(mutex_);
    void openLocked() PAQOC_REQUIRES(mutex_);
    /** Open -> HalfOpen when the cooldown has elapsed. */
    void maybeProbeLocked() PAQOC_REQUIRES(mutex_);

    const CircuitBreakerOptions options_;
    const Clock clock_;

    mutable Mutex mutex_;
    State state_ PAQOC_GUARDED_BY(mutex_) = State::Closed;
    /** Ring of recent outcomes (true = failure), window_ deep. */
    std::vector<bool> window_ PAQOC_GUARDED_BY(mutex_);
    int windowNext_ PAQOC_GUARDED_BY(mutex_) = 0;
    int windowCount_ PAQOC_GUARDED_BY(mutex_) = 0;
    int windowFailures_ PAQOC_GUARDED_BY(mutex_) = 0;
    double openedAtMs_ PAQOC_GUARDED_BY(mutex_) = 0.0;
    int probesInFlight_ PAQOC_GUARDED_BY(mutex_) = 0;
    Counters counters_ PAQOC_GUARDED_BY(mutex_);
};

} // namespace paqoc

#endif // PAQOC_COMMON_CIRCUIT_BREAKER_H_
