#ifndef PAQOC_COMMON_STOPWATCH_H_
#define PAQOC_COMMON_STOPWATCH_H_

#include <chrono>

namespace paqoc {

/** Wall-clock stopwatch used to report compilation-time figures. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds since construction or last reset(). */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace paqoc

#endif // PAQOC_COMMON_STOPWATCH_H_
