#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace paqoc {

Statevector::Statevector(int num_qubits, std::size_t basis_state)
    : num_qubits_(num_qubits)
{
    PAQOC_FATAL_IF(num_qubits < 1 || num_qubits > 28,
                   "statevector supports 1..28 qubits");
    amplitudes_.assign(std::size_t{1} << num_qubits,
                       Complex(0.0, 0.0));
    PAQOC_FATAL_IF(basis_state >= amplitudes_.size(),
                   "basis state out of range");
    amplitudes_[basis_state] = Complex(1.0, 0.0);
}

void
Statevector::apply(const Gate &gate)
{
    const int k = gate.arity();
    for (int q : gate.qubits())
        PAQOC_FATAL_IF(q >= num_qubits_, "gate qubit ", q,
                       " outside register");
    const Matrix u = gate.unitary();
    const std::size_t sub = std::size_t{1} << k;

    // bitpos[i] = global bit of local bit i (qubits[0] is the most
    // significant local bit, matching embedUnitary()).
    std::vector<int> bitpos(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        bitpos[static_cast<std::size_t>(i)] =
            gate.qubits()[static_cast<std::size_t>(k - 1 - i)];

    // Enumerate all base indices whose gate bits are zero.
    std::size_t gate_mask = 0;
    for (int b : bitpos)
        gate_mask |= std::size_t{1} << b;

    std::vector<Complex> in(sub), out(sub);
    const std::size_t dim = amplitudes_.size();
    for (std::size_t base = 0; base < dim; ++base) {
        if ((base & gate_mask) != 0)
            continue;
        for (std::size_t l = 0; l < sub; ++l) {
            std::size_t idx = base;
            for (int i = 0; i < k; ++i)
                idx |= ((l >> i) & 1u)
                    << bitpos[static_cast<std::size_t>(i)];
            in[l] = amplitudes_[idx];
        }
        for (std::size_t r = 0; r < sub; ++r) {
            Complex acc(0.0, 0.0);
            for (std::size_t c = 0; c < sub; ++c)
                acc += u(r, c) * in[c];
            out[r] = acc;
        }
        for (std::size_t l = 0; l < sub; ++l) {
            std::size_t idx = base;
            for (int i = 0; i < k; ++i)
                idx |= ((l >> i) & 1u)
                    << bitpos[static_cast<std::size_t>(i)];
            amplitudes_[idx] = out[l];
        }
    }
}

void
Statevector::apply(const Circuit &circuit)
{
    PAQOC_FATAL_IF(circuit.numQubits() > num_qubits_,
                   "circuit wider than statevector");
    for (const Gate &g : circuit.gates())
        apply(g);
}

double
Statevector::fidelityWith(const Statevector &other) const
{
    PAQOC_FATAL_IF(dim() != other.dim(), "dimension mismatch");
    Complex inner(0.0, 0.0);
    for (std::size_t i = 0; i < dim(); ++i)
        inner += std::conj(amplitudes_[i]) * other.amplitudes_[i];
    return std::norm(inner);
}

double
Statevector::probabilityOfOne(int qubit) const
{
    PAQOC_FATAL_IF(qubit < 0 || qubit >= num_qubits_, "bad qubit");
    const std::size_t mask = std::size_t{1} << qubit;
    double p = 0.0;
    for (std::size_t i = 0; i < dim(); ++i)
        if (i & mask)
            p += std::norm(amplitudes_[i]);
    return p;
}

double
Statevector::norm() const
{
    double s = 0.0;
    for (const Complex &a : amplitudes_)
        s += std::norm(a);
    return s;
}

std::size_t
Statevector::mostLikelyBasisState() const
{
    std::size_t best = 0;
    double best_p = -1.0;
    for (std::size_t i = 0; i < dim(); ++i) {
        const double p = std::norm(amplitudes_[i]);
        if (p > best_p + 1e-15) {
            best_p = p;
            best = i;
        }
    }
    return best;
}

double
routedFidelity(const Circuit &logical, const Circuit &physical,
               const std::vector<int> &initial_layout,
               const std::vector<int> &final_layout,
               const std::vector<std::size_t> &probe_states)
{
    PAQOC_FATAL_IF(initial_layout.size()
                       != static_cast<std::size_t>(logical.numQubits())
                   || final_layout.size() != initial_layout.size(),
                   "layout size mismatch");
    const int nl = logical.numQubits();
    double worst = 1.0;
    for (std::size_t probe : probe_states) {
        PAQOC_FATAL_IF(probe >= (std::size_t{1} << nl),
                       "probe state out of range");
        Statevector sv_logical(nl, probe);
        sv_logical.apply(logical);

        std::size_t embedded = 0;
        for (int i = 0; i < nl; ++i)
            embedded |= ((probe >> i) & 1u)
                << initial_layout[static_cast<std::size_t>(i)];
        Statevector sv_physical(physical.numQubits(), embedded);
        sv_physical.apply(physical);

        // Overlap of the physical state with the logical state
        // embedded through the final layout.
        Complex inner(0.0, 0.0);
        for (std::size_t z = 0; z < (std::size_t{1} << nl); ++z) {
            std::size_t y = 0;
            for (int i = 0; i < nl; ++i)
                y |= ((z >> i) & 1u)
                    << final_layout[static_cast<std::size_t>(i)];
            inner += std::conj(sv_logical.amplitude(z))
                * sv_physical.amplitude(y);
        }
        worst = std::min(worst, std::norm(inner));
    }
    return worst;
}

} // namespace paqoc
