#include "sim/pulse_simulator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "circuit/schedule.h"
#include "common/error.h"
#include "linalg/expm.h"
#include "linalg/unitary_util.h"
#include "qoc/device.h"

namespace paqoc {

namespace {

/** Propagate a pulse schedule on a local device model. */
Matrix
realizeSchedule(const PulseSchedule &schedule, int num_qubits)
{
    const DeviceModel device(num_qubits);
    Matrix u = Matrix::identity(device.dim());
    Matrix h, prop, tmp;
    ExpmWorkspace ws;
    for (const auto &slice : schedule.amplitudes) {
        device.sliceHamiltonianInto(slice, h);
        expmPropagatorInto(h, 1.0, prop, ws);
        tmp.resize(device.dim(), device.dim());
        matmulInto(prop, u, tmp);
        std::swap(u, tmp);
    }
    return u;
}

} // namespace

SimResult
simulateCircuitPulses(const Circuit &circuit, PulseGenerator &generator,
                      const SimOptions &options)
{
    PAQOC_FATAL_IF(circuit.numQubits() > options.maxQubits,
                   "pulse simulation limited to ", options.maxQubits,
                   " qubits; circuit has ", circuit.numQubits());

    const std::size_t dim = std::size_t{1} << circuit.numQubits();
    Matrix ideal = Matrix::identity(dim);
    Matrix realized = Matrix::identity(dim);
    double model_success = 1.0;
    std::vector<double> latencies;
    latencies.reserve(circuit.size());
    std::set<int> active;

    for (const Gate &g : circuit.gates()) {
        active.insert(g.qubits().begin(), g.qubits().end());
        const Matrix u_ideal = g.unitary();
        ideal = embedUnitary(u_ideal, g.qubits(), circuit.numQubits())
            * ideal;

        const PulseGenResult r = generator.generate(u_ideal, g.arity());
        latencies.push_back(std::min(r.latency, g.latencyCap()));
        if (r.schedule.has_value() && r.schedule->numSlices() > 0) {
            const Matrix u_real =
                realizeSchedule(*r.schedule, g.arity());
            realized = embedUnitary(u_real, g.qubits(),
                                    circuit.numQubits())
                * realized;
        } else {
            // Analytical backend: the realized gate is the ideal one
            // and the modeled pulse error enters multiplicatively.
            realized =
                embedUnitary(u_ideal, g.qubits(), circuit.numQubits())
                * realized;
            model_success *= (1.0 - r.error);
        }
    }

    SimResult result;
    result.processFidelity =
        traceFidelity(ideal, realized) * model_success;

    std::size_t index = 0;
    const Schedule sched = computeSchedule(
        circuit, [&](const Gate &) { return latencies[index++]; });
    result.makespan = sched.makespan;
    result.coherenceFactor =
        std::exp(-result.makespan * static_cast<double>(active.size())
                 / options.coherenceTimeDt);
    result.quality = result.processFidelity * result.coherenceFactor;
    return result;
}

} // namespace paqoc
