#ifndef PAQOC_SIM_STATEVECTOR_H_
#define PAQOC_SIM_STATEVECTOR_H_

#include <vector>

#include "circuit/circuit.h"

namespace paqoc {

/**
 * Dense statevector simulator.
 *
 * Where circuitUnitary() is limited to ~12 qubits (it materializes the
 * full 2^n x 2^n operator), the statevector applies each gate in
 * O(2^n * 2^k), which comfortably reaches the 21-25 qubit benchmarks
 * (bv, supre) for end-to-end semantic verification of the transpiler.
 */
class Statevector
{
  public:
    /** |basis_state> on num_qubits qubits (qubit i is bit i). */
    explicit Statevector(int num_qubits, std::size_t basis_state = 0);

    int numQubits() const { return num_qubits_; }
    std::size_t dim() const { return amplitudes_.size(); }

    const Complex &amplitude(std::size_t basis) const
    { return amplitudes_[basis]; }

    /** Apply one gate (unitary on its own qubits). */
    void apply(const Gate &gate);

    /** Apply every gate of a circuit in order. */
    void apply(const Circuit &circuit);

    /** |<this|other>|^2; states must have equal dimension. */
    double fidelityWith(const Statevector &other) const;

    /** Probability of measuring the given qubit as 1. */
    double probabilityOfOne(int qubit) const;

    /** Squared norm (should stay 1 within rounding). */
    double norm() const;

    /**
     * Index of the largest-probability basis state (ties broken by
     * lowest index) -- handy for algorithms with deterministic
     * outcomes such as Bernstein-Vazirani.
     */
    std::size_t mostLikelyBasisState() const;

  private:
    int num_qubits_;
    std::vector<Complex> amplitudes_;
};

/**
 * Verify that a routed physical circuit implements a logical circuit:
 * for a set of probe basis states, runs the logical circuit, embeds
 * input/output through the routing layouts, and compares with the
 * physical circuit's action. Both circuits may differ in register
 * size; initial_layout/final_layout map logical qubit -> physical
 * qubit. Returns the minimum fidelity over the probes.
 */
double routedFidelity(const Circuit &logical, const Circuit &physical,
                      const std::vector<int> &initial_layout,
                      const std::vector<int> &final_layout,
                      const std::vector<std::size_t> &probe_states);

} // namespace paqoc

#endif // PAQOC_SIM_STATEVECTOR_H_
