#ifndef PAQOC_SIM_PULSE_SIMULATOR_H_
#define PAQOC_SIM_PULSE_SIMULATOR_H_

#include "circuit/circuit.h"
#include "qoc/pulse_generator.h"

namespace paqoc {

/** Knobs of the whole-circuit pulse simulation (QuTiP substitute). */
struct SimOptions
{
    /**
     * Qubit coherence time in dt units. The execution quality decays
     * as exp(-active_qubit_dt / coherenceTimeDt), a first-order
     * T1/T2 model; the value is chosen so the Table II qualities land
     * in the paper's range.
     */
    double coherenceTimeDt = 5.0e4;
    /** Upper bound on register width for full propagation. */
    int maxQubits = 10;
};

/** Outcome of simulating a compiled circuit's pulses. */
struct SimResult
{
    /**
     * Process fidelity of the realized whole-circuit unitary against
     * the ideal one (pulse imperfection only, no decoherence). With a
     * GRAPE backend this propagates the actual pulse schedules; with
     * the analytical backend it folds the modeled per-gate errors.
     */
    double processFidelity = 0.0;
    /** exp(-makespan * active_qubits / T) decoherence factor. */
    double coherenceFactor = 0.0;
    /** Quality of execution = processFidelity * coherenceFactor. */
    double quality = 0.0;
    /** Whole-circuit latency used for the decay, in dt. */
    double makespan = 0.0;
};

/**
 * Simulate the control pulses of a compiled circuit end to end: fetch
 * or generate every gate's pulse, propagate realized gates on the full
 * register (when schedules exist), and fold in coherence decay over
 * the schedule's makespan. This is the Table II metric.
 */
SimResult simulateCircuitPulses(const Circuit &circuit,
                                PulseGenerator &generator,
                                const SimOptions &options = {});

} // namespace paqoc

#endif // PAQOC_SIM_PULSE_SIMULATOR_H_
