#include "circuit/dag.h"

#include <algorithm>

#include "common/error.h"

namespace paqoc {

bool
Dag::hasEdge(int u, int v) const
{
    const auto &s = succs[static_cast<std::size_t>(u)];
    return std::find(s.begin(), s.end(), v) != s.end();
}

bool
Dag::reaches(int u, int v) const
{
    if (u == v)
        return false;
    // Nodes are numbered in topological (program) order, so only nodes
    // in (u, v] can lie on a path.
    if (v < u)
        return false;
    std::vector<char> seen(size(), 0);
    std::vector<int> stack{u};
    while (!stack.empty()) {
        const int n = stack.back();
        stack.pop_back();
        for (int s : succs[static_cast<std::size_t>(n)]) {
            if (s == v)
                return true;
            if (s < v && !seen[static_cast<std::size_t>(s)]) {
                seen[static_cast<std::size_t>(s)] = 1;
                stack.push_back(s);
            }
        }
    }
    return false;
}

Dag
buildDag(const Circuit &circuit)
{
    Dag dag;
    dag.preds.resize(circuit.size());
    dag.succs.resize(circuit.size());

    std::vector<int> last_on_qubit(
        static_cast<std::size_t>(circuit.numQubits()), -1);
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        for (int q : g.qubits()) {
            const int prev = last_on_qubit[static_cast<std::size_t>(q)];
            if (prev >= 0 && !dag.hasEdge(prev, static_cast<int>(i))) {
                dag.succs[static_cast<std::size_t>(prev)]
                    .push_back(static_cast<int>(i));
                dag.preds[i].push_back(prev);
            }
            last_on_qubit[static_cast<std::size_t>(q)] =
                static_cast<int>(i);
        }
    }
    return dag;
}

} // namespace paqoc
