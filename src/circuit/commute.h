#ifndef PAQOC_CIRCUIT_COMMUTE_H_
#define PAQOC_CIRCUIT_COMMUTE_H_

#include "circuit/circuit.h"
#include "circuit/dag.h"

namespace paqoc {

/**
 * Conservative gate commutation test based on per-qubit basis types:
 * two gates commute when, on every shared qubit, both act diagonally
 * in the Z basis (rz/z/s/t/p, cx controls, cz/cp) or both act
 * diagonally in the X basis (x/sx/rx, cx targets). Gates it cannot
 * classify (h, y, swap, ccx, custom) never commute with a sharer.
 */
bool gatesCommute(const Gate &a, const Gate &b);

/**
 * Commutation-relaxed dependence DAG: an edge u -> v exists only when
 * v's backward scan over each shared qubit meets u as the first
 * non-commuting gate. Scheduling and merging against this DAG realizes
 * the commutativity-aware instruction aggregation of Shi et al. [43],
 * which the paper lists as future work for PAQOC.
 */
Dag buildCommutationDag(const Circuit &circuit);

/**
 * Pairs of mutually commuting gates that share a qubit and sit in the
 * same commutation run (so they can be slid adjacent and merged even
 * though no dependence edge connects them) -- e.g., the two CXs of a
 * cx/rz(control)/cx echo. Consecutive-in-run pairs only.
 */
std::vector<std::pair<int, int>> commutingAdjacentPairs(
    const Circuit &circuit);

} // namespace paqoc

#endif // PAQOC_CIRCUIT_COMMUTE_H_
