#include "circuit/gate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace paqoc {

namespace {

constexpr double kPi = 3.14159265358979323846;
const Complex kI(0.0, 1.0);

Matrix
primitiveUnitary(Op op, double angle)
{
    const double c = std::cos(angle / 2.0), s = std::sin(angle / 2.0);
    switch (op) {
      case Op::I:
        return Matrix::identity(2);
      case Op::X:
        return Matrix{{0.0, 1.0}, {1.0, 0.0}};
      case Op::Y:
        return Matrix{{0.0, -kI}, {kI, 0.0}};
      case Op::Z:
        return Matrix{{1.0, 0.0}, {0.0, -1.0}};
      case Op::H: {
        const double r = 1.0 / std::sqrt(2.0);
        return Matrix{{r, r}, {r, -r}};
      }
      case Op::SX: {
        // sqrt(X): ((1+i, 1-i), (1-i, 1+i)) / 2.
        const Complex p(0.5, 0.5), m(0.5, -0.5);
        return Matrix{{p, m}, {m, p}};
      }
      case Op::S:
        return Matrix{{1.0, 0.0}, {0.0, kI}};
      case Op::Sdg:
        return Matrix{{1.0, 0.0}, {0.0, -kI}};
      case Op::T:
        return Matrix{{1.0, 0.0}, {0.0, std::exp(kI * (kPi / 4.0))}};
      case Op::Tdg:
        return Matrix{{1.0, 0.0}, {0.0, std::exp(-kI * (kPi / 4.0))}};
      case Op::RX:
        return Matrix{{c, -kI * s}, {-kI * s, c}};
      case Op::RY:
        return Matrix{{c, -s}, {s, c}};
      case Op::RZ:
        return Matrix{{std::exp(-kI * (angle / 2.0)), 0.0},
                      {0.0, std::exp(kI * (angle / 2.0))}};
      case Op::P:
        return Matrix{{1.0, 0.0}, {0.0, std::exp(kI * angle)}};
      case Op::CX:
        return Matrix{{1, 0, 0, 0},
                      {0, 1, 0, 0},
                      {0, 0, 0, 1},
                      {0, 0, 1, 0}};
      case Op::CZ:
        return Matrix{{1, 0, 0, 0},
                      {0, 1, 0, 0},
                      {0, 0, 1, 0},
                      {0, 0, 0, -1}};
      case Op::CP: {
        Matrix m = Matrix::identity(4);
        m(3, 3) = std::exp(kI * angle);
        return m;
      }
      case Op::SWAP:
        return Matrix{{1, 0, 0, 0},
                      {0, 0, 1, 0},
                      {0, 1, 0, 0},
                      {0, 0, 0, 1}};
      case Op::CCX: {
        Matrix m = Matrix::identity(8);
        m(6, 6) = 0.0;
        m(7, 7) = 0.0;
        m(6, 7) = 1.0;
        m(7, 6) = 1.0;
        return m;
      }
      case Op::Custom:
        break;
    }
    throw InternalError("primitiveUnitary: not a primitive op");
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::I: return "id";
      case Op::X: return "x";
      case Op::Y: return "y";
      case Op::Z: return "z";
      case Op::H: return "h";
      case Op::SX: return "sx";
      case Op::S: return "s";
      case Op::Sdg: return "sdg";
      case Op::T: return "t";
      case Op::Tdg: return "tdg";
      case Op::RX: return "rx";
      case Op::RY: return "ry";
      case Op::RZ: return "rz";
      case Op::P: return "p";
      case Op::CX: return "cx";
      case Op::CZ: return "cz";
      case Op::CP: return "cp";
      case Op::SWAP: return "swap";
      case Op::CCX: return "ccx";
      case Op::Custom: return "custom";
    }
    return "?";
}

int
opArity(Op op)
{
    switch (op) {
      case Op::CX:
      case Op::CZ:
      case Op::CP:
      case Op::SWAP:
        return 2;
      case Op::CCX:
        return 3;
      case Op::Custom:
        return 0;
      default:
        return 1;
    }
}

bool
opHasAngle(Op op)
{
    return op == Op::RX || op == Op::RY || op == Op::RZ || op == Op::P
        || op == Op::CP;
}

Gate::Gate(Op op, std::vector<int> qubits, double angle, std::string symbol)
    : op_(op), qubits_(std::move(qubits)), angle_(angle),
      symbol_(std::move(symbol))
{
    PAQOC_FATAL_IF(op == Op::Custom,
                   "use Gate::custom() to build custom gates");
    PAQOC_FATAL_IF(static_cast<int>(qubits_.size()) != opArity(op),
                   "gate ", opName(op), " expects ", opArity(op),
                   " qubits, got ", qubits_.size());
    for (std::size_t i = 0; i < qubits_.size(); ++i) {
        PAQOC_FATAL_IF(qubits_[i] < 0, "negative qubit index");
        for (std::size_t j = i + 1; j < qubits_.size(); ++j)
            PAQOC_FATAL_IF(qubits_[i] == qubits_[j],
                           "duplicate qubit in gate ", opName(op));
    }
}

Gate
Gate::custom(std::string label, std::vector<int> qubits, Matrix unitary,
             int absorbed, double latency_cap)
{
    PAQOC_FATAL_IF(qubits.empty(), "custom gate needs at least one qubit");
    const std::size_t dim = std::size_t{1} << qubits.size();
    PAQOC_FATAL_IF(unitary.rows() != dim || unitary.cols() != dim,
                   "custom gate unitary dimension ", unitary.rows(),
                   " does not match qubit count ", qubits.size());
    PAQOC_FATAL_IF(!unitary.isUnitary(1e-6),
                   "custom gate matrix is not unitary: ", label);
    Gate g;
    g.op_ = Op::Custom;
    g.qubits_ = std::move(qubits);
    g.custom_label_ = std::move(label);
    g.custom_unitary_ = std::make_shared<const Matrix>(std::move(unitary));
    g.absorbed_ = absorbed;
    PAQOC_FATAL_IF(latency_cap <= 0.0, "latency cap must be positive");
    g.latency_cap_ = latency_cap;
    return g;
}

const Matrix &
Gate::customUnitary() const
{
    PAQOC_ASSERT(custom_unitary_ != nullptr,
                 "customUnitary() on a primitive gate");
    return *custom_unitary_;
}

std::shared_ptr<const Matrix>
Gate::customUnitaryShared() const
{
    PAQOC_ASSERT(custom_unitary_ != nullptr,
                 "customUnitaryShared() on a primitive gate");
    return custom_unitary_;
}

std::string
Gate::label() const
{
    if (isCustom())
        return custom_label_;
    std::ostringstream oss;
    oss << opName(op_);
    if (opHasAngle(op_)) {
        if (!symbol_.empty()) {
            oss << "(" << symbol_ << ")";
        } else {
            oss.precision(4);
            oss << "(" << angle_ << ")";
        }
    }
    return oss.str();
}

std::string
Gate::miningLabel() const
{
    return label();
}

bool
Gate::actsOn(int qubit) const
{
    return std::find(qubits_.begin(), qubits_.end(), qubit)
        != qubits_.end();
}

bool
Gate::sharesQubit(const Gate &other) const
{
    for (int q : qubits_) {
        if (other.actsOn(q))
            return true;
    }
    return false;
}

Matrix
Gate::unitary() const
{
    if (isCustom())
        return *custom_unitary_;
    return primitiveUnitary(op_, angle_);
}

} // namespace paqoc
