#ifndef PAQOC_CIRCUIT_CIRCUIT_H_
#define PAQOC_CIRCUIT_CIRCUIT_H_

#include <string>
#include <vector>

#include "circuit/gate.h"

namespace paqoc {

/**
 * A quantum circuit: an ordered list of gates over a fixed register.
 *
 * Gate order is program order; the dependence DAG (dag.h) recovers the
 * partial order induced by shared qubits. Convenience constructors for
 * the common gates keep workload generators readable.
 */
class Circuit
{
  public:
    explicit Circuit(int num_qubits);

    int numQubits() const { return num_qubits_; }
    std::size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    const Gate &gate(std::size_t i) const { return gates_[i]; }
    const std::vector<Gate> &gates() const { return gates_; }

    /** Append a gate; its qubits must fit the register. */
    void add(Gate gate);

    /** Append all gates of another circuit over the same register. */
    void append(const Circuit &other);

    // Readable builders for generators and tests.
    void x(int q) { add(Gate(Op::X, {q})); }
    void y(int q) { add(Gate(Op::Y, {q})); }
    void z(int q) { add(Gate(Op::Z, {q})); }
    void h(int q) { add(Gate(Op::H, {q})); }
    void sx(int q) { add(Gate(Op::SX, {q})); }
    void s(int q) { add(Gate(Op::S, {q})); }
    void sdg(int q) { add(Gate(Op::Sdg, {q})); }
    void t(int q) { add(Gate(Op::T, {q})); }
    void tdg(int q) { add(Gate(Op::Tdg, {q})); }
    void rx(int q, double a, std::string sym = "")
    { add(Gate(Op::RX, {q}, a, std::move(sym))); }
    void ry(int q, double a, std::string sym = "")
    { add(Gate(Op::RY, {q}, a, std::move(sym))); }
    void rz(int q, double a, std::string sym = "")
    { add(Gate(Op::RZ, {q}, a, std::move(sym))); }
    void p(int q, double a, std::string sym = "")
    { add(Gate(Op::P, {q}, a, std::move(sym))); }
    void cx(int c, int t) { add(Gate(Op::CX, {c, t})); }
    void cz(int a, int b) { add(Gate(Op::CZ, {a, b})); }
    void cp(int a, int b, double ang, std::string sym = "")
    { add(Gate(Op::CP, {a, b}, ang, std::move(sym))); }
    void swap(int a, int b) { add(Gate(Op::SWAP, {a, b})); }
    void ccx(int a, int b, int t) { add(Gate(Op::CCX, {a, b, t})); }

    /** Count of gates acting on exactly one qubit. */
    int countOneQubitGates() const;

    /** Count of gates acting on two or more qubits. */
    int countMultiQubitGates() const;

    /** Sum of absorbedCount() over all gates (original gate total). */
    int absorbedTotal() const;

    /** One gate per line, for diagnostics and golden tests. */
    std::string toString() const;

  private:
    int num_qubits_;
    std::vector<Gate> gates_;
};

/**
 * Embed a k-qubit gate matrix into the full 2^n space of an n-qubit
 * register. qubits[0] addresses the most significant bit of the local
 * matrix index; globally, qubit i is bit i of the basis-state integer.
 */
Matrix embedUnitary(const Matrix &gate, const std::vector<int> &qubits,
                    int num_qubits);

/**
 * Full unitary of a circuit (product of embedded gate unitaries in
 * program order). Exponential in qubit count; intended for <= ~10
 * qubits in tests and pulse verification.
 */
Matrix circuitUnitary(const Circuit &circuit);

/**
 * Unitary of a gate subsequence on its own joint qubit support.
 * Returns the matrix and the sorted support qubits (most significant
 * first to match Gate::custom conventions).
 */
struct SubcircuitUnitary
{
    Matrix matrix;
    std::vector<int> qubits;
};
SubcircuitUnitary subcircuitUnitary(const std::vector<Gate> &gates);

} // namespace paqoc

#endif // PAQOC_CIRCUIT_CIRCUIT_H_
