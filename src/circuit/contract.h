#ifndef PAQOC_CIRCUIT_CONTRACT_H_
#define PAQOC_CIRCUIT_CONTRACT_H_

#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/dag.h"

namespace paqoc {

/**
 * Incrementally contracts groups of gates into single nodes of a
 * circuit's dependence DAG, rejecting contractions that would create a
 * cycle, and finally emits a dependence-respecting circuit in which
 * each multi-gate group is replaced by one gate.
 *
 * Used by the APA-basis rewriter, the customized-gates merge engine,
 * and the AccQOC baseline's fixed-depth grouping.
 */
class GroupContraction
{
  public:
    GroupContraction(const Circuit &circuit, const Dag &dag);

    /**
     * Try to merge the given gate indices (which may already belong to
     * merged groups; all their groups fuse) into one group. Returns
     * false and leaves the state unchanged if the contraction would
     * create a dependence cycle.
     */
    bool tryMerge(const std::vector<int> &gates);

    /** Group id currently containing a gate. */
    int groupOf(int gate) const
    { return group_of_[static_cast<std::size_t>(gate)]; }

    /** Opaque state for rollback across tryMerge calls. */
    struct State
    {
        std::vector<int> groupOf;
        int numGroups = 0;
    };

    /** Capture the current grouping. */
    State snapshot() const { return {group_of_, n_groups_}; }

    /** Restore a previously captured grouping. */
    void
    restore(const State &state)
    {
        group_of_ = state.groupOf;
        n_groups_ = state.numGroups;
    }

    /** Members (gate indices, ascending) of every live group. */
    std::vector<std::vector<int>> groups() const;

    /**
     * Member gate indices indexed by group id (dead ids map to empty
     * vectors). Pairs with topologicalOrder() for group-level passes.
     */
    std::vector<std::vector<int>> membersById() const;

    /** Live group ids in dependence order; throws if cyclic. */
    std::vector<int> topologicalOrder() const;

    /**
     * Emit the contracted circuit. merged_emitter receives the member
     * gate indices (ascending) of each multi-gate group and returns
     * the replacement gate; single-gate groups pass through.
     */
    Circuit emit(const std::function<Gate(const std::vector<int> &)>
                     &merged_emitter) const;

  private:
    std::vector<int> topoOrder() const; // empty when cyclic
    bool acyclic() const;

    const Circuit &circuit_;
    const Dag &dag_;
    std::vector<int> group_of_;
    int n_groups_;
};

} // namespace paqoc

#endif // PAQOC_CIRCUIT_CONTRACT_H_
