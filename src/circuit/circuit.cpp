#include "circuit/circuit.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.h"

namespace paqoc {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits)
{
    PAQOC_FATAL_IF(num_qubits <= 0, "circuit needs at least one qubit");
}

void
Circuit::add(Gate gate)
{
    for (int q : gate.qubits())
        PAQOC_FATAL_IF(q >= num_qubits_, "gate qubit ", q,
                       " outside register of size ", num_qubits_);
    gates_.push_back(std::move(gate));
}

void
Circuit::append(const Circuit &other)
{
    PAQOC_FATAL_IF(other.numQubits() > num_qubits_,
                   "appended circuit uses more qubits");
    for (const Gate &g : other.gates())
        add(g);
}

int
Circuit::countOneQubitGates() const
{
    int n = 0;
    for (const Gate &g : gates_)
        n += (g.arity() == 1);
    return n;
}

int
Circuit::countMultiQubitGates() const
{
    int n = 0;
    for (const Gate &g : gates_)
        n += (g.arity() >= 2);
    return n;
}

int
Circuit::absorbedTotal() const
{
    int n = 0;
    for (const Gate &g : gates_)
        n += g.absorbedCount();
    return n;
}

std::string
Circuit::toString() const
{
    std::ostringstream oss;
    for (const Gate &g : gates_) {
        oss << g.label() << " ";
        for (std::size_t i = 0; i < g.qubits().size(); ++i)
            oss << (i ? "," : "q") << g.qubits()[i];
        oss << '\n';
    }
    return oss.str();
}

Matrix
embedUnitary(const Matrix &gate, const std::vector<int> &qubits,
             int num_qubits)
{
    const int k = static_cast<int>(qubits.size());
    PAQOC_ASSERT(gate.rows() == (std::size_t{1} << k),
                 "gate matrix size does not match qubit list");
    PAQOC_ASSERT(num_qubits >= k && num_qubits < 26,
                 "embedUnitary register out of supported range");
    const std::size_t dim = std::size_t{1} << num_qubits;
    Matrix out(dim, dim);

    // qubits[0] is the most significant local bit.
    std::vector<int> bitpos(k);
    for (int i = 0; i < k; ++i)
        bitpos[i] = qubits[static_cast<std::size_t>(k - 1 - i)];

    for (std::size_t col = 0; col < dim; ++col) {
        std::size_t local_in = 0;
        for (int i = 0; i < k; ++i)
            local_in |= ((col >> bitpos[i]) & 1u) << i;
        std::size_t cleared = col;
        for (int i = 0; i < k; ++i)
            cleared &= ~(std::size_t{1} << bitpos[i]);
        for (std::size_t local_out = 0;
             local_out < (std::size_t{1} << k); ++local_out) {
            const Complex v = gate(local_out, local_in);
            if (v == Complex(0.0, 0.0))
                continue;
            std::size_t row = cleared;
            for (int i = 0; i < k; ++i)
                row |= ((local_out >> i) & 1u) << bitpos[i];
            out(row, col) = v;
        }
    }
    return out;
}

Matrix
circuitUnitary(const Circuit &circuit)
{
    PAQOC_FATAL_IF(circuit.numQubits() > 12,
                   "circuitUnitary limited to 12 qubits (got ",
                   circuit.numQubits(), ")");
    const std::size_t dim = std::size_t{1} << circuit.numQubits();
    Matrix u = Matrix::identity(dim);
    for (const Gate &g : circuit.gates()) {
        const Matrix e =
            embedUnitary(g.unitary(), g.qubits(), circuit.numQubits());
        u = e * u;
    }
    return u;
}

SubcircuitUnitary
subcircuitUnitary(const std::vector<Gate> &gates)
{
    PAQOC_FATAL_IF(gates.empty(), "empty subcircuit");
    std::set<int> support;
    for (const Gate &g : gates)
        support.insert(g.qubits().begin(), g.qubits().end());
    PAQOC_FATAL_IF(support.size() > 10, "subcircuit support too large");

    // Local bit i holds the i-th smallest support qubit; the returned
    // qubit list is most-significant-first per Gate::custom convention.
    std::vector<int> ascending(support.begin(), support.end());
    const int k = static_cast<int>(ascending.size());

    Circuit local(k);
    for (const Gate &g : gates) {
        std::vector<int> mapped;
        mapped.reserve(g.qubits().size());
        for (int q : g.qubits()) {
            const auto it = std::lower_bound(ascending.begin(),
                                             ascending.end(), q);
            mapped.push_back(static_cast<int>(it - ascending.begin()));
        }
        if (g.isCustom()) {
            local.add(Gate::custom(g.label(), std::move(mapped),
                                   g.customUnitary(), g.absorbedCount(),
                                   g.latencyCap()));
        } else {
            local.add(Gate(g.op(), std::move(mapped), g.angle(),
                           g.symbol()));
        }
    }

    SubcircuitUnitary result;
    result.matrix = circuitUnitary(local);
    result.qubits.assign(ascending.rbegin(), ascending.rend());
    return result;
}

} // namespace paqoc
