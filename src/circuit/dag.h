#ifndef PAQOC_CIRCUIT_DAG_H_
#define PAQOC_CIRCUIT_DAG_H_

#include <vector>

#include "circuit/circuit.h"

namespace paqoc {

/**
 * Dependence DAG of a circuit. Node i is gate i of the circuit; there
 * is an edge u -> v when v is the next gate after u on some shared
 * qubit. Program order is a topological order by construction.
 */
struct Dag
{
    std::vector<std::vector<int>> preds;
    std::vector<std::vector<int>> succs;

    std::size_t size() const { return preds.size(); }

    /** True if v directly depends on u. */
    bool hasEdge(int u, int v) const;

    /**
     * True if v is reachable from u through directed edges (u != v).
     * Used to detect the false dependences gate merging could create.
     */
    bool reaches(int u, int v) const;
};

/** Build the shared-qubit dependence DAG of a circuit. */
Dag buildDag(const Circuit &circuit);

} // namespace paqoc

#endif // PAQOC_CIRCUIT_DAG_H_
