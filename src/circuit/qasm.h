#ifndef PAQOC_CIRCUIT_QASM_H_
#define PAQOC_CIRCUIT_QASM_H_

#include <string>

#include "circuit/circuit.h"

namespace paqoc {

/**
 * Serialize a circuit as OpenQASM 2.0. Custom (merged/APA) gates
 * cannot be expressed in QASM 2.0 and raise FatalError; export before
 * compilation or after lowering to primitives.
 */
std::string toQasm(const Circuit &circuit);

/**
 * Parse a subset of OpenQASM 2.0: one quantum register, the gates of
 * the project gate library (id/x/y/z/h/sx/s/sdg/t/tdg/rx/ry/rz/p/u1/
 * cx/cz/cp/cu1/swap/ccx), numeric angle expressions of the form
 * `[-]a*pi[/b]` or plain decimals, comments, and barrier (ignored).
 * Raises FatalError with a line number on anything else.
 */
Circuit fromQasm(const std::string &text);

} // namespace paqoc

#endif // PAQOC_CIRCUIT_QASM_H_
