#include "circuit/qasm.h"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>

#include "common/error.h"

namespace paqoc {

namespace {

constexpr double kPi = 3.14159265358979323846;

const char *
qasmName(Op op)
{
    switch (op) {
      case Op::P:
        return "u1"; // most widely understood spelling
      case Op::CP:
        return "cu1";
      default:
        return opName(op);
    }
}

/** Parse "pi", "-pi/2", "3*pi/4", "0.25", "-1.5e-1". */
double
parseAngle(const std::string &text, int line_no)
{
    std::string s;
    for (char c : text)
        if (!std::isspace(static_cast<unsigned char>(c)))
            s += c;
    PAQOC_FATAL_IF(s.empty(), "qasm line ", line_no, ": empty angle");

    double sign = 1.0;
    std::size_t pos = 0;
    if (s[0] == '-') {
        sign = -1.0;
        pos = 1;
    } else if (s[0] == '+') {
        pos = 1;
    }
    const std::size_t pi_at = s.find("pi", pos);
    if (pi_at == std::string::npos) {
        try {
            return sign * std::stod(s.substr(pos));
        } catch (const std::exception &) {
            throw FatalError("qasm line " + std::to_string(line_no)
                             + ": bad angle '" + text + "'");
        }
    }
    double value = kPi;
    if (pi_at > pos) {
        // "a*pi" prefix.
        const std::string prefix = s.substr(pos, pi_at - pos);
        PAQOC_FATAL_IF(prefix.empty() || prefix.back() != '*',
                       "qasm line ", line_no, ": bad angle '", text,
                       "'");
        value *= std::stod(prefix.substr(0, prefix.size() - 1));
    }
    std::size_t rest = pi_at + 2;
    if (rest < s.size()) {
        PAQOC_FATAL_IF(s[rest] != '/', "qasm line ", line_no,
                       ": bad angle '", text, "'");
        value /= std::stod(s.substr(rest + 1));
    }
    return sign * value;
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n"
        << "include \"qelib1.inc\";\n"
        << "qreg q[" << circuit.numQubits() << "];\n";
    for (const Gate &g : circuit.gates()) {
        PAQOC_FATAL_IF(g.isCustom(),
                       "custom gate '", g.label(),
                       "' has no QASM 2.0 spelling");
        oss << qasmName(g.op());
        if (opHasAngle(g.op())) {
            oss.precision(12);
            oss << '(' << g.angle() << ')';
        }
        for (std::size_t i = 0; i < g.qubits().size(); ++i)
            oss << (i == 0 ? " " : ",") << "q[" << g.qubits()[i] << "]";
        oss << ";\n";
    }
    return oss.str();
}

Circuit
fromQasm(const std::string &text)
{
    static const std::map<std::string, Op> ops = {
        {"id", Op::I},    {"x", Op::X},     {"y", Op::Y},
        {"z", Op::Z},     {"h", Op::H},     {"sx", Op::SX},
        {"s", Op::S},     {"sdg", Op::Sdg}, {"t", Op::T},
        {"tdg", Op::Tdg}, {"rx", Op::RX},   {"ry", Op::RY},
        {"rz", Op::RZ},   {"p", Op::P},     {"u1", Op::P},
        {"cx", Op::CX},   {"cz", Op::CZ},   {"cp", Op::CP},
        {"cu1", Op::CP},  {"swap", Op::SWAP}, {"ccx", Op::CCX},
    };

    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    int num_qubits = -1;
    std::string qreg_name;
    std::vector<Gate> gates;

    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        // Strip whitespace except one separator between the mnemonic
        // and its operands (so "h q[0]" does not collapse to "hq[0]").
        std::string stripped;
        bool separator_pending = false;
        for (char c : line) {
            if (std::isspace(static_cast<unsigned char>(c))) {
                if (!stripped.empty())
                    separator_pending = true;
                continue;
            }
            if (separator_pending) {
                separator_pending = false;
                const char last = stripped.back();
                if (std::isalnum(static_cast<unsigned char>(last))
                    && (std::isalpha(static_cast<unsigned char>(c))))
                    stripped += ' ';
            }
            stripped += c;
        }
        if (stripped.empty())
            continue;
        PAQOC_FATAL_IF(stripped.back() != ';', "qasm line ", line_no,
                       ": missing ';'");
        stripped.pop_back();

        if (stripped.rfind("OPENQASM", 0) == 0
            || stripped.rfind("include", 0) == 0
            || stripped.rfind("barrier", 0) == 0)
            continue;
        if (stripped.rfind("qreg", 0) == 0) {
            const std::size_t lb = stripped.find('[');
            const std::size_t rb = stripped.find(']');
            PAQOC_FATAL_IF(lb == std::string::npos
                               || rb == std::string::npos || rb < lb,
                           "qasm line ", line_no, ": bad qreg");
            PAQOC_FATAL_IF(num_qubits >= 0, "qasm line ", line_no,
                           ": only one qreg supported");
            qreg_name = stripped.substr(4, lb - 4);
            while (!qreg_name.empty() && qreg_name.front() == ' ')
                qreg_name.erase(qreg_name.begin());
            num_qubits = std::stoi(stripped.substr(lb + 1, rb - lb - 1));
            continue;
        }
        if (stripped.rfind("creg", 0) == 0
            || stripped.rfind("measure", 0) == 0)
            continue;

        PAQOC_FATAL_IF(num_qubits < 0, "qasm line ", line_no,
                       ": gate before qreg");

        // Gate name, optional (angle), operand list.
        std::size_t pos = 0;
        while (pos < stripped.size()
               && (std::isalnum(static_cast<unsigned char>(
                       stripped[pos]))))
            ++pos;
        const std::string name = stripped.substr(0, pos);
        const auto op_it = ops.find(name);
        PAQOC_FATAL_IF(op_it == ops.end(), "qasm line ", line_no,
                       ": unknown gate '", name, "'");

        double angle = 0.0;
        if (pos < stripped.size() && stripped[pos] == '(') {
            const std::size_t close = stripped.find(')', pos);
            PAQOC_FATAL_IF(close == std::string::npos, "qasm line ",
                           line_no, ": missing ')'");
            angle = parseAngle(stripped.substr(pos + 1, close - pos - 1),
                               line_no);
            pos = close + 1;
        }

        std::vector<int> qubits;
        while (pos < stripped.size()) {
            if (stripped[pos] == ',' || stripped[pos] == ' ') {
                ++pos;
                continue;
            }
            const std::size_t lb = stripped.find('[', pos);
            const std::size_t rb = stripped.find(']', pos);
            PAQOC_FATAL_IF(lb == std::string::npos
                               || rb == std::string::npos,
                           "qasm line ", line_no, ": bad operand");
            const std::string reg = stripped.substr(pos, lb - pos);
            PAQOC_FATAL_IF(reg != qreg_name, "qasm line ", line_no,
                           ": unknown register '", reg, "'");
            qubits.push_back(
                std::stoi(stripped.substr(lb + 1, rb - lb - 1)));
            pos = rb + 1;
        }
        gates.emplace_back(op_it->second, std::move(qubits), angle);
    }
    PAQOC_FATAL_IF(num_qubits <= 0, "qasm: no qreg found");
    Circuit circuit(num_qubits);
    for (Gate &g : gates)
        circuit.add(std::move(g));
    return circuit;
}

} // namespace paqoc
