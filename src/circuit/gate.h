#ifndef PAQOC_CIRCUIT_GATE_H_
#define PAQOC_CIRCUIT_GATE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Primitive operations known to the gate library, plus Custom for
 * APA-basis gates and merged customized gates, whose unitary is stored
 * explicitly on the gate.
 */
enum class Op
{
    I, X, Y, Z, H, SX, S, Sdg, T, Tdg,  // fixed one-qubit
    RX, RY, RZ, P,                      // parameterized one-qubit
    CX, CZ, CP, SWAP,                   // two-qubit (CP = CPHASE/CU1)
    CCX,                                // three-qubit Toffoli
    Custom,                             // stored-unitary gate
};

/** Short lowercase mnemonic such as "cx" for an op. */
const char *opName(Op op);

/** Number of qubits an op acts on (Custom reports 0; ask the gate). */
int opArity(Op op);

/** True for RX/RY/RZ/CP/P, which carry one angle parameter. */
bool opHasAngle(Op op);

/**
 * One quantum gate application: an operation, the qubits it acts on,
 * an optional angle, and an optional symbolic angle name used by the
 * frequent-subcircuit miner to handle parameterized circuits.
 *
 * Custom gates (APA-basis gates and merged customized gates) carry
 * their unitary and remember how many primitive gates they absorbed,
 * which the evaluation uses for coverage statistics.
 */
class Gate
{
  public:
    /** A primitive gate; arity of op must match qubits.size(). */
    Gate(Op op, std::vector<int> qubits, double angle = 0.0,
         std::string symbol = "");

    /**
     * A custom gate with an explicit unitary over the listed qubits
     * (qubits[0] is the most significant index into the matrix).
     *
     * @param label Display label, e.g. "apa3" or "merge(cx,rz)".
     * @param absorbed Number of primitive gates this gate replaces.
     * @param latency_cap Upper bound on the gate's pulse latency in
     *        dt, normally the summed latency of the gates it absorbs:
     *        a merged pulse can always fall back to the stitched
     *        per-gate pulses, so analytical estimates are clamped to
     *        this value (Observation 1). Defaults to unbounded.
     */
    static Gate custom(std::string label, std::vector<int> qubits,
                       Matrix unitary, int absorbed,
                       double latency_cap
                           = std::numeric_limits<double>::infinity());

    /** Upper bound on this gate's pulse latency (dt); may be +inf. */
    double latencyCap() const { return latency_cap_; }

    Op op() const { return op_; }
    const std::vector<int> &qubits() const { return qubits_; }
    int arity() const { return static_cast<int>(qubits_.size()); }
    double angle() const { return angle_; }
    const std::string &symbol() const { return symbol_; }
    bool isCustom() const { return op_ == Op::Custom; }

    /** Primitive gates absorbed (1 for primitives themselves). */
    int absorbedCount() const { return absorbed_; }

    /** Stored unitary; only valid for custom gates. */
    const Matrix &customUnitary() const;

    /**
     * Shared ownership of the stored unitary; only valid for custom
     * gates. Lets memo tables that key on the matrix address pin the
     * allocation so a freed address can never be reused by a
     * different unitary (see LatencyOracle).
     */
    std::shared_ptr<const Matrix> customUnitaryShared() const;

    /** Display label, e.g. "rz(0.5)", "cx", or a custom label. */
    std::string label() const;

    /**
     * Structural label used by the miner: op name plus the symbolic
     * angle if present (so rz(theta) instances unify), else the
     * numeric angle rendered at fixed precision.
     */
    std::string miningLabel() const;

    /** True if the gate acts on the given qubit. */
    bool actsOn(int qubit) const;

    /** True if the two gates share at least one qubit. */
    bool sharesQubit(const Gate &other) const;

    /**
     * The gate's unitary on its own qubits (2^arity square), from the
     * gate library for primitives or the stored matrix for customs.
     */
    Matrix unitary() const;

  private:
    Gate() = default;

    Op op_ = Op::I;
    std::vector<int> qubits_;
    double angle_ = 0.0;
    std::string symbol_;
    std::string custom_label_;
    std::shared_ptr<const Matrix> custom_unitary_;
    int absorbed_ = 1;
    double latency_cap_ = std::numeric_limits<double>::infinity();
};

} // namespace paqoc

#endif // PAQOC_CIRCUIT_GATE_H_
