#include "circuit/commute.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace paqoc {

namespace {

/** Per-qubit action basis of a gate. */
enum class Basis
{
    ZDiag,  // diagonal in the computational basis on this qubit
    XDiag,  // diagonal in the X basis on this qubit
    Opaque, // unknown / entangling in both bases
};

Basis
basisOn(const Gate &g, int qubit)
{
    switch (g.op()) {
      case Op::I:
      case Op::Z:
      case Op::S:
      case Op::Sdg:
      case Op::T:
      case Op::Tdg:
      case Op::RZ:
      case Op::P:
      case Op::CZ:
      case Op::CP:
        return Basis::ZDiag;
      case Op::X:
      case Op::SX:
      case Op::RX:
        return Basis::XDiag;
      case Op::CX:
        // Control acts diagonally in Z; target diagonally in X.
        return g.qubits()[0] == qubit ? Basis::ZDiag : Basis::XDiag;
      default:
        return Basis::Opaque;
    }
}

} // namespace

bool
gatesCommute(const Gate &a, const Gate &b)
{
    for (int q : a.qubits()) {
        if (!b.actsOn(q))
            continue;
        const Basis ba = basisOn(a, q);
        const Basis bb = basisOn(b, q);
        if (ba == Basis::Opaque || bb == Basis::Opaque || ba != bb)
            return false;
    }
    return true;
}

Dag
buildCommutationDag(const Circuit &circuit)
{
    // Per qubit, gates form maximal runs of equal basis (opaque gates
    // are singleton runs). Gates within a run mutually commute on the
    // qubit and stay unordered; every gate depends on every member of
    // the run preceding its own, which transitively orders it after
    // all older different-basis gates. This is the sound version of
    // "slide commuting gates past each other".
    Dag dag;
    dag.preds.resize(circuit.size());
    dag.succs.resize(circuit.size());

    struct QubitRuns
    {
        Basis currentBasis = Basis::Opaque;
        std::vector<int> current;
        std::vector<int> previous;
        bool any = false;
    };
    std::vector<QubitRuns> runs(
        static_cast<std::size_t>(circuit.numQubits()));

    auto add_edge = [&](int u, int v) {
        if (!dag.hasEdge(u, v)) {
            dag.succs[static_cast<std::size_t>(u)].push_back(v);
            dag.preds[static_cast<std::size_t>(v)].push_back(u);
        }
    };

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &v = circuit.gate(i);
        for (int q : v.qubits()) {
            QubitRuns &r = runs[static_cast<std::size_t>(q)];
            const Basis basis = basisOn(v, q);
            const bool joins_run = r.any && basis != Basis::Opaque
                && basis == r.currentBasis;
            if (joins_run) {
                for (int u : r.previous)
                    add_edge(u, static_cast<int>(i));
            } else {
                for (int u : r.current)
                    add_edge(u, static_cast<int>(i));
                r.previous = std::move(r.current);
                r.current.clear();
                r.currentBasis = basis;
            }
            r.current.push_back(static_cast<int>(i));
            r.any = true;
        }
    }
    return dag;
}

std::vector<std::pair<int, int>>
commutingAdjacentPairs(const Circuit &circuit)
{
    std::vector<std::pair<int, int>> pairs;
    std::set<std::pair<int, int>> seen;
    struct RunState
    {
        Basis basis = Basis::Opaque;
        int last = -1;
        bool open = false;
    };
    std::vector<RunState> runs(
        static_cast<std::size_t>(circuit.numQubits()));
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &v = circuit.gate(i);
        for (int q : v.qubits()) {
            RunState &r = runs[static_cast<std::size_t>(q)];
            const Basis basis = basisOn(v, q);
            if (r.open && basis != Basis::Opaque && basis == r.basis) {
                // Same run: consecutive members may merge if they
                // commute outright (all shared qubits compatible).
                const Gate &u = circuit.gate(
                    static_cast<std::size_t>(r.last));
                if (gatesCommute(u, v)
                    && seen.emplace(r.last, static_cast<int>(i))
                           .second)
                    pairs.emplace_back(r.last, static_cast<int>(i));
            } else {
                r.basis = basis;
                r.open = true;
            }
            r.last = static_cast<int>(i);
        }
    }
    return pairs;
}

} // namespace paqoc
