#include "circuit/contract.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace paqoc {

GroupContraction::GroupContraction(const Circuit &circuit, const Dag &dag)
    : circuit_(circuit), dag_(dag), group_of_(circuit.size())
{
    PAQOC_ASSERT(dag.size() == circuit.size(), "DAG/circuit mismatch");
    for (std::size_t i = 0; i < circuit.size(); ++i)
        group_of_[i] = static_cast<int>(i);
    n_groups_ = static_cast<int>(circuit.size());
}

bool
GroupContraction::tryMerge(const std::vector<int> &gates)
{
    PAQOC_ASSERT(!gates.empty(), "empty merge set");
    const std::vector<int> snapshot = group_of_;
    std::set<int> fused;
    for (int g : gates)
        fused.insert(group_of_[static_cast<std::size_t>(g)]);
    const int gid = n_groups_++;
    for (std::size_t i = 0; i < group_of_.size(); ++i) {
        if (fused.count(group_of_[i]))
            group_of_[i] = gid;
    }
    if (acyclic())
        return true;
    group_of_ = snapshot;
    --n_groups_;
    return false;
}

std::vector<std::vector<int>>
GroupContraction::groups() const
{
    std::vector<std::vector<int>> members(
        static_cast<std::size_t>(n_groups_));
    for (std::size_t i = 0; i < circuit_.size(); ++i)
        members[static_cast<std::size_t>(group_of_[i])].push_back(
            static_cast<int>(i));
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [](const std::vector<int> &m)
                                 { return m.empty(); }),
                  members.end());
    return members;
}

std::vector<std::vector<int>>
GroupContraction::membersById() const
{
    std::vector<std::vector<int>> members(
        static_cast<std::size_t>(n_groups_));
    for (std::size_t i = 0; i < circuit_.size(); ++i)
        members[static_cast<std::size_t>(group_of_[i])].push_back(
            static_cast<int>(i));
    return members;
}

std::vector<int>
GroupContraction::topologicalOrder() const
{
    std::vector<int> order = topoOrder();
    PAQOC_ASSERT(!order.empty() || circuit_.size() == 0,
                 "contracted graph is cyclic");
    return order;
}

std::vector<int>
GroupContraction::topoOrder() const
{
    const auto ng = static_cast<std::size_t>(n_groups_);
    std::vector<std::set<int>> succ(ng);
    std::vector<int> indeg(ng, 0);
    std::vector<char> present(ng, 0);
    for (std::size_t u = 0; u < circuit_.size(); ++u) {
        present[static_cast<std::size_t>(group_of_[u])] = 1;
        for (int v : dag_.succs[u]) {
            const int gu = group_of_[u];
            const int gv = group_of_[static_cast<std::size_t>(v)];
            if (gu != gv
                && succ[static_cast<std::size_t>(gu)].insert(gv).second)
                ++indeg[static_cast<std::size_t>(gv)];
        }
    }
    std::vector<int> first_member(ng, 1 << 30);
    for (std::size_t i = 0; i < circuit_.size(); ++i) {
        auto &fm = first_member[static_cast<std::size_t>(group_of_[i])];
        fm = std::min(fm, static_cast<int>(i));
    }
    auto cmp = [&](int a, int b) {
        return first_member[static_cast<std::size_t>(a)]
            > first_member[static_cast<std::size_t>(b)];
    };
    std::vector<int> heap;
    std::size_t total = 0;
    for (std::size_t g = 0; g < ng; ++g) {
        if (!present[g])
            continue;
        ++total;
        if (indeg[g] == 0) {
            heap.push_back(static_cast<int>(g));
            std::push_heap(heap.begin(), heap.end(), cmp);
        }
    }
    std::vector<int> order;
    order.reserve(total);
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        const int g = heap.back();
        heap.pop_back();
        order.push_back(g);
        for (int s : succ[static_cast<std::size_t>(g)]) {
            if (--indeg[static_cast<std::size_t>(s)] == 0) {
                heap.push_back(s);
                std::push_heap(heap.begin(), heap.end(), cmp);
            }
        }
    }
    if (order.size() != total)
        order.clear();
    return order;
}

bool
GroupContraction::acyclic() const
{
    return !topoOrder().empty() || circuit_.size() == 0;
}

Circuit
GroupContraction::emit(
    const std::function<Gate(const std::vector<int> &)> &merged_emitter)
    const
{
    std::vector<std::vector<int>> members(
        static_cast<std::size_t>(n_groups_));
    for (std::size_t i = 0; i < circuit_.size(); ++i)
        members[static_cast<std::size_t>(group_of_[i])].push_back(
            static_cast<int>(i));
    const std::vector<int> order = topoOrder();
    PAQOC_ASSERT(!order.empty() || circuit_.size() == 0,
                 "contracted graph is cyclic at emit time");
    Circuit out(circuit_.numQubits());
    for (int gid : order) {
        const auto &m = members[static_cast<std::size_t>(gid)];
        if (m.size() == 1)
            out.add(circuit_.gate(static_cast<std::size_t>(m[0])));
        else
            out.add(merged_emitter(m));
    }
    return out;
}

} // namespace paqoc
