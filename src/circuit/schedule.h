#ifndef PAQOC_CIRCUIT_SCHEDULE_H_
#define PAQOC_CIRCUIT_SCHEDULE_H_

#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/dag.h"

namespace paqoc {

/** Maps a gate to its pulse latency in dt units. */
using LatencyFn = std::function<double(const Gate &)>;

/**
 * ASAP schedule of a circuit under a latency function, with the
 * criticality information Section V-A of the paper consumes:
 *
 *  - start/finish times per gate,
 *  - makespan (whole-circuit latency),
 *  - cpAfter(X): longest latency path strictly after X (the paper's
 *    CP(X)),
 *  - onCriticalPath flags (a gate is critical if some longest path
 *    runs through it).
 */
struct Schedule
{
    std::vector<double> latency;
    std::vector<double> start;
    std::vector<double> finish;
    std::vector<double> cpAfter;
    std::vector<bool> onCriticalPath;
    double makespan = 0.0;
};

/** Compute the ASAP schedule and criticality data for a circuit. */
Schedule computeSchedule(const Circuit &circuit, const Dag &dag,
                         const LatencyFn &latency);

/** Convenience overload that builds the DAG internally. */
Schedule computeSchedule(const Circuit &circuit, const LatencyFn &latency);

} // namespace paqoc

#endif // PAQOC_CIRCUIT_SCHEDULE_H_
