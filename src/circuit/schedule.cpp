#include "circuit/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace paqoc {

Schedule
computeSchedule(const Circuit &circuit, const Dag &dag,
                const LatencyFn &latency)
{
    const std::size_t n = circuit.size();
    PAQOC_ASSERT(dag.size() == n, "DAG does not match circuit");

    Schedule s;
    s.latency.resize(n);
    s.start.assign(n, 0.0);
    s.finish.resize(n);
    s.cpAfter.assign(n, 0.0);
    s.onCriticalPath.assign(n, false);

    for (std::size_t i = 0; i < n; ++i) {
        const double lat = latency(circuit.gate(i));
        PAQOC_ASSERT(lat >= 0.0, "negative gate latency");
        s.latency[i] = lat;
    }

    // Forward pass in program order (a topological order of the DAG).
    for (std::size_t i = 0; i < n; ++i) {
        double start = 0.0;
        for (int p : dag.preds[i])
            start = std::max(start, s.finish[static_cast<std::size_t>(p)]);
        s.start[i] = start;
        s.finish[i] = start + s.latency[i];
        s.makespan = std::max(s.makespan, s.finish[i]);
    }

    // Backward pass for CP(X): longest path strictly after X.
    for (std::size_t ri = n; ri-- > 0;) {
        double cp = 0.0;
        for (int succ : dag.succs[ri]) {
            const auto si = static_cast<std::size_t>(succ);
            cp = std::max(cp, s.latency[si] + s.cpAfter[si]);
        }
        s.cpAfter[ri] = cp;
    }

    // A gate is critical when the longest path through it spans the
    // makespan; start[] is the longest path strictly before the gate.
    const double tol = 1e-9 * std::max(s.makespan, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double through = s.start[i] + s.latency[i] + s.cpAfter[i];
        s.onCriticalPath[i] = through >= s.makespan - tol;
    }
    return s;
}

Schedule
computeSchedule(const Circuit &circuit, const LatencyFn &latency)
{
    return computeSchedule(circuit, buildDag(circuit), latency);
}

} // namespace paqoc
