#ifndef PAQOC_PAQOC_PREPROCESS_H_
#define PAQOC_PAQOC_PREPROCESS_H_

#include "circuit/circuit.h"
#include "circuit/schedule.h"

namespace paqoc {

/**
 * Observation-1 preprocessing (paper Section V-A, Fig. 8b->c): merge
 * dependence-adjacent gates whose qubit support is nested (one set
 * contains the other), since merging gates that share the same
 * qubit(s) never increases latency. Runs to a fixpoint; merged gates
 * become Custom gates carrying their joint unitary.
 *
 * @param max_qubits Upper bound on a merged gate's qubit support
 *        (the paper's maxN).
 * @param latency Optional latency oracle; when given, merged gates
 *        carry a latency cap equal to their members' summed latency
 *        (the stitched-pulse fallback), keeping Observation 1 exact
 *        under the analytical model.
 */
Circuit preprocessMergeNestedSupport(const Circuit &circuit,
                                     int max_qubits,
                                     const LatencyFn *latency = nullptr);

} // namespace paqoc

#endif // PAQOC_PAQOC_PREPROCESS_H_
