#ifndef PAQOC_PAQOC_ESP_H_
#define PAQOC_PAQOC_ESP_H_

#include <vector>

#include "circuit/circuit.h"
#include "qoc/pulse_generator.h"

namespace paqoc {

/** Final pulse pass over a compiled circuit. */
struct CircuitPulses
{
    /** Committed pulse latency per gate, in dt. */
    std::vector<double> gateLatency;
    /** Committed pulse error per gate. */
    std::vector<double> gateError;
    /** Whole-circuit latency (ASAP makespan) under those latencies. */
    double makespan = 0.0;
    /** Estimated success probability, Eq. (2). */
    double esp = 0.0;
};

/**
 * Generate (or fetch from the cache) the control pulse of every gate
 * in a compiled circuit, schedule the circuit under the committed
 * latencies, and evaluate the ESP product of Eq. (2).
 *
 * With a pool, the per-gate pulses are generated as one concurrent
 * batch; the latencies, errors and the ESP product are bit-identical
 * to the serial pass for any thread count (the ESP factors multiply
 * in program order after the batch completes).
 */
CircuitPulses generateCircuitPulses(const Circuit &circuit,
                                    PulseGenerator &generator,
                                    ThreadPool *pool = nullptr);

} // namespace paqoc

#endif // PAQOC_PAQOC_ESP_H_
