#include "paqoc/esp.h"

#include <algorithm>

#include "circuit/schedule.h"
#include "common/error.h"

namespace paqoc {

CircuitPulses
generateCircuitPulses(const Circuit &circuit, PulseGenerator &generator)
{
    CircuitPulses out;
    out.gateLatency.reserve(circuit.size());
    out.gateError.reserve(circuit.size());
    out.esp = 1.0;

    for (const Gate &g : circuit.gates()) {
        const PulseGenResult r = generator.generate(g.unitary(),
                                                    g.arity());
        // A merged pulse can always fall back to the stitched form, so
        // analytical latencies are clamped to the gate's cap.
        out.gateLatency.push_back(std::min(r.latency, g.latencyCap()));
        out.gateError.push_back(r.error);
        out.esp *= (1.0 - r.error);
    }

    std::size_t index = 0;
    const Schedule sched = computeSchedule(
        circuit, [&](const Gate &) { return out.gateLatency[index++]; });
    // computeSchedule visits gates exactly once in program order.
    PAQOC_ASSERT(index == circuit.size(), "latency walk out of sync");
    out.makespan = sched.makespan;
    return out;
}

} // namespace paqoc
