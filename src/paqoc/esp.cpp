#include "paqoc/esp.h"

#include <algorithm>

#include "circuit/schedule.h"
#include "common/error.h"

namespace paqoc {

CircuitPulses
generateCircuitPulses(const Circuit &circuit, PulseGenerator &generator,
                      ThreadPool *pool)
{
    CircuitPulses out;
    out.gateLatency.reserve(circuit.size());
    out.gateError.reserve(circuit.size());
    out.esp = 1.0;

    std::vector<PulseRequest> requests;
    requests.reserve(circuit.size());
    for (const Gate &g : circuit.gates())
        requests.push_back({g.unitary(), g.arity()});
    const std::vector<PulseGenResult> results =
        generator.generateBatch(requests, pool);

    // Fold in program order: the ESP product and the latency clamps
    // are position-dependent, so this loop stays serial no matter how
    // the batch above was scheduled.
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        const PulseGenResult &r = results[i];
        // A merged pulse can always fall back to the stitched form, so
        // analytical latencies are clamped to the gate's cap.
        out.gateLatency.push_back(std::min(r.latency, g.latencyCap()));
        out.gateError.push_back(r.error);
        out.esp *= (1.0 - r.error);
    }

    std::size_t index = 0;
    const Schedule sched = computeSchedule(
        circuit, [&](const Gate &) { return out.gateLatency[index++]; });
    // computeSchedule visits gates exactly once in program order.
    PAQOC_ASSERT(index == circuit.size(), "latency walk out of sync");
    out.makespan = sched.makespan;
    return out;
}

} // namespace paqoc
