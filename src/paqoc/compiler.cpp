#include "paqoc/compiler.h"

#include <optional>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "paqoc/esp.h"
#include "paqoc/latency_oracle.h"

namespace paqoc {

namespace {

/**
 * Map the threads knob onto a pool: 0 = the process-wide pool, 1 =
 * serial (no pool at all), >= 2 = a private pool owned by `local` for
 * the duration of the compile.
 */
ThreadPool *
resolvePool(int threads, std::optional<ThreadPool> &local)
{
    if (threads == 1)
        return nullptr;
    if (threads <= 0)
        return &ThreadPool::global();
    local.emplace(static_cast<unsigned>(threads));
    return &*local;
}

/** Fill the generator-delta and pulse-pass fields of a report. */
void
finishReport(CompileReport &report, const Circuit &final_circuit,
             PulseGenerator &generator, ThreadPool *pool,
             const Stopwatch &watch, double cost_before,
             std::size_t calls_before, std::size_t hits_before)
{
    const CircuitPulses pulses =
        generateCircuitPulses(final_circuit, generator, pool);
    report.circuit = final_circuit;
    report.latency = pulses.makespan;
    report.esp = pulses.esp;
    report.finalGateCount = static_cast<int>(final_circuit.size());
    report.wallSeconds = watch.seconds();
    report.costUnits = generator.totalCostUnits() - cost_before;
    report.pulseCalls = generator.generateCalls() - calls_before;
    report.cacheHits = generator.cacheHits() - hits_before;
}

} // namespace

CompileReport
compilePaqoc(const Circuit &physical, PulseGenerator &generator,
             const PaqocOptions &options)
{
    CompileReport report;
    const Stopwatch watch;
    const double cost0 = generator.totalCostUnits();
    const std::size_t calls0 = generator.generateCalls();
    const std::size_t hits0 = generator.cacheHits();
    std::optional<ThreadPool> local_pool;
    ThreadPool *pool = resolvePool(options.threads, local_pool);

    Circuit working = physical;

    // Stage 1: frequent subcircuits miner + APA-basis rewriting, with
    // the Section V-C guarantee that substitution never lengthens the
    // critical path under the generator's latency estimates.
    if (options.apaM != 0 || options.tuned) {
        report.patterns =
            mineFrequentSubcircuits(physical, options.miner);
        LatencyOracle oracle(generator);
        const LatencyFn lat_fn = [&](const Gate &g) {
            return oracle(g);
        };
        ApaRewriteResult apa = applyApaBasis(
            physical, report.patterns, options.apaM, options.tuned,
            &lat_fn);
        report.apaKinds = apa.apaGatesUsed;
        report.apaUses = apa.apaUseCount;
        report.gatesCovered = apa.gatesCovered;
        working = std::move(apa.circuit);
    }

    // Stage 2: criticality-aware customized gates generator.
    if (options.enableMerger) {
        MergeResult merged =
            mergeCustomizedGates(working, generator, options.merge);
        report.merges = merged.stats.mergesApplied;
        working = std::move(merged.circuit);
    }

    // Stage 3: control pulses generator + ESP, batched on the pool.
    finishReport(report, working, generator, pool, watch, cost0,
                 calls0, hits0);
    return report;
}

CompileReport
compileAccqoc(const Circuit &physical, PulseGenerator &generator,
              const AccqocOptions &options)
{
    CompileReport report;
    const Stopwatch watch;
    const double cost0 = generator.totalCostUnits();
    const std::size_t calls0 = generator.generateCalls();
    const std::size_t hits0 = generator.cacheHits();
    std::optional<ThreadPool> local_pool;
    ThreadPool *pool = resolvePool(options.threads, local_pool);

    LatencyOracle oracle(generator);
    const LatencyFn lat_fn = [&](const Gate &g) { return oracle(g); };
    const Circuit partitioned =
        accqocPartition(physical, options, &lat_fn);

    // Generate pulses for distinct subcircuits along the similarity
    // MST so each GRAPE run warm-starts from a close neighbor. The
    // tree is walked in breadth-first waves: a node's MST parent lands
    // in an earlier wave, so its pulse is already cached (within the
    // batch's similarity horizon) when the node's wave runs -- and
    // every wave is one parallel batch.
    const SimilarityMstTree tree = similarityMstTree(partitioned);
    std::vector<int> wave(tree.order.size(), 0);
    int num_waves = tree.order.empty() ? 0 : 1;
    for (std::size_t k = 0; k < tree.order.size(); ++k) {
        if (tree.parent[k] >= 0)
            wave[k] = wave[static_cast<std::size_t>(tree.parent[k])] + 1;
        num_waves = std::max(num_waves, wave[k] + 1);
    }
    for (int w = 0; w < num_waves; ++w) {
        std::vector<PulseRequest> requests;
        for (std::size_t k = 0; k < tree.order.size(); ++k) {
            if (wave[k] != w)
                continue;
            const Gate &g = partitioned.gate(tree.order[k]);
            requests.push_back({g.unitary(), g.arity()});
        }
        generator.generateBatch(requests, pool);
    }

    finishReport(report, partitioned, generator, pool, watch, cost0,
                 calls0, hits0);
    return report;
}

} // namespace paqoc
