#include "paqoc/compiler.h"

#include "common/stopwatch.h"
#include "paqoc/esp.h"
#include "paqoc/latency_oracle.h"

namespace paqoc {

namespace {

/** Fill the generator-delta and pulse-pass fields of a report. */
void
finishReport(CompileReport &report, const Circuit &final_circuit,
             PulseGenerator &generator, const Stopwatch &watch,
             double cost_before, std::size_t calls_before,
             std::size_t hits_before)
{
    const CircuitPulses pulses =
        generateCircuitPulses(final_circuit, generator);
    report.circuit = final_circuit;
    report.latency = pulses.makespan;
    report.esp = pulses.esp;
    report.finalGateCount = static_cast<int>(final_circuit.size());
    report.wallSeconds = watch.seconds();
    report.costUnits = generator.totalCostUnits() - cost_before;
    report.pulseCalls = generator.generateCalls() - calls_before;
    report.cacheHits = generator.cacheHits() - hits_before;
}

} // namespace

CompileReport
compilePaqoc(const Circuit &physical, PulseGenerator &generator,
             const PaqocOptions &options)
{
    CompileReport report;
    const Stopwatch watch;
    const double cost0 = generator.totalCostUnits();
    const std::size_t calls0 = generator.generateCalls();
    const std::size_t hits0 = generator.cacheHits();

    Circuit working = physical;

    // Stage 1: frequent subcircuits miner + APA-basis rewriting, with
    // the Section V-C guarantee that substitution never lengthens the
    // critical path under the generator's latency estimates.
    if (options.apaM != 0 || options.tuned) {
        report.patterns =
            mineFrequentSubcircuits(physical, options.miner);
        LatencyOracle oracle(generator);
        const LatencyFn lat_fn = [&](const Gate &g) {
            return oracle(g);
        };
        ApaRewriteResult apa = applyApaBasis(
            physical, report.patterns, options.apaM, options.tuned,
            &lat_fn);
        report.apaKinds = apa.apaGatesUsed;
        report.apaUses = apa.apaUseCount;
        report.gatesCovered = apa.gatesCovered;
        working = std::move(apa.circuit);
    }

    // Stage 2: criticality-aware customized gates generator.
    if (options.enableMerger) {
        MergeResult merged =
            mergeCustomizedGates(working, generator, options.merge);
        report.merges = merged.stats.mergesApplied;
        working = std::move(merged.circuit);
    }

    // Stage 3: control pulses generator + ESP.
    finishReport(report, working, generator, watch, cost0, calls0,
                 hits0);
    return report;
}

CompileReport
compileAccqoc(const Circuit &physical, PulseGenerator &generator,
              const AccqocOptions &options)
{
    CompileReport report;
    const Stopwatch watch;
    const double cost0 = generator.totalCostUnits();
    const std::size_t calls0 = generator.generateCalls();
    const std::size_t hits0 = generator.cacheHits();

    LatencyOracle oracle(generator);
    const LatencyFn lat_fn = [&](const Gate &g) { return oracle(g); };
    const Circuit partitioned =
        accqocPartition(physical, options, &lat_fn);

    // Generate pulses for distinct subcircuits in MST-similarity
    // order so each GRAPE run warm-starts from a close neighbor.
    for (std::size_t idx : similarityMstOrder(partitioned)) {
        const Gate &g = partitioned.gate(idx);
        generator.generate(g.unitary(), g.arity());
    }

    finishReport(report, partitioned, generator, watch, cost0, calls0,
                 hits0);
    return report;
}

} // namespace paqoc
