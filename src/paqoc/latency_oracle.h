#ifndef PAQOC_PAQOC_LATENCY_ORACLE_H_
#define PAQOC_PAQOC_LATENCY_ORACLE_H_

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "circuit/gate.h"
#include "qoc/pulse_generator.h"

namespace paqoc {

/**
 * Memoized gate-latency lookup used by the compiler passes. Primitive
 * gates key on (op, angle); custom gates key on the address of their
 * shared unitary, which is stable across circuit copies, so the memo
 * survives the rebuild-after-merge cycle of Algorithm 1.
 *
 * Each memoized entry pins shared ownership of its unitary: merge
 * cycles constantly free candidate matrices, and without the pin the
 * allocator could hand a dead key's address to a *different* unitary,
 * silently serving it a stale latency. (That ABA reuse made compile
 * results depend on allocation history -- the same circuit compiled
 * twice in one process could rank merges differently.)
 */
class LatencyOracle
{
  public:
    explicit LatencyOracle(PulseGenerator &generator)
        : generator_(generator)
    {}

    double
    operator()(const Gate &g)
    {
        if (g.isCustom()) {
            const void *key = &g.customUnitary();
            const auto it = custom_.find(key);
            if (it != custom_.end())
                return it->second.latency;
            // Clamp to the stitched-pulse fallback (Observation 1).
            const double lat = std::min(
                generator_.estimateLatency(g.customUnitary(),
                                           g.arity()),
                g.latencyCap());
            custom_.emplace(key,
                            CustomEntry{g.customUnitaryShared(), lat});
            return lat;
        }
        const auto key = std::make_pair(static_cast<int>(g.op()),
                                        g.angle());
        const auto it = primitive_.find(key);
        if (it != primitive_.end())
            return it->second;
        const double lat =
            generator_.estimateLatency(g.unitary(), g.arity());
        primitive_.emplace(key, lat);
        return lat;
    }

  private:
    struct CustomEntry
    {
        /** Keeps the keyed address alive for the memo's lifetime. */
        std::shared_ptr<const Matrix> pin;
        double latency;
    };

    PulseGenerator &generator_;
    std::unordered_map<const void *, CustomEntry> custom_;
    std::map<std::pair<int, double>, double> primitive_;
};

} // namespace paqoc

#endif // PAQOC_PAQOC_LATENCY_ORACLE_H_
