#include "paqoc/accqoc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "circuit/contract.h"
#include "circuit/dag.h"
#include "common/error.h"
#include "linalg/unitary_util.h"
#include "qoc/pulse_cache.h"

namespace paqoc {

namespace {

/** Open group state of the greedy fixed-size partitioner. */
struct OpenGroup
{
    std::vector<int> gates;
    std::set<int> support;
    /** Per-qubit chain depth inside the group. */
    std::map<int, int> depth;

    int
    maxDepth() const
    {
        int d = 0;
        for (const auto &[q, dq] : depth)
            d = std::max(d, dq);
        return d;
    }
};

} // namespace

Circuit
accqocPartition(const Circuit &circuit, const AccqocOptions &options,
                const LatencyFn *latency)
{
    PAQOC_FATAL_IF(options.maxN < 1 || options.depth < 1,
                   "bad AccQOC options");

    // Greedy program-order sweep. open_of[q] is the open group owning
    // physical qubit q, or -1. A gate joins a group only if all its
    // claimed qubits belong to that one group and size/depth limits
    // hold; otherwise the touched groups close and a fresh one opens.
    std::vector<OpenGroup> groups;
    std::vector<int> open_of(static_cast<std::size_t>(
                                 circuit.numQubits()), -1);
    std::vector<int> group_id_of_gate(circuit.size(), -1);

    auto close_group = [&](int gid) {
        for (int q : groups[static_cast<std::size_t>(gid)].support) {
            if (open_of[static_cast<std::size_t>(q)] == gid)
                open_of[static_cast<std::size_t>(q)] = -1;
        }
    };

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        std::set<int> claimed;
        for (int q : g.qubits()) {
            const int gid = open_of[static_cast<std::size_t>(q)];
            if (gid >= 0)
                claimed.insert(gid);
        }

        int target = -1;
        if (claimed.size() == 1) {
            const int gid = *claimed.begin();
            OpenGroup &grp = groups[static_cast<std::size_t>(gid)];
            std::set<int> new_support = grp.support;
            new_support.insert(g.qubits().begin(), g.qubits().end());
            int gate_depth = 0;
            for (int q : g.qubits()) {
                const auto it = grp.depth.find(q);
                gate_depth = std::max(gate_depth,
                                      it == grp.depth.end() ? 0
                                                            : it->second);
            }
            if (static_cast<int>(new_support.size()) <= options.maxN
                && gate_depth + 1 <= options.depth) {
                target = gid;
            }
        }

        if (target < 0) {
            for (int gid : claimed)
                close_group(gid);
            target = static_cast<int>(groups.size());
            groups.emplace_back();
        }

        OpenGroup &grp = groups[static_cast<std::size_t>(target)];
        int gate_depth = 0;
        for (int q : g.qubits()) {
            const auto it = grp.depth.find(q);
            gate_depth = std::max(gate_depth,
                                  it == grp.depth.end() ? 0 : it->second);
        }
        grp.gates.push_back(static_cast<int>(i));
        grp.support.insert(g.qubits().begin(), g.qubits().end());
        for (int q : g.qubits()) {
            grp.depth[q] = gate_depth + 1;
            open_of[static_cast<std::size_t>(q)] = target;
        }
        group_id_of_gate[i] = target;
    }

    // Contract each multi-gate group into one customized gate.
    const Dag dag = buildDag(circuit);
    GroupContraction gc(circuit, dag);
    for (const OpenGroup &grp : groups) {
        if (grp.gates.size() < 2)
            continue;
        const bool ok = gc.tryMerge(grp.gates);
        PAQOC_ASSERT(ok, "AccQOC greedy group was not contractible");
    }
    return gc.emit([&](const std::vector<int> &members) {
        std::vector<Gate> gates;
        int absorbed = 0;
        double cap = 0.0;
        for (int m : members) {
            gates.push_back(circuit.gate(static_cast<std::size_t>(m)));
            absorbed += gates.back().absorbedCount();
            if (latency != nullptr)
                cap += (*latency)(gates.back());
        }
        const SubcircuitUnitary sub = subcircuitUnitary(gates);
        return Gate::custom("blk", sub.qubits, sub.matrix, absorbed,
                            latency != nullptr
                                ? cap
                                : std::numeric_limits<
                                      double>::infinity());
    });
}

std::vector<std::size_t>
similarityMstOrder(const Circuit &circuit)
{
    return similarityMstTree(circuit).order;
}

SimilarityMstTree
similarityMstTree(const Circuit &circuit)
{
    // Representatives: first occurrence of each canonical unitary.
    std::vector<std::size_t> reps;
    std::vector<Matrix> unitaries;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        const Matrix u = g.unitary();
        const std::string key = PulseCache::canonicalKey(u, g.arity());
        if (seen.insert(key).second) {
            reps.push_back(i);
            unitaries.push_back(u);
        }
    }
    const std::size_t n = reps.size();
    SimilarityMstTree tree;
    if (n <= 2) {
        tree.order = reps;
        for (std::size_t k = 0; k < n; ++k)
            tree.parent.push_back(k == 0 ? -1 : 0);
        return tree;
    }

    // Prim's MST over the similarity graph; emit nodes in the order
    // they join the tree so every pulse generation has a near neighbor
    // already in the cache. Pairs of unequal dimension are infinitely
    // far apart.
    std::vector<char> in_tree(n, 0);
    std::vector<double> best(n, std::numeric_limits<double>::infinity());
    // Position in tree.order of the in-tree node realizing best[j].
    std::vector<int> best_from(n, -1);
    tree.order.reserve(n);
    tree.parent.reserve(n);
    std::size_t cur = 0;
    in_tree[0] = 1;
    tree.order.push_back(reps[0]);
    tree.parent.push_back(-1);
    for (std::size_t added = 1; added < n; ++added) {
        const int cur_pos = static_cast<int>(added) - 1;
        for (std::size_t j = 0; j < n; ++j) {
            if (in_tree[j])
                continue;
            const double d =
                unitaries[cur].rows() == unitaries[j].rows()
                    ? phaseInvariantDistance(unitaries[cur],
                                             unitaries[j])
                    : std::numeric_limits<double>::infinity();
            if (d < best[j]) {
                best[j] = d;
                best_from[j] = cur_pos;
            }
        }
        std::size_t pick = 0;
        double pick_d = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < n; ++j) {
            if (!in_tree[j] && best[j] <= pick_d) {
                pick_d = best[j];
                pick = j;
            }
        }
        in_tree[pick] = 1;
        tree.order.push_back(reps[pick]);
        // An unreachable pick (infinite distance, e.g. the first node
        // of a new dimension class) roots a fresh subtree.
        tree.parent.push_back(
            std::isinf(best[pick]) ? -1 : best_from[pick]);
        cur = pick;
    }
    return tree;
}

} // namespace paqoc
