#ifndef PAQOC_PAQOC_COMPILER_H_
#define PAQOC_PAQOC_COMPILER_H_

#include <vector>

#include "circuit/circuit.h"
#include "mining/miner.h"
#include "paqoc/accqoc.h"
#include "paqoc/merge_engine.h"
#include "qoc/pulse_generator.h"

namespace paqoc {

/** Configuration of one PAQOC compilation (Fig. 7). */
struct PaqocOptions
{
    /**
     * Number of APA-basis gate kinds (the paper's M): 0 disables the
     * miner (paqoc(M=0)), a negative value means M = inf, positive
     * values cap the APA set size.
     */
    int apaM = 0;
    /** paqoc(M=tuned): smallest M making APA uses the majority. */
    bool tuned = false;
    /** Enable the criticality-aware customized gates generator. */
    bool enableMerger = true;
    /**
     * Worker threads of the pulse-generation engine: 0 uses the
     * process-wide pool (hardware concurrency), 1 forces the serial
     * path, >= 2 runs on a private pool of that size. Reports are
     * bit-identical for every setting.
     */
    int threads = 0;
    MinerOptions miner;
    MergeOptions merge;
};

/** Everything the evaluation harnesses need from one compilation. */
struct CompileReport
{
    /** The final customized-gate circuit. */
    Circuit circuit{1};
    /** Whole-circuit pulse latency in dt (ASAP makespan). */
    double latency = 0.0;
    /** Estimated success probability, Eq. (2). */
    double esp = 1.0;
    /** Wall-clock compilation seconds. */
    double wallSeconds = 0.0;
    /** Modeled compilation cost in GRAPE-work units. */
    double costUnits = 0.0;
    /** Pulse-generation calls / cache hits during this compile. */
    std::size_t pulseCalls = 0;
    std::size_t cacheHits = 0;
    /** APA statistics (zero when the miner is disabled). */
    int apaKinds = 0;
    int apaUses = 0;
    int gatesCovered = 0;
    /** Customized-gate merges applied by the merge engine. */
    int merges = 0;
    /** Gate count of the final circuit. */
    int finalGateCount = 0;
    /** Patterns mined (empty when the miner is disabled). */
    std::vector<MinedPattern> patterns;
};

/**
 * Full PAQOC pipeline: frequent-subcircuit mining + APA rewriting
 * (subject to the M knob), criticality-aware customized gate
 * generation, and the final pulse pass with ESP evaluation.
 */
CompileReport compilePaqoc(const Circuit &physical,
                           PulseGenerator &generator,
                           const PaqocOptions &options = {});

/** The AccQOC baseline pipeline at a given depth limit. */
CompileReport compileAccqoc(const Circuit &physical,
                            PulseGenerator &generator,
                            const AccqocOptions &options = {});

} // namespace paqoc

#endif // PAQOC_PAQOC_COMPILER_H_
