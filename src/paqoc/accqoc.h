#ifndef PAQOC_PAQOC_ACCQOC_H_
#define PAQOC_PAQOC_ACCQOC_H_

#include "circuit/circuit.h"
#include "circuit/schedule.h"
#include "qoc/pulse_generator.h"

namespace paqoc {

/** Knobs of the AccQOC baseline [Cheng, Deng, Qian ISCA'20]. */
struct AccqocOptions
{
    /** Maximum qubits per fixed-size subcircuit (extended to 3). */
    int maxN = 3;
    /** Maximum depth of each subcircuit (the paper uses 3 and 5). */
    int depth = 3;
    /** Pulse-engine threads; same semantics as PaqocOptions::threads. */
    int threads = 0;
};

/**
 * The AccQOC baseline: greedily partition the physical circuit into
 * fixed-size subcircuits of at most maxN qubits and bounded depth,
 * then generate a pulse per subcircuit, ordering generation along a
 * minimum-spanning tree of the pairwise unitary-similarity graph so
 * that each GRAPE run can warm-start from its MST parent.
 *
 * accqoc_n3d3 / accqoc_n3d5 of the evaluation are this with depth
 * 3 / 5.
 *
 * @param latency Optional latency oracle; when given, merged blocks
 *        carry the stitched-pulse latency cap, same as PAQOC's merged
 *        gates, so the two compilers are compared fairly.
 */
Circuit accqocPartition(const Circuit &circuit,
                        const AccqocOptions &options = {},
                        const LatencyFn *latency = nullptr);

/**
 * MST-based generation order over the distinct unitaries of a
 * partitioned circuit (indices into `circuit.gates()`, covering one
 * representative per distinct unitary first, cache-served repeats
 * excluded). Exposed for tests; compileAccqoc uses it internally.
 */
std::vector<std::size_t> similarityMstOrder(const Circuit &circuit);

/** Similarity MST with its warm-start dependency structure. */
struct SimilarityMstTree
{
    /** Gate indices in the order Prim's algorithm adds them. */
    std::vector<std::size_t> order;
    /**
     * parent[k] is the position (in `order`) of the node order[k]
     * warm-starts from, or -1 for the root. Nodes whose parent sits in
     * an earlier BFS wave can be pulse-generated concurrently: the
     * parent's pulse is already cached when the wave starts.
     */
    std::vector<int> parent;
};

/**
 * similarityMstOrder plus the MST parent of every node; the order is
 * identical to similarityMstOrder's. compileAccqoc walks the tree in
 * breadth-first waves and generates each wave as one parallel batch.
 */
SimilarityMstTree similarityMstTree(const Circuit &circuit);

} // namespace paqoc

#endif // PAQOC_PAQOC_ACCQOC_H_
