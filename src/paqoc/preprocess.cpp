#include "paqoc/preprocess.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "circuit/contract.h"
#include "circuit/dag.h"
#include "common/error.h"

namespace paqoc {

namespace {

/** Emit a merged custom gate from member gate indices. */
Gate
mergeGates(const Circuit &circuit, const std::vector<int> &members,
           const LatencyFn *latency)
{
    std::vector<Gate> gates;
    gates.reserve(members.size());
    int absorbed = 0;
    double cap = 0.0;
    for (int m : members) {
        gates.push_back(circuit.gate(static_cast<std::size_t>(m)));
        absorbed += gates.back().absorbedCount();
        if (latency != nullptr)
            cap += (*latency)(gates.back());
    }
    const SubcircuitUnitary sub = subcircuitUnitary(gates);
    return Gate::custom("grp", sub.qubits, sub.matrix, absorbed,
                        latency != nullptr
                            ? cap
                            : std::numeric_limits<double>::infinity());
}

/** One fixpoint sweep; returns the (possibly) reduced circuit. */
Circuit
sweep(const Circuit &circuit, int max_qubits, const LatencyFn *latency,
      bool &changed)
{
    const Dag dag = buildDag(circuit);
    GroupContraction gc(circuit, dag);

    // Track each group's qubit support, members, and modeled latency
    // as merges accumulate, keyed by group id (group ids change on
    // merge; stale ids are simply never queried again because
    // groupOf() always returns the live id).
    std::map<int, std::set<int>> support;
    std::map<int, std::vector<int>> members;
    std::map<int, double> group_latency;
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        const int gid = gc.groupOf(static_cast<int>(i));
        support[gid] =
            std::set<int>(g.qubits().begin(), g.qubits().end());
        members[gid] = {static_cast<int>(i)};
        if (latency != nullptr)
            group_latency[gid] = (*latency)(g);
    }

    changed = false;
    for (std::size_t u = 0; u < circuit.size(); ++u) {
        for (int v : dag.succs[u]) {
            const int gu = gc.groupOf(static_cast<int>(u));
            const int gv = gc.groupOf(v);
            if (gu == gv)
                continue;
            const std::set<int> &su = support.at(gu);
            const std::set<int> &sv = support.at(gv);
            // Merge only when one support contains the other
            // (Observation 1: same effective width after merging).
            const bool u_covers =
                std::includes(su.begin(), su.end(), sv.begin(),
                              sv.end());
            const bool v_covers =
                std::includes(sv.begin(), sv.end(), su.begin(),
                              su.end());
            if (!u_covers && !v_covers)
                continue;
            const std::set<int> &merged = u_covers ? su : sv;
            if (static_cast<int>(merged.size()) > max_qubits)
                continue;

            std::vector<int> joint = members.at(gu);
            joint.insert(joint.end(), members.at(gv).begin(),
                         members.at(gv).end());
            std::sort(joint.begin(), joint.end());

            std::set<int> merged_copy = merged;
            const double joint_latency = latency != nullptr
                ? group_latency.at(gu) + group_latency.at(gv)
                : 0.0;
            if (!gc.tryMerge({static_cast<int>(u), v}))
                continue;
            changed = true;
            const int gid = gc.groupOf(static_cast<int>(u));
            support[gid] = std::move(merged_copy);
            members[gid] = std::move(joint);
            if (latency != nullptr)
                group_latency[gid] = joint_latency;
        }
    }
    if (!changed)
        return circuit;
    return gc.emit([&](const std::vector<int> &group) {
        return mergeGates(circuit, group, latency);
    });
}

} // namespace

Circuit
preprocessMergeNestedSupport(const Circuit &circuit, int max_qubits,
                             const LatencyFn *latency)
{
    PAQOC_FATAL_IF(max_qubits < 1, "max_qubits must be positive");
    Circuit cur = circuit;
    bool changed = true;
    // Each sweep strictly reduces the gate count when it changes, so
    // this terminates after at most size() sweeps.
    while (changed && cur.size() > 1)
        cur = sweep(cur, max_qubits, latency, changed);
    return cur;
}

} // namespace paqoc
