#ifndef PAQOC_PAQOC_MERGE_ENGINE_H_
#define PAQOC_PAQOC_MERGE_ENGINE_H_

#include "circuit/circuit.h"
#include "qoc/pulse_generator.h"

namespace paqoc {

/** Knobs of the criticality-aware customized-gates generator. */
struct MergeOptions
{
    /** Maximum qubits in a customized gate (the paper's maxN). */
    int maxN = 3;
    /** Customized gates generated per iteration (the paper's top-k). */
    int topK = 1;
    /** Enable Observation-1 nested-support preprocessing. */
    bool preprocess = true;
    /** Enable Case-III pruning (skip fully non-critical candidates). */
    bool criticalityPrune = true;
    /**
     * Schedule and merge against the commutation-relaxed DAG
     * (commutativity-aware instruction aggregation, the future-work
     * extension of Section VII / Shi et al. [43]).
     */
    bool commutativityAware = false;
    /**
     * Fallback attempts per iteration when the batched top-k commit
     * fails to improve the true makespan.
     */
    int fallbackAttempts = 25;
};

/** Statistics of one merge-engine run. */
struct MergeStats
{
    int iterations = 0;
    int mergesApplied = 0;
    int candidatesScored = 0;
    int candidatesPruned = 0;
    double initialMakespan = 0.0;
    double finalMakespan = 0.0;
};

/** Output of the customized-gates generator. */
struct MergeResult
{
    Circuit circuit{1};
    MergeStats stats;
};

/**
 * Algorithm 1 of the paper: iteratively merge dependence-adjacent gate
 * pairs into customized gates, ranked by the criticality-aware
 * analytical model (Cases I/II of Section V-A, Case III pruned), with
 * a strict monotone-makespan guarantee -- a merge only commits when
 * the rescheduled circuit is strictly faster under the generator's
 * latency estimates.
 */
MergeResult mergeCustomizedGates(const Circuit &circuit,
                                 PulseGenerator &generator,
                                 const MergeOptions &options = {});

} // namespace paqoc

#endif // PAQOC_PAQOC_MERGE_ENGINE_H_
