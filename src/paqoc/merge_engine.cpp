#include "paqoc/merge_engine.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "circuit/commute.h"
#include "circuit/contract.h"
#include "circuit/dag.h"
#include "circuit/schedule.h"
#include "common/error.h"
#include "paqoc/latency_oracle.h"
#include "paqoc/preprocess.h"

namespace paqoc {

namespace {

/** A scored merge candidate: the DAG edge (u, v). */
struct Candidate
{
    int u = 0;
    int v = 0;
    double score = 0.0;
};

/**
 * Stable identity string of a gate for cross-iteration memoization:
 * custom gates key on their shared unitary's address (stable across
 * circuit copies), primitives on (op, angle).
 */
std::string
gateKey(const Gate &g)
{
    if (g.isCustom()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "c%p", // NOLINT
                      static_cast<const void *>(&g.customUnitary()));
        return buf;
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "p%d:%.12g",
                  static_cast<int>(g.op()), g.angle());
    return buf;
}

/** Qubit support union size of two gates. */
int
unionSupport(const Gate &a, const Gate &b, std::vector<int> *out = nullptr)
{
    std::set<int> s(a.qubits().begin(), a.qubits().end());
    s.insert(b.qubits().begin(), b.qubits().end());
    if (out != nullptr)
        out->assign(s.begin(), s.end());
    return static_cast<int>(s.size());
}

/** Merged custom gate from member gates, capped by their sum. */
Gate
mergePair(const Circuit &circuit, const std::vector<int> &members,
          const LatencyFn &latency)
{
    std::vector<Gate> gates;
    int absorbed = 0;
    double cap = 0.0;
    for (int m : members) {
        gates.push_back(circuit.gate(static_cast<std::size_t>(m)));
        absorbed += gates.back().absorbedCount();
        cap += latency(gates.back());
    }
    const SubcircuitUnitary sub = subcircuitUnitary(gates);
    return Gate::custom("merged", sub.qubits, sub.matrix, absorbed,
                        cap);
}

/**
 * Local makespan-delta estimate for merging DAG edge (u, v), following
 * the paper's Case I/II analysis: compare the longest path through the
 * pair before and after the merge, with the merged latency taken from
 * Observation 2's width average when the merge widens the gate and
 * from the analytical model otherwise.
 */
double
scoreCandidate(const Circuit &circuit, const Dag &dag, const Schedule &s,
               int u, int v, PulseGenerator &generator,
               std::map<std::string, double> &pair_memo)
{
    const Gate &gu = circuit.gate(static_cast<std::size_t>(u));
    const Gate &gv = circuit.gate(static_cast<std::size_t>(v));
    const auto su = static_cast<std::size_t>(u);
    const auto sv = static_cast<std::size_t>(v);

    const int width = unionSupport(gu, gv);
    double merged_latency;
    if (width > std::max(gu.arity(), gv.arity())) {
        // Widening merge: approximate with the width-average latency
        // (Observation 2) -- no pulse generation needed.
        merged_latency = generator.averageLatency(width);
    } else {
        // Same-width merge: the merged unitary is cheap to form; ask
        // the analytical model (Observation 1 guarantees <= sum).
        // Memoized across iterations -- most candidate pairs persist.
        const std::string memo_key = gateKey(gu) + "|" + gateKey(gv);
        const auto it = pair_memo.find(memo_key);
        if (it != pair_memo.end()) {
            merged_latency = it->second;
        } else {
            const SubcircuitUnitary sub = subcircuitUnitary({gu, gv});
            merged_latency =
                generator.estimateLatency(sub.matrix, width);
            pair_memo.emplace(memo_key, merged_latency);
        }
    }

    // Stitched-pulse fallback caps the merged estimate (Observation 1).
    merged_latency =
        std::min(merged_latency, s.latency[su] + s.latency[sv]);

    // Longest path through the pair before the merge.
    const double old_through =
        std::max(s.start[su] + s.latency[su] + s.cpAfter[su],
                 s.start[sv] + s.latency[sv] + s.cpAfter[sv]);

    // After the merge the joint gate starts once all external preds of
    // both gates finish...
    double new_start = s.start[su];
    for (int p : dag.preds[sv]) {
        if (p != u)
            new_start = std::max(new_start,
                                 s.finish[static_cast<std::size_t>(p)]);
    }
    // ...and is followed by the worst external successor path.
    double new_after = s.cpAfter[sv];
    for (int w : dag.succs[su]) {
        if (w == v)
            continue;
        const auto sw = static_cast<std::size_t>(w);
        new_after = std::max(new_after, s.latency[sw] + s.cpAfter[sw]);
    }
    const double new_through = new_start + merged_latency + new_after;
    return old_through - new_through;
}

} // namespace

MergeResult
mergeCustomizedGates(const Circuit &circuit, PulseGenerator &generator,
                     const MergeOptions &options)
{
    PAQOC_FATAL_IF(options.maxN < 1, "maxN must be positive");
    PAQOC_FATAL_IF(options.topK < 1, "topK must be positive");

    LatencyOracle latency(generator);
    const LatencyFn lat_fn = [&](const Gate &g) { return latency(g); };
    std::map<std::string, double> pair_memo;


    // Preprocessing merges only nested-support (same effective width)
    // runs, which Observation 1 certifies; no latency check needed.
    MergeResult result;
    Circuit cur = options.preprocess
        ? preprocessMergeNestedSupport(circuit, options.maxN, &lat_fn)
        : circuit;

    {
        const Schedule s0 = computeSchedule(cur, lat_fn);
        result.stats.initialMakespan = s0.makespan;
    }

    const double eps = 1e-9;
    while (true) {
        ++result.stats.iterations;
        // Scheduling stays on the plain DAG (commuting gates still
        // contend for their qubits); the relaxed DAG only widens the
        // merge search: its contraction validity allows sliding
        // commuting gates out of the way, and same-run commuting
        // pairs become candidates too.
        const Dag dag = buildDag(cur);
        const Schedule sched = computeSchedule(cur, dag, lat_fn);
        const Dag relaxed = options.commutativityAware
            ? buildCommutationDag(cur)
            : Dag{};
        const Dag &contract_dag =
            options.commutativityAware ? relaxed : dag;

        // Gather and rank candidates: two-gate grouping over plain DAG
        // edges, plus (when commutativity-aware) same-run commuting
        // pairs that can be slid adjacent.
        std::vector<std::pair<int, int>> pair_pool;
        for (std::size_t u = 0; u < cur.size(); ++u)
            for (int v : dag.succs[u])
                pair_pool.emplace_back(static_cast<int>(u), v);
        if (options.commutativityAware) {
            for (const auto &p : commutingAdjacentPairs(cur))
                pair_pool.push_back(p);
        }

        std::vector<Candidate> candidates;
        for (const auto &[ui, v] : pair_pool) {
            const auto u = static_cast<std::size_t>(ui);
            const Gate &gu = cur.gate(u);
            const Gate &gv = cur.gate(static_cast<std::size_t>(v));
            if (unionSupport(gu, gv) > options.maxN)
                continue;
            if (options.criticalityPrune && !sched.onCriticalPath[u]
                && !sched.onCriticalPath[static_cast<std::size_t>(v)]) {
                ++result.stats.candidatesPruned;
                continue; // Case III
            }
            // A pair contraction is invalid when a dependence path
            // leaves u and re-enters at v around the pair.
            bool indirect = false;
            for (int w : contract_dag.succs[u]) {
                if (w != v && contract_dag.reaches(w, v)) {
                    indirect = true;
                    break;
                }
            }
            if (indirect)
                continue;
            Candidate c;
            c.u = ui;
            c.v = v;
            c.score = scoreCandidate(cur, dag, sched, ui, v, generator,
                                     pair_memo);
            ++result.stats.candidatesScored;
            if (c.score > eps)
                candidates.push_back(c);
        }
        if (candidates.empty())
            break;
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.score != b.score)
                          return a.score > b.score;
                      return std::make_pair(a.u, a.v)
                          < std::make_pair(b.u, b.v);
                  });

        // Apply up to top-k disjoint candidates in one contraction,
        // then verify the true makespan improved.
        struct Batch
        {
            Circuit circuit{1};
            int applied = 0;
        };
        auto applyBatch = [&](int batch) -> std::optional<Batch> {
            GroupContraction gc(cur, contract_dag);
            std::set<int> used;
            int applied = 0;
            for (const Candidate &c : candidates) {
                if (applied >= batch)
                    break;
                if (used.count(c.u) || used.count(c.v))
                    continue; // no longer valid this iteration
                if (!gc.tryMerge({c.u, c.v}))
                    continue;
                used.insert(c.u);
                used.insert(c.v);
                ++applied;
            }
            if (applied == 0)
                return std::nullopt;
            Batch b;
            b.applied = applied;
            b.circuit = gc.emit([&](const std::vector<int> &m) {
                return mergePair(cur, m, lat_fn);
            });
            const Schedule ts = computeSchedule(b.circuit, lat_fn);
            // Non-increase acceptance: each committed merge shrinks
            // the gate count and (by positive score) some through-path
            // even when parallel branches pin the global makespan --
            // symmetric circuits need many merges before the makespan
            // itself moves. Still monotone, still terminating.
            if (ts.makespan <= sched.makespan + eps)
                return b;
            return std::nullopt;
        };

        std::optional<Batch> next = applyBatch(options.topK);
        if (!next && options.topK > 1)
            next = applyBatch(1);
        if (!next) {
            // The best candidate's local estimate was optimistic; walk
            // down the list trying single merges before giving up.
            int attempts = 0;
            for (std::size_t skip = 1;
                 skip < candidates.size()
                 && attempts < options.fallbackAttempts;
                 ++skip, ++attempts) {
                GroupContraction gc(cur, contract_dag);
                const Candidate &c = candidates[skip];
                if (!gc.tryMerge({c.u, c.v}))
                    continue;
                Circuit trial = gc.emit(
                    [&](const std::vector<int> &m) {
                        return mergePair(cur, m, lat_fn);
                    });
                const Schedule ts = computeSchedule(trial, lat_fn);
                if (ts.makespan <= sched.makespan + eps) {
                    Batch b;
                    b.applied = 1;
                    b.circuit = std::move(trial);
                    next = std::move(b);
                    break;
                }
            }
        }
        if (!next)
            break;
        cur = std::move(next->circuit);
        result.stats.mergesApplied += next->applied;
    }

    const Schedule final_sched = computeSchedule(cur, lat_fn);
    result.stats.finalMakespan = final_sched.makespan;
    result.circuit = std::move(cur);
    return result;
}

} // namespace paqoc
