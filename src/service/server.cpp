#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "fleet/endpoint.h"
#include "fleet/fdpass.h"
#include "fleet/tenant.h"
#include "service/protocol.h"

namespace paqoc {

namespace {

void
writeResponse(const std::shared_ptr<Mutex> &write_mutex, int fd,
              Json response, const Json &id)
{
    if (!id.isNull())
        response.set("id", id);
    const std::string text = response.dump();
    // server.response: the daemon "dies" right before answering --
    // the socket is severed without a byte of this frame, exactly
    // what a crash between compute and reply looks like to a client.
    if (failpoint::evaluate("server.response").action
        != failpoint::Action::Off) {
        ::shutdown(fd, SHUT_RDWR);
        return;
    }
    try {
        MutexLock lock(*write_mutex);
        protocol::writeFrame(fd, text);
    } catch (const std::exception &) {
        // The peer died mid-response (EPIPE via MSG_NOSIGNAL, reset,
        // or an injected protocol.write failure). The connection is
        // beyond saving; the daemon is not. Sever it outright: a
        // partially written frame would leave the client blocked on
        // the missing bytes, whereas a closed socket makes it
        // reconnect and resend from its buffered request copy.
        ::shutdown(fd, SHUT_RDWR);
    }
}

/** True when a handled response carries the structured quota error. */
bool
isQuotaExceeded(const Json &response)
{
    return response.isObject() && response.contains("quota_exceeded")
        && response.at("quota_exceeded").isBool()
        && response.at("quota_exceeded").asBool();
}

/** Safe bool member read (non-bool members count as absent). */
bool
boolMember(const Json &request, const std::string &key)
{
    return request.isObject() && request.contains(key)
        && request.at(key).isBool() && request.at(key).asBool();
}

/** Safe numeric member read (non-number members count as absent). */
double
numberMember(const Json &request, const std::string &key)
{
    if (request.isObject() && request.contains(key)
        && request.at(key).isNumber())
        return request.at(key).asNumber();
    return 0.0;
}

/** resolveQuota for one long-valued dimension (0 = unlimited). */
long
resolveCap(long cap, long requested)
{
    if (cap <= 0)
        return requested < 0 ? 0 : requested;
    if (requested <= 0)
        return cap;
    return requested < cap ? requested : cap;
}

double
resolveCapMs(double cap, double requested)
{
    if (cap <= 0.0)
        return requested < 0.0 ? 0.0 : requested;
    if (requested <= 0.0)
        return cap;
    return requested < cap ? requested : cap;
}

/** The iterations a handled response reports as spent. */
double
itersCharged(const Json &response)
{
    if (!response.isObject())
        return 0.0;
    if (response.contains("stats")
        && response.at("stats").isObject())
        return numberMember(response.at("stats"), "iters_charged");
    // quota_exceeded / cancelled responses carry it at the root.
    return numberMember(response, "iters_charged");
}

/** The wire name a cancelled response reports, back to the enum. */
CancelReason
cancelReasonFromName(const std::string &name)
{
    if (name == "deadline_exceeded")
        return CancelReason::DeadlineExceeded;
    if (name == "client_disconnected")
        return CancelReason::ClientDisconnected;
    if (name == "overload_shed")
        return CancelReason::OverloadShed;
    if (name == "shutdown")
        return CancelReason::Shutdown;
    return CancelReason::ExplicitCancel;
}

OverloadController::Options
overloadOptions(const ServerOptions &options)
{
    OverloadController::Options opts;
    opts.targetMs = options.overloadTargetMs;
    opts.brownoutIters = options.overloadBrownoutIters;
    return opts;
}

} // namespace

SocketServer::SocketServer(PulseService &service, ServerOptions options)
    : service_(service), options_(std::move(options)),
      scheduler_(options_.maxQueue), ledger_(options_.tenantBudget),
      overload_(overloadOptions(options_))
{
    if (options_.fairShare)
        scheduler_.enableFairShare(options_.tenantWeights,
                                   options_.fairShareConcurrency);
    if (overload_.enabled())
        scheduler_.setQueueDelayObserver(
            [this](double delay_ms) { overload_.observe(delay_ms); });
}

SocketServer::~SocketServer()
{
    stop();
}

void
SocketServer::start()
{
    if (accept_thread_.joinable())
        return; // already started (run() after an explicit start())
    PAQOC_FATAL_IF(options_.socketPath.empty()
                       && options_.listenHost.empty()
                       && options_.controlFd < 0,
                   "server: no listening endpoint configured");
    if (!options_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        PAQOC_FATAL_IF(
            options_.socketPath.size() >= sizeof addr.sun_path,
            "server: socket path '", options_.socketPath,
            "' too long");
        std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                     sizeof addr.sun_path - 1);

        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        PAQOC_FATAL_IF(listen_fd_ < 0, "server: socket(): ",
                       std::strerror(errno));
        ::unlink(options_.socketPath.c_str());
        PAQOC_FATAL_IF(::bind(listen_fd_,
                              reinterpret_cast<sockaddr *>(&addr),
                              sizeof addr)
                           != 0,
                       "server: cannot bind '", options_.socketPath,
                       "': ", std::strerror(errno));
        PAQOC_FATAL_IF(::listen(listen_fd_, 64) != 0,
                       "server: listen(): ", std::strerror(errno));
    }
    if (!options_.listenHost.empty()) {
        std::string error;
        tcp_fd_ = fleet::listenTcp(options_.listenHost,
                                   options_.listenPort, 64, &error,
                                   &tcp_port_);
        PAQOC_FATAL_IF(tcp_fd_ < 0, "server: ", error);
    }
    accept_thread_ = std::thread([this]() { acceptLoop(); });
}

void
SocketServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd fds[3];
        int sources[3];
        nfds_t n = 0;
        if (listen_fd_ >= 0) {
            fds[n] = {listen_fd_, POLLIN, 0};
            sources[n++] = 0;
        }
        if (tcp_fd_ >= 0) {
            fds[n] = {tcp_fd_, POLLIN, 0};
            sources[n++] = 1;
        }
        if (options_.controlFd >= 0) {
            fds[n] = {options_.controlFd, POLLIN, 0};
            sources[n++] = 2;
        }
        const int r = ::poll(fds, n, 200);
        if (r <= 0)
            continue; // timeout (re-check stop flag) or EINTR
        for (nfds_t i = 0; i < n; ++i) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            if (sources[i] == 2) {
                // Fleet worker: the router hands us accepted
                // connections; EOF means the router is gone.
                const int fd = fleet::recvFd(options_.controlFd);
                if (fd < 0) {
                    requestStop();
                    return;
                }
                adoptConnection(fd);
            } else {
                const int fd = ::accept(fds[i].fd, nullptr, nullptr);
                if (fd >= 0)
                    adoptConnection(fd);
            }
        }
    }
}

void
SocketServer::adoptConnection(int fd)
{
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
        MutexLock lock(mutex_);
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        connections_.push_back(conn);
    }
    conn->thread =
        std::thread([this, conn]() { serveConnection(conn); });
}

void
SocketServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    std::string text;
    try {
        while (protocol::readFrame(conn->fd, text))
            dispatchFrame(conn, text);
    } catch (const std::exception &) {
        // Torn frame or dropped peer: the connection dies, the
        // server lives on.
    }
    // The client is gone; nobody will read the answers. Trip this
    // connection's in-flight work so orphaned derivations stop at
    // their next poll instead of burning the pool (DESIGN.md §15).
    // Harmless during shutdown: stop() drains before severing, so
    // nothing is left to trip.
    if (options_.cancelOnDisconnect)
        cancelConnection(conn.get());
}

std::uint64_t
SocketServer::registerInflight(const Json &id, const void *conn,
                               const CancelSource &source)
{
    MutexLock lock(cancelMutex_);
    const std::uint64_t seq = ++inflight_seq_;
    inflight_.emplace(
        seq,
        Inflight{id.isNull() ? std::string() : id.dump(), conn,
                 source});
    return seq;
}

void
SocketServer::unregisterInflight(std::uint64_t seq)
{
    MutexLock lock(cancelMutex_);
    inflight_.erase(seq);
}

bool
SocketServer::cancelById(const Json &target, CancelReason why)
{
    const std::string key = target.dump();
    MutexLock lock(cancelMutex_);
    bool found = false;
    for (const auto &entry : inflight_) {
        if (!entry.second.idKey.empty() && entry.second.idKey == key) {
            entry.second.source.cancel(why);
            found = true;
        }
    }
    return found;
}

void
SocketServer::cancelConnection(const void *conn)
{
    MutexLock lock(cancelMutex_);
    for (const auto &entry : inflight_)
        if (entry.second.conn == conn)
            entry.second.source.cancel(
                CancelReason::ClientDisconnected);
}

Json
SocketServer::augmentStats(Json response)
{
    if (!response.get("ok", Json(false)).isBool()
        || !response.at("ok").asBool())
        return response;
    const SessionScheduler::Stats st = scheduler_.stats();
    Json sched = Json::object();
    sched.set("accepted", Json(st.accepted));
    sched.set("rejected", Json(st.rejected));
    sched.set("completed", Json(st.completed));
    sched.set("expired", Json(st.expired));
    sched.set("in_flight", Json(st.inFlight));
    sched.set("quota_exceeded", Json(st.quotaExceeded));
    sched.set("cancelled", Json(st.cancelled));
    sched.set("expired_running", Json(st.expiredRunning));
    sched.set("shed", Json(st.shed));
    sched.set("brownout", Json(st.brownout));
    Json payload = response.at("payload");
    payload.set("scheduler", std::move(sched));
    if (overload_.enabled()) {
        Json ov = Json::object();
        ov.set("target_ms", Json(options_.overloadTargetMs));
        ov.set("min_delay_ms", Json(overload_.minDelayMs()));
        ov.set("level",
               Json(std::string(
                   OverloadController::levelName(overload_.level()))));
        payload.set("overload", std::move(ov));
    }
    // Per-tenant serving counters (DESIGN.md §12); the map is
    // name-ordered, so the document is deterministic.
    Json tenants = Json::object();
    const auto now = fleet::TenantBudgetLedger::Clock::now();
    for (const auto &entry : scheduler_.tenantStats()) {
        Json t = Json::object();
        t.set("admitted", Json(entry.second.admitted));
        t.set("queued", Json(entry.second.queued));
        t.set("completed", Json(entry.second.completed));
        t.set("expired", Json(entry.second.expired));
        t.set("budget_exhausted",
              Json(entry.second.budgetExhausted));
        t.set("degraded", Json(entry.second.degraded));
        t.set("cancelled", Json(entry.second.cancelled));
        t.set("shed", Json(entry.second.shed));
        t.set("brownout", Json(entry.second.brownout));
        if (options_.tenantBudget.any()) {
            const fleet::TenantBudgetLedger::Spend spend =
                ledger_.windowSpend(entry.first, now);
            t.set("window_iters", Json(spend.iters));
            t.set("window_wall_ms", Json(spend.wallMs));
            t.set("exhausted",
                  Json(ledger_.remaining(entry.first, now)
                           .exhausted));
        }
        tenants.set(entry.first, std::move(t));
    }
    payload.set("tenants", std::move(tenants));
    response.set("payload", std::move(payload));
    return response;
}

void
SocketServer::dispatchFrame(const std::shared_ptr<Connection> &conn,
                            const std::string &text)
{
    // The write mutex is shared with scheduled jobs that may outlive
    // this frame-reading loop's iteration.
    auto write_mutex = std::shared_ptr<Mutex>(conn, &conn->writeMutex);
    const int fd = conn->fd;

    Json request;
    try {
        request = Json::parse(text);
    } catch (const std::exception &e) {
        writeResponse(write_mutex, fd, protocol::errorResponse(e.what()),
                      Json());
        return;
    }
    const Json id = request.get("id", Json());
    const std::string op =
        request.isObject() && request.contains("op")
            && request.at("op").isString()
        ? request.at("op").asString()
        : "";

    // Control-plane ops never queue: they must work under load.
    if (op == "ping" || op == "stats" || op == "shutdown") {
        Json response = service_.handle(request);
        if (op == "stats")
            response = augmentStats(std::move(response));
        writeResponse(write_mutex, fd, std::move(response), id);
        if (service_.shutdownRequested())
            requestStop();
        return;
    }
    if (op == "cancel") {
        // Wire-level cancellation (DESIGN.md §15): trips the in-flight
        // request whose "id" matched target_id, on whatever connection
        // it arrived (a SIGINT'd CLI dials a fresh one). Answered
        // inline -- it must work while the queue is full.
        const Json target = request.get("target_id", Json());
        const bool found =
            !target.isNull()
            && cancelById(target, CancelReason::ExplicitCancel);
        Json response = Json::object();
        response.set("ok", Json(true));
        Json payload = Json::object();
        payload.set("cancelled", Json(found));
        response.set("payload", std::move(payload));
        writeResponse(write_mutex, fd, std::move(response), id);
        return;
    }

    // Data-plane ops go through admission control, billed per tenant.
    const std::string tenant = fleet::tenantFromRequest(request);
    double deadline_ms = options_.defaultDeadlineMs;
    if (request.isObject() && request.contains("deadline_ms"))
        deadline_ms = request.at("deadline_ms").asNumber();
    auto deadline = SessionScheduler::Clock::time_point::max();
    if (deadline_ms > 0.0)
        deadline = SessionScheduler::Clock::now()
            + std::chrono::milliseconds(
                static_cast<long>(deadline_ms));

    // Eagerly purge queued-but-expired jobs: their admission slots
    // free before this request's decision, and their clients get the
    // fast deadline answer without waiting for a worker to pop them.
    scheduler_.sweepExpired();

    // Adaptive overload control (DESIGN.md §15): the windowed-min
    // queue delay selects a ladder rung. Brownout degrades before
    // shedding (goodput stays nonzero); shedding takes over-budget
    // tenants first (fair-share isolation); a shed answer is typed
    // and carries a back-off, never the hot-retry response.
    bool brownout_serve = false;
    if (overload_.enabled()) {
        const OverloadController::Level level = overload_.level();
        bool shed = level == OverloadController::Level::ShedAll;
        if (level == OverloadController::Level::ShedOverBudget) {
            if (options_.tenantBudget.any()
                && ledger_
                       .remaining(
                           tenant,
                           fleet::TenantBudgetLedger::Clock::now())
                       .exhausted)
                shed = true;
            else
                brownout_serve = true;
        } else if (level == OverloadController::Level::Brownout) {
            brownout_serve = true;
        }
        if (shed) {
            scheduler_.noteShed(tenant);
            const double retry = overload_.retryAfterMs();
            writeResponse(
                write_mutex, fd,
                protocol::overloadShedResponse(
                    tenant, retry,
                    "overload_shed: queue delay over target; retry "
                    "after "
                        + std::to_string(static_cast<long>(retry))
                        + " ms"),
                id);
            return;
        }
    }

    // Tenant-budget admission (DESIGN.md §12): an exhausted tenant is
    // refused up front (or served degraded when it opted in); a
    // tenant running low gets its remaining budget injected as the
    // per-request cap, so one request can never overdraw the window
    // by more than the cap granularity.
    Json effective = request;
    bool iters_from_budget = false;
    bool wall_from_budget = false;
    bool degraded_serve = false;
    if (options_.tenantBudget.any() && request.isObject()) {
        const auto now = fleet::TenantBudgetLedger::Clock::now();
        const fleet::TenantBudgetLedger::Remaining rem =
            ledger_.remaining(tenant, now);
        const bool degrade = boolMember(request, "degrade_on_quota");
        if (rem.exhausted && !degrade) {
            scheduler_.noteBudgetExhausted(tenant);
            writeResponse(
                write_mutex, fd,
                protocol::budgetExhaustedResponse(
                    tenant, rem.retryAfterMs,
                    "budget_exhausted: tenant '" + tenant
                        + "' spent its window budget; retry after "
                        + std::to_string(
                            static_cast<long>(rem.retryAfterMs))
                        + " ms"),
                id);
            return;
        }
        degraded_serve = rem.exhausted && degrade;
        const QuotaLimits caps = service_.quotaCaps();
        if (options_.tenantBudget.iters > 0.0) {
            const long without_budget = resolveCap(
                caps.maxIters,
                static_cast<long>(
                    numberMember(request, "max_iters")));
            long budget_cap = degraded_serve
                ? 1
                : static_cast<long>(rem.iters);
            if (budget_cap < 1)
                budget_cap = 1;
            if (without_budget == 0 || budget_cap < without_budget) {
                effective.set("max_iters",
                              Json(static_cast<double>(budget_cap)));
                iters_from_budget = true;
            }
        }
        if (options_.tenantBudget.wallMs > 0.0) {
            const double without_budget = resolveCapMs(
                caps.maxWallMs, numberMember(request, "max_wall_ms"));
            double budget_cap =
                degraded_serve ? 1.0 : rem.wallMs;
            if (budget_cap < 1.0)
                budget_cap = 1.0;
            if (without_budget == 0.0
                || budget_cap < without_budget) {
                effective.set("max_wall_ms", Json(budget_cap));
                wall_from_budget = true;
            }
        }
        if (degraded_serve)
            effective.set("degrade_on_quota", Json(true));
    }

    // Brownout rung: a reduced-iteration degraded pulse through the
    // degrade_on_quota machinery. The injected cap never widens a
    // tighter one already in force.
    if (brownout_serve) {
        effective.set("degrade_on_quota", Json(true));
        const double cap = static_cast<double>(
            options_.overloadBrownoutIters < 1
                ? 1
                : options_.overloadBrownoutIters);
        const double existing = numberMember(effective, "max_iters");
        if (existing <= 0.0 || existing > cap)
            effective.set("max_iters", Json(cap));
    }

    CancelSource source;
    const std::uint64_t reg = registerInflight(id, conn.get(), source);
    const SessionScheduler::Admit admitted = scheduler_.submit(
        tenant,
        [this, write_mutex, fd, effective = std::move(effective), id,
         tenant, iters_from_budget, wall_from_budget, degraded_serve,
         brownout_serve, reg](const CancelToken &cancel) {
            const auto t0 =
                fleet::TenantBudgetLedger::Clock::now();
            Json response = service_.handle(effective, &cancel);
            const auto t1 =
                fleet::TenantBudgetLedger::Clock::now();
            unregisterInflight(reg);
            if (options_.tenantBudget.any()) {
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(t1
                                                              - t0)
                        .count();
                ledger_.charge(tenant, itersCharged(response),
                               wall_ms, t1);
            }
            if (boolMember(response, "cancelled")) {
                const std::string why =
                    response.get("reason", Json("")).isString()
                    ? response.at("reason").asString()
                    : "";
                scheduler_.noteCancelled(tenant,
                                         cancelReasonFromName(why));
            } else if (isQuotaExceeded(response)) {
                const std::string limit =
                    response.get("limit", Json("")).isString()
                    ? response.at("limit").asString()
                    : "";
                const bool budget_trip =
                    (limit == "max_iters" && iters_from_budget)
                    || (limit == "max_wall_ms" && wall_from_budget);
                if (budget_trip) {
                    // The tripped cap was the tenant's remaining
                    // budget, not a per-request limit: report it as
                    // the retryable budget error.
                    const fleet::TenantBudgetLedger::Remaining rem =
                        ledger_.remaining(tenant, t1);
                    response = protocol::budgetExhaustedResponse(
                        tenant, rem.retryAfterMs,
                        "budget_exhausted: tenant '" + tenant
                            + "' spent its window budget mid-"
                              "request; retry after "
                            + std::to_string(static_cast<long>(
                                rem.retryAfterMs))
                            + " ms");
                    scheduler_.noteBudgetExhausted(tenant);
                } else {
                    scheduler_.noteQuotaExceeded();
                }
            } else if (degraded_serve) {
                scheduler_.noteDegraded(tenant);
            } else if (brownout_serve) {
                scheduler_.noteBrownout(tenant);
            }
            writeResponse(write_mutex, fd, std::move(response), id);
        },
        deadline,
        [this, write_mutex, fd, id, reg]() {
            unregisterInflight(reg);
            writeResponse(
                write_mutex, fd,
                protocol::errorResponse(
                    "deadline exceeded while queued"),
                id);
        },
        source);
    if (admitted != SessionScheduler::Admit::Accepted)
        unregisterInflight(reg);
    if (admitted == SessionScheduler::Admit::Overloaded)
        writeResponse(write_mutex, fd, protocol::overloadedResponse(),
                      id);
    else if (admitted == SessionScheduler::Admit::Draining)
        writeResponse(write_mutex, fd,
                      protocol::errorResponse("server is shutting down"),
                      id);
}

void
SocketServer::run()
{
    start();
    {
        MutexLock lock(mutex_);
        while (!stop_requested_)
            stop_cv_.wait(mutex_);
    }
    stop();
}

void
SocketServer::requestStop()
{
    MutexLock lock(mutex_);
    stop_requested_ = true;
    stop_cv_.notify_all();
}

void
SocketServer::stop()
{
    {
        MutexLock lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        stop_requested_ = true;
        stop_cv_.notify_all();
    }
    stopping_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }

    // Let admitted requests finish and write their responses...
    scheduler_.drain();

    // ...then sever the connections so reader threads wind down.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        MutexLock lock(mutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (const auto &conn : conns) {
        if (conn->thread.joinable())
            conn->thread.join();
        ::close(conn->fd);
    }

    service_.persist();
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
}

} // namespace paqoc
