#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "service/protocol.h"

namespace paqoc {

namespace {

void
writeResponse(const std::shared_ptr<Mutex> &write_mutex, int fd,
              Json response, const Json &id)
{
    if (!id.isNull())
        response.set("id", id);
    const std::string text = response.dump();
    // server.response: the daemon "dies" right before answering --
    // the socket is severed without a byte of this frame, exactly
    // what a crash between compute and reply looks like to a client.
    if (failpoint::evaluate("server.response").action
        != failpoint::Action::Off) {
        ::shutdown(fd, SHUT_RDWR);
        return;
    }
    try {
        MutexLock lock(*write_mutex);
        protocol::writeFrame(fd, text);
    } catch (const std::exception &) {
        // The peer died mid-response (EPIPE via MSG_NOSIGNAL, reset,
        // or an injected protocol.write failure). The connection is
        // beyond saving; the daemon is not. Sever it outright: a
        // partially written frame would leave the client blocked on
        // the missing bytes, whereas a closed socket makes it
        // reconnect and resend from its buffered request copy.
        ::shutdown(fd, SHUT_RDWR);
    }
}

/** True when a handled response carries the structured quota error. */
bool
isQuotaExceeded(const Json &response)
{
    return response.isObject() && response.contains("quota_exceeded")
        && response.at("quota_exceeded").isBool()
        && response.at("quota_exceeded").asBool();
}

} // namespace

UnixSocketServer::UnixSocketServer(PulseService &service,
                                   ServerOptions options)
    : service_(service), options_(std::move(options)),
      scheduler_(options_.maxQueue)
{}

UnixSocketServer::~UnixSocketServer()
{
    stop();
}

void
UnixSocketServer::start()
{
    if (listen_fd_ >= 0)
        return; // already listening (run() after an explicit start())
    PAQOC_FATAL_IF(options_.socketPath.empty(),
                   "server: no socket path configured");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PAQOC_FATAL_IF(
        options_.socketPath.size() >= sizeof addr.sun_path,
        "server: socket path '", options_.socketPath, "' too long");
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PAQOC_FATAL_IF(listen_fd_ < 0, "server: socket(): ",
                   std::strerror(errno));
    ::unlink(options_.socketPath.c_str());
    PAQOC_FATAL_IF(::bind(listen_fd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr)
                       != 0,
                   "server: cannot bind '", options_.socketPath,
                   "': ", std::strerror(errno));
    PAQOC_FATAL_IF(::listen(listen_fd_, 64) != 0, "server: listen(): ",
                   std::strerror(errno));
    accept_thread_ = std::thread([this]() { acceptLoop(); });
}

void
UnixSocketServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int r = ::poll(&pfd, 1, 200);
        if (r <= 0)
            continue; // timeout (re-check stop flag) or EINTR
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            MutexLock lock(mutex_);
            if (stopping_.load(std::memory_order_relaxed)) {
                ::close(fd);
                return;
            }
            connections_.push_back(conn);
        }
        conn->thread =
            std::thread([this, conn]() { serveConnection(conn); });
    }
}

void
UnixSocketServer::serveConnection(
    const std::shared_ptr<Connection> &conn)
{
    std::string text;
    try {
        while (protocol::readFrame(conn->fd, text))
            dispatchFrame(conn, text);
    } catch (const std::exception &) {
        // Torn frame or dropped peer: the connection dies, the
        // server lives on.
    }
}

void
UnixSocketServer::dispatchFrame(const std::shared_ptr<Connection> &conn,
                                const std::string &text)
{
    // The write mutex is shared with scheduled jobs that may outlive
    // this frame-reading loop's iteration.
    auto write_mutex = std::shared_ptr<Mutex>(conn, &conn->writeMutex);
    const int fd = conn->fd;

    Json request;
    try {
        request = Json::parse(text);
    } catch (const std::exception &e) {
        writeResponse(write_mutex, fd, protocol::errorResponse(e.what()),
                      Json());
        return;
    }
    const Json id = request.get("id", Json());
    const std::string op =
        request.isObject() && request.contains("op")
            && request.at("op").isString()
        ? request.at("op").asString()
        : "";

    // Control-plane ops never queue: they must work under load.
    if (op == "ping" || op == "stats" || op == "shutdown") {
        Json response = service_.handle(request);
        if (op == "stats" && response.get("ok", Json(false)).isBool()
            && response.at("ok").asBool()) {
            const SessionScheduler::Stats st = scheduler_.stats();
            Json sched = Json::object();
            sched.set("accepted", Json(st.accepted));
            sched.set("rejected", Json(st.rejected));
            sched.set("completed", Json(st.completed));
            sched.set("expired", Json(st.expired));
            sched.set("in_flight", Json(st.inFlight));
            sched.set("quota_exceeded", Json(st.quotaExceeded));
            Json payload = response.at("payload");
            payload.set("scheduler", std::move(sched));
            response.set("payload", std::move(payload));
        }
        writeResponse(write_mutex, fd, std::move(response), id);
        if (service_.shutdownRequested())
            requestStop();
        return;
    }

    // Data-plane ops go through admission control.
    double deadline_ms = options_.defaultDeadlineMs;
    if (request.isObject() && request.contains("deadline_ms"))
        deadline_ms = request.at("deadline_ms").asNumber();
    auto deadline = SessionScheduler::Clock::time_point::max();
    if (deadline_ms > 0.0)
        deadline = SessionScheduler::Clock::now()
            + std::chrono::milliseconds(
                static_cast<long>(deadline_ms));

    const SessionScheduler::Admit admitted = scheduler_.submit(
        [this, write_mutex, fd, request, id]() {
            Json response = service_.handle(request);
            if (isQuotaExceeded(response))
                scheduler_.noteQuotaExceeded();
            writeResponse(write_mutex, fd, std::move(response), id);
        },
        deadline,
        [write_mutex, fd, id]() {
            writeResponse(
                write_mutex, fd,
                protocol::errorResponse(
                    "deadline exceeded while queued"),
                id);
        });
    if (admitted == SessionScheduler::Admit::Overloaded)
        writeResponse(write_mutex, fd, protocol::overloadedResponse(),
                      id);
    else if (admitted == SessionScheduler::Admit::Draining)
        writeResponse(write_mutex, fd,
                      protocol::errorResponse("server is shutting down"),
                      id);
}

void
UnixSocketServer::run()
{
    start();
    {
        MutexLock lock(mutex_);
        while (!stop_requested_)
            stop_cv_.wait(mutex_);
    }
    stop();
}

void
UnixSocketServer::requestStop()
{
    MutexLock lock(mutex_);
    stop_requested_ = true;
    stop_cv_.notify_all();
}

void
UnixSocketServer::stop()
{
    {
        MutexLock lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        stop_requested_ = true;
        stop_cv_.notify_all();
    }
    stopping_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    // Let admitted requests finish and write their responses...
    scheduler_.drain();

    // ...then sever the connections so reader threads wind down.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        MutexLock lock(mutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (const auto &conn : conns) {
        if (conn->thread.joinable())
            conn->thread.join();
        ::close(conn->fd);
    }

    service_.persist();
    ::unlink(options_.socketPath.c_str());
}

} // namespace paqoc
