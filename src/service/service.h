#ifndef PAQOC_SERVICE_SERVICE_H_
#define PAQOC_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/json.h"
#include "common/quota.h"
#include "paqoc/compiler.h"
#include "qoc/pulse_generator.h"
#include "store/checkpoint_store.h"
#include "store/pulse_library.h"

namespace paqoc {

/** Configuration of a PulseService instance. */
struct ServiceOptions
{
    /**
     * Directory of the durable pulse library; empty runs in-memory
     * only. Each backend keeps its own fingerprinted sub-library
     * (<dir>/spectral, <dir>/grape), so a GRAPE pulse is never served
     * to a model-only client or vice versa.
     */
    std::string libraryDir;
    /** GRAPE backend configuration (also part of the fingerprint). */
    GrapeOptions grape;
    /** fsync the journal after every record (see PulseLibraryOptions). */
    bool syncEveryAppend = false;
    /**
     * Similarity warm-start radius of the served GRAPE backend. The
     * daemon defaults this to 0 (exact cache hits only): similarity
     * seeding makes a result depend on which requests happened to
     * finish earlier, and the service promises order-independent
     * responses. Raise it to trade that determinism for AccQOC-style
     * seeding speedups.
     */
    double grapeSeedDistance = 0.0;
    /**
     * Directory of GRAPE optimization checkpoints; empty disables
     * crash-safe resume. The daemon defaults it to
     * `<libraryDir>/checkpoints` when --checkpoint-every is set.
     */
    std::string checkpointDir;
    /** GRAPE iterations between checkpoint snapshots (0 disables). */
    int checkpointEvery = 0;
    /**
     * Server-side budget caps (0 = unlimited). Requests may carry
     * their own `max_iters` / `max_wall_ms` / `max_resident_pulses`
     * members; the effective budget is resolveQuota(caps, request) --
     * a request can tighten but never widen these.
     */
    QuotaLimits quotaLimits;
    /**
     * Shared-tier wiring, one hook pair per backend library
     * (dependency-inverted: the service never links src/tier; the
     * daemon owns the TierClient objects and plugs them in here).
     * `source` is consulted on cache misses (read-through), `sink`
     * receives fresh derivations when there is no local library to
     * forward them (write-behind for an in-memory daemon; with a
     * library the forward-sink chain on the library does it).
     */
    struct TierHooks
    {
        PulseTierSource *source = nullptr;
        PulseStoreSink *sink = nullptr;
    };
    TierHooks tierSpectral;
    TierHooks tierGrape;
    /** Builds the "tier" member of the stats op; null omits it. */
    std::function<Json()> tierStats;
};

/** One parsed compile request (the CLI and the wire share this). */
struct CompileJob
{
    std::string qasm;      ///< OpenQASM 2.0 text; exclusive with benchmark
    std::string benchmark; ///< built-in workload name
    std::string method = "paqoc"; ///< "paqoc" | "accqoc"
    std::string m = "0";          ///< APA budget: N | "inf" | "tuned"
    int depth = 3;                ///< accqoc depth
    int maxn = 3;                 ///< customized-gate qubit cap
    std::string topology = "5x5"; ///< WxH | line:N
    bool commute = false;
    bool emitPulses = false;      ///< include per-gate pulses in payload
    std::string backend = "spectral"; ///< "spectral" | "grape"
};

/** Parse the "compile" request members (raises FatalError on junk). */
CompileJob compileJobFromJson(const Json &request);
Json compileJobToJson(const CompileJob &job);

/**
 * Run a compile job: route the circuit exactly as `paqocc` does
 * (decompose -> SABRE -> hardware basis, or a built-in benchmark) and
 * compile it with the given generator.
 */
CompileReport runCompileJob(const CompileJob &job,
                            PulseGenerator &generator);

/**
 * The deterministic response payload of a compile job. Everything in
 * here is a pure function of (job, library-independent compile
 * result): latency, ESP, circuit shape, and -- when emitPulses -- the
 * per-gate pulse documents. Serving statistics (cache hits, wall
 * time) deliberately live *outside* the payload, because they depend
 * on cache warmth and concurrency. N concurrent daemon clients and a
 * serial in-process run therefore produce byte-identical payloads.
 */
Json compilePayload(const CompileJob &job, const CompileReport &report,
                    PulseGenerator &generator);

/**
 * The request/response brain of `paqocd` (transport-free: the socket
 * server and the tests drive it directly). Owns the durable libraries
 * and the shutdown latch. handle() is thread-safe and is called
 * concurrently by the session scheduler.
 *
 * Serving model: *epoch snapshot isolation*. At construction the
 * library contents are frozen into an epoch; every request runs
 * against its own pulse generator warmed from that frozen epoch (never
 * from another request's derivations). The compiler consults cached
 * latencies when ranking and merging, so any state shared between
 * requests would make a payload depend on which requests happened to
 * run earlier -- with per-request isolation every payload is a pure
 * function of (job, epoch), and N concurrent clients get byte-for-byte
 * the payloads a serial run produces. Pulses derived while serving
 * still journal into the library; they become visible as cache hits in
 * the *next* daemon launch, whose epoch includes them.
 */
class PulseService
{
  public:
    explicit PulseService(ServiceOptions options = {});

    /**
     * Handle one request; never throws -- malformed requests and
     * handler failures come back as {"ok": false, "error": ...}.
     */
    Json handle(const Json &request);

    /**
     * Cancellation-aware variant (DESIGN.md §15): `cancel` (may be
     * null) is the request's cooperative token. Handlers thread it
     * into the pulse generator, which polls it per GRAPE iteration
     * and per batch item; a tripped token unwinds as a structured
     * {"ok": false, "cancelled": true, "reason": ...} response with
     * iters_charged, after checkpointing in-progress GRAPE state so a
     * re-request resumes instead of restarting.
     */
    Json handle(const Json &request, const CancelToken *cancel);

    /** True once a "shutdown" request was accepted. */
    bool shutdownRequested() const
    { return shutdown_.load(std::memory_order_relaxed); }

    /**
     * Graceful-shutdown persistence: compact both libraries (snapshot
     * + journal truncate, fsynced). Called by the daemon after the
     * scheduler drained.
     */
    void persist();

    /** Service-level statistics (epoch, serving counters, libraries). */
    Json statsJson() const;

    /**
     * Server-side per-request caps (for the socket server, which must
     * know whether a budget-derived cap is tighter than these when it
     * rewrites quota_exceeded into budget_exhausted, DESIGN.md §12).
     */
    const QuotaLimits &quotaCaps() const
    { return options_.quotaLimits; }

    const PulseLibrary *spectralLibrary() const
    { return spectral_lib_.get(); }
    const PulseLibrary *grapeLibrary() const
    { return grape_lib_.get(); }
    const CheckpointStore *checkpoints() const
    { return checkpoints_.get(); }

    /**
     * Tell the stats frame how this process is being run: whether a
     * supervisor is watching it and how many times the worker has
     * been restarted (the supervisor's incarnation counter).
     */
    void
    setSupervisionInfo(bool supervised, int worker_restarts)
    {
        supervised_.store(supervised, std::memory_order_relaxed);
        worker_restarts_.store(worker_restarts,
                               std::memory_order_relaxed);
    }

  private:
    Json handleCompile(const Json &request, const CancelToken *cancel);
    Json handleGenerate(const Json &request, const CancelToken *cancel);

    /**
     * Warm a per-request cache from the frozen epoch and attach the
     * matching library so new derivations are journaled.
     */
    void prepareCache(PulseCache &cache,
                      const std::string &backend) const;

    ServiceOptions options_;
    /** Frozen at construction; per-request caches warm from these. */
    std::vector<CachedPulse> epoch_spectral_;
    std::vector<CachedPulse> epoch_grape_;
    std::unique_ptr<PulseLibrary> spectral_lib_;
    std::unique_ptr<PulseLibrary> grape_lib_;
    /** Crash-safe GRAPE progress (null when checkpointing is off). */
    std::unique_ptr<CheckpointStore> checkpoints_;
    const std::chrono::steady_clock::time_point start_time_ =
        std::chrono::steady_clock::now();
    std::atomic<bool> supervised_{false};
    std::atomic<int> worker_restarts_{0};
    std::atomic<bool> shutdown_{false};
    /** Serving aggregates (requests are otherwise stateless). */
    std::atomic<std::size_t> compiles_{0};
    std::atomic<std::size_t> generates_{0};
    std::atomic<std::size_t> errors_{0};
    std::atomic<std::size_t> pulse_calls_{0};
    std::atomic<std::size_t> cache_hits_{0};
    /** Stitched best-effort pulses served (DESIGN.md §9). */
    std::atomic<std::size_t> degraded_pulses_{0};
    /** Requests ended by a structured quota_exceeded error (§10). */
    std::atomic<std::size_t> quota_rejections_{0};
    /** Requests ended by a structured cancelled error (§15). */
    std::atomic<std::size_t> cancelled_requests_{0};
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SERVICE_H_
