#ifndef PAQOC_SERVICE_CLIENT_H_
#define PAQOC_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"

namespace paqoc {

/**
 * FatalError subtype raised when the daemon cannot be reached at all:
 * connect attempts exhausted, connection lost with no retries left, or
 * a wedged socket timing out. Callers (paqocc exit codes, the tier
 * client's circuit breaker) branch on transport-vs-server failure by
 * catching this before FatalError.
 */
class TransportError : public FatalError
{
  public:
    explicit TransportError(const std::string &msg) : FatalError(msg) {}
};

/** Retry/timeout policy of a ServiceClient (DESIGN.md §9). */
struct ClientOptions
{
    /**
     * How many times to retry a failed connect or a retryable request
     * (daemon restarting, `retry` backpressure response) beyond the
     * first attempt. 0 keeps the historical fail-fast behavior.
     */
    int retries = 0;
    /**
     * Base backoff in milliseconds; attempt k sleeps
     * backoffDelayMs(k) * jitter where jitter is a deterministic
     * uniform draw in [0.5, 1.5) from `backoffSeed`.
     */
    double backoffMs = 50.0;
    /**
     * Socket receive/send timeout in milliseconds (SO_RCVTIMEO /
     * SO_SNDTIMEO); 0 blocks forever. A timed-out request raises
     * FatalError ("... timed out") instead of hanging on a wedged
     * daemon.
     */
    double timeoutMs = 0.0;
    /** Seed of the jitter stream; fixed so runs are reproducible. */
    std::uint64_t backoffSeed = 0x5eed;
    /**
     * Tenant identity stamped onto every request ("" = leave requests
     * as-is, so the daemon bills them to "anonymous"). Fair-share
     * admission and the per-tenant budgets key off this (DESIGN.md
     * §12).
     */
    std::string tenant;
};

/**
 * Blocking client of a running `paqocd` daemon: one connection, one
 * frame out / one frame in per request() call. Used by `paqocc
 * --connect` and the service tests. The target is either a Unix-domain
 * socket path or a `host:port` TCP endpoint -- anything
 * fleet::looksLikeTcpEndpoint accepts dials TCP, everything else is
 * treated as a filesystem path.
 *
 * Failure handling (DESIGN.md §9): connect failures and daemon
 * disconnects are recoverable -- the client retries up to
 * `options.retries` times with deterministic exponential backoff
 * (jittered from `options.backoffSeed`), reconnecting as needed, and
 * honors the request's own "deadline_ms" member as a total retry
 * budget. `retry` backpressure responses from an overloaded daemon are
 * retried the same way; when the budget or the retry count runs out
 * the last backpressure response is returned to the caller as-is.
 * Every non-recoverable path raises FatalError with a typed message --
 * the client never aborts the process.
 *
 * Buffered-resend contract: request() serializes the request JSON to
 * its wire frame *once*, before the first attempt, and every retry
 * resends that buffered copy. Callers may therefore hand over
 * single-shot payloads (e.g. QASM drained from stdin) and still
 * survive a daemon that dies after reading the request but before
 * writing the response -- the server severs such connections
 * (server.cpp writeResponse) precisely so this client reconnects and
 * resends instead of blocking on a frame that will never finish.
 */
class ServiceClient
{
  public:
    /**
     * Connect to the daemon (socket path or host:port), retrying per
     * `options`; FatalError once the attempts are exhausted.
     */
    explicit ServiceClient(const std::string &target,
                           ClientOptions options = {});
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Send one request and wait for its response, retrying recoverable
     * failures (lost connection, backpressure) per the options and the
     * request's "deadline_ms" budget.
     *
     * Request identity (DESIGN.md §15): a request without an "id"
     * member is stamped with a per-client monotone one before the
     * single serialization, and a response frame carrying a *different*
     * id is discarded as stale -- the leftover answer of an earlier,
     * abandoned request on a reused connection, which must not be
     * mistaken for this one's. lastRequestId() exposes the stamped id
     * so a caller can later aim a `cancel` op at the in-flight work.
     */
    Json request(const Json &request);

    /** The "id" the last request() carried (null before the first). */
    Json lastRequestId() const { return last_id_; }

    void close();

    /**
     * Base (un-jittered) backoff before retry attempt `attempt`
     * (0-based): backoffMs * 2^min(attempt, 16). Exposed so tests and
     * operators can reason about worst-case retry latency.
     */
    static double backoffDelayMs(const ClientOptions &options,
                                 int attempt);

  private:
    /**
     * One connect attempt; on failure stores a description in *error
     * and returns false. Honors the `client.connect` failpoint.
     */
    bool tryConnect(std::string *error);
    /** backoffDelayMs with the deterministic jitter factor applied. */
    double jitteredBackoffMs(int attempt);

    std::string target_;
    bool tcp_ = false;
    ClientOptions options_;
    Rng jitter_;
    int fd_ = -1;
    /** Next auto-stamped request id (per-client monotone). */
    std::uint64_t next_id_ = 1;
    /** Id of the most recent request (stamped or caller-provided). */
    Json last_id_;
};

} // namespace paqoc

#endif // PAQOC_SERVICE_CLIENT_H_
