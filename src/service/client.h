#ifndef PAQOC_SERVICE_CLIENT_H_
#define PAQOC_SERVICE_CLIENT_H_

#include <string>

#include "common/json.h"

namespace paqoc {

/**
 * Blocking client of a running `paqocd` daemon: one Unix-domain
 * connection, one frame out / one frame in per request() call. Used by
 * `paqocc --connect` and the service tests.
 */
class ServiceClient
{
  public:
    /** Connect to the daemon's socket; FatalError when unreachable. */
    explicit ServiceClient(const std::string &socket_path);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Send one request and wait for its response. */
    Json request(const Json &request);

    void close();

  private:
    int fd_ = -1;
};

} // namespace paqoc

#endif // PAQOC_SERVICE_CLIENT_H_
