#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"

namespace paqoc {
namespace protocol {

namespace {

bool
readAll(int fd, char *buf, std::size_t n, bool *clean_eof_at_start)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t r = failpoint::checkedRead("protocol.read", fd,
                                                 buf + off, n - off);
        if (r == 0) {
            if (clean_eof_at_start != nullptr && off == 0) {
                *clean_eof_at_start = true;
                return false;
            }
            PAQOC_FATAL_IF(true,
                           "protocol: connection closed mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            // A socket with SO_RCVTIMEO reports a hung peer this way.
            PAQOC_FATAL_IF(errno == EAGAIN || errno == EWOULDBLOCK,
                           "protocol: read timed out");
            PAQOC_FATAL_IF(true, "protocol: read failed: ",
                           std::strerror(errno));
        }
        off += static_cast<std::size_t>(r);
    }
    return true;
}

void
writeAll(int fd, const char *buf, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        // checkedSend passes MSG_NOSIGNAL: a peer that disappeared
        // mid-frame costs this caller an EPIPE exception, not the
        // whole process a SIGPIPE.
        const ssize_t w = failpoint::checkedSend("protocol.write", fd,
                                                 buf + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            PAQOC_FATAL_IF(errno == EAGAIN || errno == EWOULDBLOCK,
                           "protocol: write timed out");
            PAQOC_FATAL_IF(true, "protocol: write failed: ",
                           std::strerror(errno));
        }
        off += static_cast<std::size_t>(w);
    }
}

} // namespace

bool
readFrame(int fd, std::string &out)
{
    unsigned char hdr[4];
    bool clean_eof = false;
    if (!readAll(fd, reinterpret_cast<char *>(hdr), 4, &clean_eof))
        return false;
    const std::uint32_t len = (std::uint32_t{hdr[0]} << 24)
        | (std::uint32_t{hdr[1]} << 16) | (std::uint32_t{hdr[2]} << 8)
        | std::uint32_t{hdr[3]};
    PAQOC_FATAL_IF(len > kMaxFrameBytes, "protocol: frame of ", len,
                   " bytes exceeds the ", kMaxFrameBytes,
                   "-byte limit");
    out.resize(len);
    if (len > 0)
        readAll(fd, out.data(), len, nullptr);
    return true;
}

void
writeFrame(int fd, const std::string &payload)
{
    PAQOC_FATAL_IF(payload.size() > kMaxFrameBytes,
                   "protocol: frame of ", payload.size(),
                   " bytes exceeds the ", kMaxFrameBytes,
                   "-byte limit");
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    const unsigned char hdr[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    std::string frame(reinterpret_cast<const char *>(hdr), 4);
    frame += payload;
    writeAll(fd, frame.data(), frame.size());
}

Json
matrixToJson(const Matrix &m)
{
    Json rows = Json::array();
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c) {
            Json cell = Json::array();
            cell.push(Json(m(r, c).real()));
            cell.push(Json(m(r, c).imag()));
            rows.push(std::move(cell));
        }
    return rows;
}

Matrix
matrixFromJson(const Json &j)
{
    const std::size_t n = j.size();
    std::size_t dim = 1;
    while (dim * dim < n)
        ++dim;
    PAQOC_FATAL_IF(dim * dim != n,
                   "protocol: unitary element count ", n,
                   " is not a perfect square");
    Matrix m(dim, dim);
    for (std::size_t i = 0; i < n; ++i) {
        const Json &cell = j.at(i);
        PAQOC_FATAL_IF(cell.size() != 2,
                       "protocol: matrix cells must be [re, im]");
        m(i / dim, i % dim) =
            Complex(cell.at(std::size_t{0}).asNumber(),
                    cell.at(std::size_t{1}).asNumber());
    }
    return m;
}

Json
errorResponse(const std::string &message)
{
    Json r = Json::object();
    r.set("ok", Json(false));
    r.set("error", Json(message));
    return r;
}

Json
overloadedResponse()
{
    Json r = errorResponse("overloaded: request queue is full");
    r.set("retry", Json(true));
    return r;
}

Json
quotaExceededResponse(const std::string &limit,
                      const std::string &message)
{
    Json r = errorResponse(message);
    r.set("quota_exceeded", Json(true));
    r.set("limit", Json(limit));
    return r;
}

Json
budgetExhaustedResponse(const std::string &tenant,
                        double retry_after_ms,
                        const std::string &message)
{
    Json r = errorResponse(message);
    r.set("budget_exhausted", Json(true));
    r.set("tenant", Json(tenant));
    r.set("retry_after_ms", Json(retry_after_ms));
    return r;
}

Json
overloadShedResponse(const std::string &tenant, double retry_after_ms,
                     const std::string &message)
{
    Json r = errorResponse(message);
    r.set("overload_shed", Json(true));
    r.set("tenant", Json(tenant));
    r.set("retry_after_ms", Json(retry_after_ms));
    return r;
}

Json
cancelledResponse(const std::string &reason,
                  const std::string &message)
{
    Json r = errorResponse(message);
    r.set("cancelled", Json(true));
    r.set("reason", Json(reason));
    return r;
}

} // namespace protocol
} // namespace paqoc
