#ifndef PAQOC_SERVICE_SERVER_H_
#define PAQOC_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "service/scheduler.h"
#include "service/service.h"

namespace paqoc {

/** Transport configuration of a UnixSocketServer. */
struct ServerOptions
{
    /** Filesystem path of the Unix-domain listening socket. */
    std::string socketPath;
    /** Backpressure bound: admitted-but-unfinished request cap. */
    std::size_t maxQueue = 64;
    /**
     * Default per-request deadline in milliseconds (0 = none). A
     * request's own "deadline_ms" member overrides this. Deadlines are
     * checked when a request leaves the queue: one that already
     * expired gets a fast deadline error instead of a late compile.
     */
    double defaultDeadlineMs = 0.0;
};

/**
 * Unix-domain socket front end of the pulse-compilation service.
 * Frames (see service/protocol.h) arrive per connection; "ping",
 * "stats" and "shutdown" are answered inline, "compile" and
 * "generate" go through the SessionScheduler onto the global thread
 * pool. Responses carry the request's "id" member back (pipelined
 * requests may complete out of order).
 *
 * Graceful shutdown (a "shutdown" request or requestStop()):
 * stop accepting, drain in-flight requests, close connections,
 * persist the pulse library (PulseService::persist), return from
 * run().
 */
class UnixSocketServer
{
  public:
    UnixSocketServer(PulseService &service, ServerOptions options);
    ~UnixSocketServer();

    UnixSocketServer(const UnixSocketServer &) = delete;
    UnixSocketServer &operator=(const UnixSocketServer &) = delete;

    /** Bind, listen, and start the accept thread. */
    void start();

    /** start() + block until shutdown, then tear down. */
    void run();

    /** Ask run() to finish (signal-handler and test safe). */
    void requestStop();

    /** Tear down: drain, close, persist. Idempotent. */
    void stop();

    SessionScheduler &scheduler() { return scheduler_; }
    const std::string &socketPath() const
    { return options_.socketPath; }

  private:
    struct Connection
    {
        int fd = -1;
        /** Serializes whole response frames onto the socket. */
        Mutex writeMutex;
        std::thread thread;
    };

    void acceptLoop();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    void dispatchFrame(const std::shared_ptr<Connection> &conn,
                       const std::string &text);

    PulseService &service_;
    ServerOptions options_;
    SessionScheduler scheduler_;
    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
    Mutex mutex_;
    CondVar stop_cv_;
    bool stop_requested_ PAQOC_GUARDED_BY(mutex_) = false;
    bool stopped_ PAQOC_GUARDED_BY(mutex_) = false;
    std::vector<std::shared_ptr<Connection>> connections_
        PAQOC_GUARDED_BY(mutex_);
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SERVER_H_
