#ifndef PAQOC_SERVICE_SERVER_H_
#define PAQOC_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_annotations.h"
#include "fleet/budget.h"
#include "service/overload.h"
#include "service/scheduler.h"
#include "service/service.h"

namespace paqoc {

/** Transport + tenancy configuration of a SocketServer. */
struct ServerOptions
{
    /** Filesystem path of the Unix-domain listening socket ("" =
     *  none -- at least one endpoint must be configured). */
    std::string socketPath;
    /** TCP listener host ("" = no TCP listener). */
    std::string listenHost;
    /** TCP listener port (0 = kernel-assigned; see tcpPort()). */
    int listenPort = 0;
    /**
     * Fleet-worker mode: receive client connections as SCM_RIGHTS
     * fds over this control socket (fleet/fdpass.h) instead of
     * accepting them (-1 = off). EOF on it triggers a graceful stop:
     * the router is gone, so the worker drains and exits.
     */
    int controlFd = -1;
    /** Backpressure bound: admitted-but-unfinished request cap. */
    std::size_t maxQueue = 64;
    /**
     * Default per-request deadline in milliseconds (0 = none). A
     * request's own "deadline_ms" member overrides this. Deadlines are
     * checked when a request leaves the queue: one that already
     * expired gets a fast deadline error instead of a late compile.
     */
    double defaultDeadlineMs = 0.0;
    /** Weighted fair-share admission (DESIGN.md §12). */
    bool fairShare = false;
    /** Concurrent fair-share jobs (0 = pool thread count). */
    std::size_t fairShareConcurrency = 0;
    /** Per-tenant weights (unlisted tenants weigh 1). */
    std::map<std::string, int> tenantWeights;
    /**
     * Per-tenant replenishing budgets (fleet/budget.h); inert unless
     * a metered dimension is configured. Enforcement: an exhausted
     * tenant's data-plane requests get budgetExhaustedResponse at
     * admission (or degraded best-effort pulses when the request sets
     * degrade_on_quota); a tenant running low has the remaining
     * budget injected as its per-request cap, and a mid-request trip
     * of such a cap is reported as budget_exhausted too.
     */
    fleet::BudgetOptions tenantBudget;
    /**
     * Cancel a request's in-flight work when its client connection
     * goes away (DESIGN.md §15). With the per-iteration GRAPE poll an
     * orphaned derivation stops within one ADAM step; its checkpoint
     * survives, so the client's retry resumes instead of restarting.
     */
    bool cancelOnDisconnect = true;
    /**
     * Queue-delay target of the adaptive overload controller in ms
     * (`--overload-target-ms`; 0 disables). See service/overload.h
     * for the brownout ladder the windowed-min delay walks.
     */
    double overloadTargetMs = 0.0;
    /** Iteration cap injected into brownout-degraded requests. */
    long overloadBrownoutIters = 8;
};

/**
 * Socket front end of the pulse-compilation service: a Unix-domain
 * and/or TCP listener, or a fleet worker fed accepted connections by
 * the router (ServerOptions::controlFd). Frames (see
 * service/protocol.h) arrive per connection; "ping", "stats",
 * "cancel" and "shutdown" are answered inline, "compile" and
 * "generate" go through the SessionScheduler onto the global thread
 * pool. Responses carry the request's "id" member back (pipelined
 * requests may complete out of order).
 *
 * Cancellation (DESIGN.md §15): every data-plane request runs under a
 * CancelSource registered while it is in flight. A
 * {"op": "cancel", "target_id": <id>} frame -- on any connection --
 * trips the matching request; a vanished client connection trips all
 * of its requests (cancelOnDisconnect); an armed deadline trips its
 * own. The compute loops poll cooperatively, so cancelled work stops
 * within one GRAPE iteration and answers with the typed `cancelled`
 * response.
 *
 * Multi-tenancy (DESIGN.md §12): each data-plane request bills to its
 * "tenant" member ("anonymous" when absent); fair-share admission and
 * the replenishing tenant budgets hang off that identity, and the
 * "stats" op reports per-tenant serving counters.
 *
 * Graceful shutdown (a "shutdown" request or requestStop()):
 * stop accepting, drain in-flight requests, close connections,
 * persist the pulse library (PulseService::persist), return from
 * run().
 */
class SocketServer
{
  public:
    SocketServer(PulseService &service, ServerOptions options);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind/adopt the endpoints and start the accept thread. */
    void start();

    /** start() + block until shutdown, then tear down. */
    void run();

    /** Ask run() to finish (signal-handler and test safe). */
    void requestStop();

    /** Tear down: drain, close, persist. Idempotent. */
    void stop();

    SessionScheduler &scheduler() { return scheduler_; }
    const std::string &socketPath() const
    { return options_.socketPath; }
    /** Resolved TCP port (after start(); -1 without a TCP listener). */
    int tcpPort() const { return tcp_port_; }
    fleet::TenantBudgetLedger &budgetLedger() { return ledger_; }

  private:
    struct Connection
    {
        int fd = -1;
        /** Serializes whole response frames onto the socket. */
        Mutex writeMutex;
        std::thread thread;
    };

    /** One registered in-flight cancellable request. */
    struct Inflight
    {
        /** Serialized request id ("" when the request had none). */
        std::string idKey;
        /** Identity of the connection that submitted it. */
        const void *conn = nullptr;
        CancelSource source;
    };

    void acceptLoop();
    /** Register `fd` as a client connection and spawn its reader. */
    void adoptConnection(int fd);
    void serveConnection(const std::shared_ptr<Connection> &conn);
    void dispatchFrame(const std::shared_ptr<Connection> &conn,
                       const std::string &text);
    /** Append scheduler + tenant counters to a stats payload. */
    Json augmentStats(Json response);
    /** Track a request's CancelSource while it is in flight. */
    std::uint64_t registerInflight(const Json &id, const void *conn,
                                   const CancelSource &source);
    void unregisterInflight(std::uint64_t seq);
    /** Trip every in-flight request whose id matches `target`. */
    bool cancelById(const Json &target, CancelReason why);
    /** Trip every in-flight request submitted by `conn`. */
    void cancelConnection(const void *conn);

    PulseService &service_;
    ServerOptions options_;
    SessionScheduler scheduler_;
    fleet::TenantBudgetLedger ledger_;
    OverloadController overload_;
    int listen_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
    Mutex mutex_;
    CondVar stop_cv_;
    bool stop_requested_ PAQOC_GUARDED_BY(mutex_) = false;
    bool stopped_ PAQOC_GUARDED_BY(mutex_) = false;
    std::vector<std::shared_ptr<Connection>> connections_
        PAQOC_GUARDED_BY(mutex_);
    /** In-flight cancellable requests, keyed by registration seq
     *  (ids may collide across clients; the seq never does). */
    Mutex cancelMutex_;
    std::uint64_t inflight_seq_ PAQOC_GUARDED_BY(cancelMutex_) = 0;
    std::map<std::uint64_t, Inflight> inflight_
        PAQOC_GUARDED_BY(cancelMutex_);
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SERVER_H_
