#ifndef PAQOC_SERVICE_SCHEDULER_H_
#define PAQOC_SERVICE_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "fleet/fair_queue.h"

namespace paqoc {

/**
 * Admission control + execution for service requests. Jobs run on the
 * global thread pool; the scheduler adds what an inference server
 * needs on top of a raw pool:
 *
 *  - *Backpressure*: at most `max_queue` jobs may be admitted but not
 *    yet finished; beyond that submit() rejects immediately (the
 *    server answers "overloaded" instead of building unbounded queue).
 *  - *Deadlines*: each job carries an optional absolute deadline. A
 *    job whose deadline passed while it sat in the queue is *expired*:
 *    its `on_expired` callback runs instead of the work, so the client
 *    gets a fast deadline error rather than a late result.
 *  - *Draining*: drain() stops admission and blocks until every
 *    admitted job completed -- the graceful-shutdown half of the
 *    daemon (in-flight requests finish, new ones are turned away).
 *  - *Weighted fair share* (opt-in, DESIGN.md §12): instead of
 *    handing every admitted job straight to the pool (global FIFO),
 *    enableFairShare() queues jobs per tenant and dispatches them in
 *    deterministic stride order by configured weight, at most
 *    `max_concurrent` running at once. A heavy tenant then gets its
 *    weighted share of the pool, not the whole pool.
 *
 * Per-tenant serving counters are recorded in both modes; requests
 * without a tenant bill to "anonymous".
 */
class SessionScheduler
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit SessionScheduler(std::size_t max_queue = 64,
                              ThreadPool *pool = nullptr)
        : max_queue_(max_queue == 0 ? 1 : max_queue), pool_(pool)
    {}

    enum class Admit
    {
        Accepted,   ///< job queued; it will run or expire
        Overloaded, ///< queue full; caller should report backpressure
        Draining,   ///< shutdown in progress; no new work
    };

    /**
     * Switch admission to weighted fair-share dispatch. `weights`
     * configures per-tenant weights (unlisted tenants get weight 1);
     * at most `max_concurrent` jobs run simultaneously (0 = the
     * pool's thread count). Call before serving starts.
     */
    void enableFairShare(const std::map<std::string, int> &weights,
                         std::size_t max_concurrent = 0);

    /**
     * Admit a job. `deadline` of Clock::time_point::max() means none.
     * Exactly one of `work` / `on_expired` eventually runs.
     */
    Admit submit(std::function<void()> work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {});

    /** submit() billed to (and fair-share queued under) `tenant`. */
    Admit submit(const std::string &tenant, std::function<void()> work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {});

    /** Stop admitting and wait for all admitted jobs to finish. */
    void drain();

    /** True once drain() (or shutdown) started. */
    bool draining() const;

    struct Stats
    {
        std::size_t accepted = 0;
        std::size_t rejected = 0;
        std::size_t completed = 0;
        std::size_t expired = 0;
        std::size_t inFlight = 0;
        /** Requests that exhausted a per-request resource budget. */
        std::size_t quotaExceeded = 0;
    };
    Stats stats() const;

    /** Serving counters of one tenant (stats op, DESIGN.md §12). */
    struct TenantStats
    {
        std::size_t admitted = 0;
        /** Currently waiting in the fair-share queue. */
        std::size_t queued = 0;
        std::size_t completed = 0;
        std::size_t expired = 0;
        /** Requests refused or tripped by the tenant budget. */
        std::size_t budgetExhausted = 0;
        /** Requests served degraded because the budget was spent. */
        std::size_t degraded = 0;
    };
    /** Per-tenant counters in tenant-name order. */
    std::vector<std::pair<std::string, TenantStats>>
    tenantStats() const;

    /**
     * Record that an admitted request ended with a structured
     * quota_exceeded error (budgets are enforced cooperatively inside
     * the job, so the server reports the outcome back here).
     */
    void noteQuotaExceeded();

    /** Record a budget_exhausted outcome for `tenant`. */
    void noteBudgetExhausted(const std::string &tenant);

    /** Record a degraded (budget-spent best-effort) serve. */
    void noteDegraded(const std::string &tenant);

  private:
    struct Pending
    {
        std::string tenant;
        std::function<void()> work;
        std::function<void()> onExpired;
        Clock::time_point deadline;
    };

    ThreadPool &pool() const
    { return pool_ != nullptr ? *pool_ : ThreadPool::global(); }

    /** Wrap a pending job with expiry + completion bookkeeping. */
    std::function<void()> makeJob(Pending pending);

    /**
     * Move dispatchable fair-share jobs into *out while respecting
     * max_concurrent_; the caller submits them after unlocking (pool
     * submission must not happen under mutex_).
     */
    void pumpLocked(std::vector<std::function<void()>> *out)
        PAQOC_REQUIRES(mutex_);

    std::size_t max_queue_;
    ThreadPool *pool_;
    mutable Mutex mutex_;
    CondVar idle_cv_;
    bool draining_ PAQOC_GUARDED_BY(mutex_) = false;
    Stats stats_ PAQOC_GUARDED_BY(mutex_);
    bool fair_share_ PAQOC_GUARDED_BY(mutex_) = false;
    std::size_t max_concurrent_ PAQOC_GUARDED_BY(mutex_) = 0;
    std::size_t running_ PAQOC_GUARDED_BY(mutex_) = 0;
    fleet::FairShareQueue<Pending> queue_ PAQOC_GUARDED_BY(mutex_);
    std::map<std::string, TenantStats> tenants_
        PAQOC_GUARDED_BY(mutex_);
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SCHEDULER_H_
