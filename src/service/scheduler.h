#ifndef PAQOC_SERVICE_SCHEDULER_H_
#define PAQOC_SERVICE_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "fleet/fair_queue.h"

namespace paqoc {

/**
 * Admission control + execution for service requests. Jobs run on the
 * global thread pool; the scheduler adds what an inference server
 * needs on top of a raw pool:
 *
 *  - *Backpressure*: at most `max_queue` jobs may be admitted but not
 *    yet finished; beyond that submit() rejects immediately (the
 *    server answers "overloaded" instead of building unbounded queue).
 *  - *Deadlines*: each job carries an optional absolute deadline. A
 *    job whose deadline passed while it sat in the queue is *expired*:
 *    its `on_expired` callback runs instead of the work, so the client
 *    gets a fast deadline error rather than a late result. Expired
 *    jobs deep in the queue are purged eagerly by sweepExpired(), not
 *    only discovered at dispatch.
 *  - *Cancellation* (DESIGN.md §15): every job carries a CancelSource
 *    (the caller may supply its own, e.g. one registered under the
 *    request id); the deadline is armed on it and the work receives
 *    the token, so a derivation stops within one poll of the deadline
 *    passing, the client vanishing, or a `cancel` op landing.
 *  - *Draining*: drain() stops admission and blocks until every
 *    admitted job completed -- the graceful-shutdown half of the
 *    daemon (in-flight requests finish, new ones are turned away).
 *  - *Weighted fair share* (opt-in, DESIGN.md §12): instead of
 *    handing every admitted job straight to the pool (global FIFO),
 *    enableFairShare() queues jobs per tenant and dispatches them in
 *    deterministic stride order by configured weight, at most
 *    `max_concurrent` running at once. A heavy tenant then gets its
 *    weighted share of the pool, not the whole pool.
 *
 * Per-tenant serving counters are recorded in both modes; requests
 * without a tenant bill to "anonymous".
 */
class SessionScheduler
{
  public:
    using Clock = std::chrono::steady_clock;
    using CancellableWork = std::function<void(const CancelToken &)>;

    explicit SessionScheduler(std::size_t max_queue = 64,
                              ThreadPool *pool = nullptr)
        : max_queue_(max_queue == 0 ? 1 : max_queue), pool_(pool)
    {}

    enum class Admit
    {
        Accepted,   ///< job queued; it will run or expire
        Overloaded, ///< queue full; caller should report backpressure
        Draining,   ///< shutdown in progress; no new work
    };

    /**
     * Switch admission to weighted fair-share dispatch. `weights`
     * configures per-tenant weights (unlisted tenants get weight 1);
     * at most `max_concurrent` jobs run simultaneously (0 = the
     * pool's thread count). Call before serving starts.
     */
    void enableFairShare(const std::map<std::string, int> &weights,
                         std::size_t max_concurrent = 0);

    /**
     * Admit a job. `deadline` of Clock::time_point::max() means none.
     * Exactly one of `work` / `on_expired` eventually runs. The
     * deadline is armed on `source` (caller-supplied so the server
     * can also cancel it by request id / on disconnect) and the work
     * polls its token.
     */
    Admit submit(CancellableWork work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {},
                 CancelSource source = CancelSource());

    /** submit() billed to (and fair-share queued under) `tenant`. */
    Admit submit(const std::string &tenant, CancellableWork work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {},
                 CancelSource source = CancelSource());

    /** Token-free convenience overloads (tests, simple callers). */
    Admit submit(std::function<void()> work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {});
    Admit submit(const std::string &tenant, std::function<void()> work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {});

    /**
     * Purge queued jobs whose deadline already passed: each runs its
     * `on_expired` now (on the sweeping thread) and frees its
     * admission slot without waiting to be popped. Jobs already
     * dispatched to a worker are untouched -- their armed deadline
     * token stops them cooperatively. Returns how many were swept.
     */
    std::size_t sweepExpired();

    /** Stop admitting and wait for all admitted jobs to finish. */
    void drain();

    /** True once drain() (or shutdown) started. */
    bool draining() const;

    /**
     * Observer invoked (on the worker thread, at job start) with the
     * job's queue residency in milliseconds -- the signal the
     * overload controller's CoDel-style admission window tracks.
     */
    void setQueueDelayObserver(std::function<void(double)> observer);

    struct Stats
    {
        std::size_t accepted = 0;
        std::size_t rejected = 0;
        std::size_t completed = 0;
        std::size_t expired = 0;
        std::size_t inFlight = 0;
        /** Requests that exhausted a per-request resource budget. */
        std::size_t quotaExceeded = 0;
        /** Requests that ended with a cancelled outcome (any reason). */
        std::size_t cancelled = 0;
        /** Subset of `cancelled`: deadline passed mid-run and the
         *  derivation was stopped cooperatively. */
        std::size_t expiredRunning = 0;
        /** Requests shed by the overload controller (never ran). */
        std::size_t shed = 0;
        /** Requests served degraded by the brownout ladder. */
        std::size_t brownout = 0;
    };
    Stats stats() const;

    /** Serving counters of one tenant (stats op, DESIGN.md §12). */
    struct TenantStats
    {
        std::size_t admitted = 0;
        /** Currently waiting in the fair-share queue. */
        std::size_t queued = 0;
        std::size_t completed = 0;
        std::size_t expired = 0;
        /** Requests refused or tripped by the tenant budget. */
        std::size_t budgetExhausted = 0;
        /** Requests served degraded because the budget was spent. */
        std::size_t degraded = 0;
        /** Requests that ended cancelled (any reason). */
        std::size_t cancelled = 0;
        /** Requests shed by the overload controller. */
        std::size_t shed = 0;
        /** Requests served degraded by the brownout ladder. */
        std::size_t brownout = 0;
    };
    /** Per-tenant counters in tenant-name order. */
    std::vector<std::pair<std::string, TenantStats>>
    tenantStats() const;

    /**
     * Record that an admitted request ended with a structured
     * quota_exceeded error (budgets are enforced cooperatively inside
     * the job, so the server reports the outcome back here).
     */
    void noteQuotaExceeded();

    /** Record a budget_exhausted outcome for `tenant`. */
    void noteBudgetExhausted(const std::string &tenant);

    /** Record a degraded (budget-spent best-effort) serve. */
    void noteDegraded(const std::string &tenant);

    /** Record a cancelled outcome (`why` keys the sub-counters). */
    void noteCancelled(const std::string &tenant, CancelReason why);

    /** Record an overload-shed refusal for `tenant`. */
    void noteShed(const std::string &tenant);

    /** Record a brownout (overload-degraded) serve for `tenant`. */
    void noteBrownout(const std::string &tenant);

  private:
    enum class JobState
    {
        Queued,     ///< admitted, awaiting a worker
        Dispatched, ///< a worker owns it (runs or expires at start)
        Swept,      ///< purged by sweepExpired(); workers skip it
    };

    struct Pending
    {
        std::string tenant;
        CancellableWork work;
        std::function<void()> onExpired;
        Clock::time_point deadline;
        Clock::time_point enqueued;
        CancelSource source;
        JobState state = JobState::Queued;
    };
    using Job = std::shared_ptr<Pending>;

    ThreadPool &pool() const
    { return pool_ != nullptr ? *pool_ : ThreadPool::global(); }

    /** Wrap a pending job with expiry + completion bookkeeping. */
    std::function<void()> makeJob(Job job);

    /**
     * Move dispatchable fair-share jobs into *out while respecting
     * max_concurrent_; the caller submits them after unlocking (pool
     * submission must not happen under mutex_).
     */
    void pumpLocked(std::vector<std::function<void()>> *out)
        PAQOC_REQUIRES(mutex_);

    std::size_t max_queue_;
    ThreadPool *pool_;
    mutable Mutex mutex_;
    CondVar idle_cv_;
    bool draining_ PAQOC_GUARDED_BY(mutex_) = false;
    Stats stats_ PAQOC_GUARDED_BY(mutex_);
    bool fair_share_ PAQOC_GUARDED_BY(mutex_) = false;
    std::size_t max_concurrent_ PAQOC_GUARDED_BY(mutex_) = 0;
    std::size_t running_ PAQOC_GUARDED_BY(mutex_) = 0;
    fleet::FairShareQueue<Job> queue_ PAQOC_GUARDED_BY(mutex_);
    /** Every admitted-but-not-dispatched job, for sweepExpired(). */
    std::vector<std::weak_ptr<Pending>> registry_
        PAQOC_GUARDED_BY(mutex_);
    std::map<std::string, TenantStats> tenants_
        PAQOC_GUARDED_BY(mutex_);
    std::function<void(double)> queue_delay_observer_
        PAQOC_GUARDED_BY(mutex_);
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SCHEDULER_H_
