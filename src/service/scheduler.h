#ifndef PAQOC_SERVICE_SCHEDULER_H_
#define PAQOC_SERVICE_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <functional>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace paqoc {

/**
 * Admission control + execution for service requests. Jobs run on the
 * global thread pool; the scheduler adds what an inference server
 * needs on top of a raw pool:
 *
 *  - *Backpressure*: at most `max_queue` jobs may be admitted but not
 *    yet finished; beyond that submit() rejects immediately (the
 *    server answers "overloaded" instead of building unbounded queue).
 *  - *Deadlines*: each job carries an optional absolute deadline. A
 *    job whose deadline passed while it sat in the queue is *expired*:
 *    its `on_expired` callback runs instead of the work, so the client
 *    gets a fast deadline error rather than a late result.
 *  - *Draining*: drain() stops admission and blocks until every
 *    admitted job completed -- the graceful-shutdown half of the
 *    daemon (in-flight requests finish, new ones are turned away).
 */
class SessionScheduler
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit SessionScheduler(std::size_t max_queue = 64,
                              ThreadPool *pool = nullptr)
        : max_queue_(max_queue == 0 ? 1 : max_queue), pool_(pool)
    {}

    enum class Admit
    {
        Accepted,   ///< job queued; it will run or expire
        Overloaded, ///< queue full; caller should report backpressure
        Draining,   ///< shutdown in progress; no new work
    };

    /**
     * Admit a job. `deadline` of Clock::time_point::max() means none.
     * Exactly one of `work` / `on_expired` eventually runs.
     */
    Admit submit(std::function<void()> work,
                 Clock::time_point deadline = Clock::time_point::max(),
                 std::function<void()> on_expired = {});

    /** Stop admitting and wait for all admitted jobs to finish. */
    void drain();

    /** True once drain() (or shutdown) started. */
    bool draining() const;

    struct Stats
    {
        std::size_t accepted = 0;
        std::size_t rejected = 0;
        std::size_t completed = 0;
        std::size_t expired = 0;
        std::size_t inFlight = 0;
        /** Requests that exhausted a per-request resource budget. */
        std::size_t quotaExceeded = 0;
    };
    Stats stats() const;

    /**
     * Record that an admitted request ended with a structured
     * quota_exceeded error (budgets are enforced cooperatively inside
     * the job, so the server reports the outcome back here).
     */
    void noteQuotaExceeded();

  private:
    ThreadPool &pool() const
    { return pool_ != nullptr ? *pool_ : ThreadPool::global(); }

    std::size_t max_queue_;
    ThreadPool *pool_;
    mutable Mutex mutex_;
    CondVar idle_cv_;
    bool draining_ PAQOC_GUARDED_BY(mutex_) = false;
    Stats stats_ PAQOC_GUARDED_BY(mutex_);
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SCHEDULER_H_
