#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "fleet/endpoint.h"
#include "service/protocol.h"

namespace paqoc {
namespace {

/** Millisecond timeout -> timeval for SO_RCVTIMEO / SO_SNDTIMEO. */
timeval
timeoutToTimeval(double ms)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    if (tv.tv_sec == 0 && tv.tv_usec == 0)
        tv.tv_usec = 1; // zero would mean "block forever"
    return tv;
}

} // namespace

ServiceClient::ServiceClient(const std::string &target,
                             ClientOptions options)
    : target_(target), tcp_(fleet::looksLikeTcpEndpoint(target)),
      options_(std::move(options)), jitter_(options_.backoffSeed)
{
    std::string error;
    for (int attempt = 0;; ++attempt) {
        if (tryConnect(&error))
            return;
        if (attempt >= options_.retries)
            break;
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(
            jitteredBackoffMs(attempt)));
    }
    throw TransportError("client: cannot connect to '" + target_
                         + "': " + error + " (is paqocd running?)");
}

ServiceClient::~ServiceClient()
{
    close();
}

double
ServiceClient::backoffDelayMs(const ClientOptions &options, int attempt)
{
    const int exponent = std::min(std::max(attempt, 0), 16);
    return options.backoffMs * std::ldexp(1.0, exponent);
}

double
ServiceClient::jitteredBackoffMs(int attempt)
{
    return backoffDelayMs(options_, attempt)
           * (0.5 + jitter_.uniform());
}

bool
ServiceClient::tryConnect(std::string *error)
{
    close();
    if (failpoint::evaluate("client.connect").action
        != failpoint::Action::Off) {
        *error = "injected connect failure";
        return false;
    }

    int fd = -1;
    if (tcp_) {
        const std::optional<fleet::HostPort> endpoint =
            fleet::parseHostPort(target_, error);
        PAQOC_FATAL_IF(!endpoint.has_value(),
                       "client: bad TCP endpoint '", target_, "': ",
                       *error);
        // Bound the TCP dial by the op timeout too: a black-holed SYN
        // must not stall the whole retry budget on one attempt.
        fd = fleet::connectTcp(endpoint->host, endpoint->port, error,
                               static_cast<int>(options_.timeoutMs));
        if (fd < 0)
            return false;
    } else {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        PAQOC_FATAL_IF(target_.size() >= sizeof addr.sun_path,
                       "client: socket path '", target_, "' too long");
        std::strncpy(addr.sun_path, target_.c_str(),
                     sizeof addr.sun_path - 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        PAQOC_FATAL_IF(fd < 0, "client: socket(): ",
                       std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr)
            != 0) {
            *error = std::strerror(errno);
            ::close(fd);
            return false;
        }
    }
    if (options_.timeoutMs > 0.0) {
        const timeval tv = timeoutToTimeval(options_.timeoutMs);
        // Best effort: a socket without timeouts still works, it just
        // blocks forever on a wedged peer.
        (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    fd_ = fd;
    return true;
}

Json
ServiceClient::request(const Json &request)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    double budget_ms = 0.0; // 0 = unbounded
    if (request.isObject() && request.contains("deadline_ms"))
        budget_ms = request.at("deadline_ms").asNumber();
    const auto elapsed_ms = [&] {
        return std::chrono::duration<double, std::milli>(Clock::now()
                                                         - start)
            .count();
    };
    // True when sleeping `delay` more milliseconds would blow the
    // request's own deadline budget -- retrying past it only produces
    // a late "deadline exceeded" error, so stop early instead.
    const auto budget_exhausted = [&](double delay) {
        return budget_ms > 0.0 && elapsed_ms() + delay >= budget_ms;
    };

    // The tenant identity and the request id ride on the request
    // itself so they survive the buffered-resend path byte-for-byte
    // across retries.
    std::string text;
    if (request.isObject()) {
        Json stamped = request;
        if (!options_.tenant.empty() && !stamped.contains("tenant"))
            stamped.set("tenant", Json(options_.tenant));
        if (!stamped.contains("id"))
            stamped.set("id",
                        Json(static_cast<double>(next_id_++)));
        last_id_ = stamped.at("id");
        text = stamped.dump();
    } else {
        last_id_ = Json();
        text = request.dump();
    }
    for (int attempt = 0;; ++attempt) {
        std::string failure;
        if (fd_ < 0 && !tryConnect(&failure)) {
            failure = "client: cannot connect to '" + target_
                      + "': " + failure;
        } else {
            try {
                protocol::writeFrame(fd_, text);
                std::string reply;
                PAQOC_FATAL_IF(!protocol::readFrame(fd_, reply),
                               "client: daemon closed the connection");
                Json response = Json::parse(reply);
                // Stale-frame defense: a response carrying a
                // *different* id is the leftover answer of an earlier
                // abandoned request on this connection -- drop it and
                // keep reading for ours. Responses without an id
                // (legacy daemons) pass through untouched.
                while (!last_id_.isNull() && response.isObject()
                       && response.contains("id")
                       && response.at("id").dump()
                           != last_id_.dump()) {
                    PAQOC_FATAL_IF(
                        !protocol::readFrame(fd_, reply),
                        "client: daemon closed the connection");
                    response = Json::parse(reply);
                }
                const bool backpressure =
                    response.isObject() && response.contains("retry")
                    && response.at("retry").asBool();
                if (!backpressure)
                    return response;
                // Overloaded daemon: retry within the budget; when
                // out of attempts hand the backpressure response to
                // the caller so it can decide (e.g. fall back local).
                const double delay = jitteredBackoffMs(attempt);
                if (attempt >= options_.retries
                    || budget_exhausted(delay))
                    return response;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(delay));
                continue;
            } catch (const FatalError &e) {
                // Lost or wedged connection; drop it and maybe retry
                // on a fresh one.
                close();
                failure = e.what();
            }
        }
        const double delay = jitteredBackoffMs(attempt);
        if (attempt >= options_.retries || budget_exhausted(delay))
            throw TransportError(failure);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
    }
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace paqoc
