#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "service/protocol.h"

namespace paqoc {

ServiceClient::ServiceClient(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PAQOC_FATAL_IF(socket_path.size() >= sizeof addr.sun_path,
                   "client: socket path '", socket_path, "' too long");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PAQOC_FATAL_IF(fd_ < 0, "client: socket(): ", std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr)
        != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        PAQOC_FATAL_IF(true, "client: cannot connect to '", socket_path,
                       "': ", std::strerror(err),
                       " (is paqocd running?)");
    }
}

ServiceClient::~ServiceClient()
{
    close();
}

Json
ServiceClient::request(const Json &request)
{
    PAQOC_FATAL_IF(fd_ < 0, "client: connection is closed");
    protocol::writeFrame(fd_, request.dump());
    std::string text;
    PAQOC_FATAL_IF(!protocol::readFrame(fd_, text),
                   "client: daemon closed the connection");
    return Json::parse(text);
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace paqoc
