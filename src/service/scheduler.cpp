#include "service/scheduler.h"

#include <utility>

#include "common/failpoint.h"

namespace paqoc {

SessionScheduler::Admit
SessionScheduler::submit(std::function<void()> work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired)
{
    {
        const failpoint::Hit hit =
            failpoint::evaluate("scheduler.submit");
        MutexLock lock(mutex_);
        if (hit.action != failpoint::Action::Off
            && hit.action != failpoint::Action::DelayMs) {
            // Injected queue-full: exercises the client's reaction to
            // the `retry` backpressure response.
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        if (draining_) {
            ++stats_.rejected;
            return Admit::Draining;
        }
        if (stats_.inFlight >= max_queue_) {
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        ++stats_.accepted;
        ++stats_.inFlight;
    }

    auto job = [this, work = std::move(work), deadline,
                on_expired = std::move(on_expired)]() mutable {
        const bool expired = Clock::now() > deadline;
        try {
            if (expired) {
                if (on_expired)
                    on_expired();
            } else {
                work();
            }
        } catch (...) {
            // Handlers report their own errors over the wire; an
            // escaped exception must not take the worker down.
        }
        MutexLock lock(mutex_);
        --stats_.inFlight;
        ++(expired ? stats_.expired : stats_.completed);
        if (stats_.inFlight == 0)
            idle_cv_.notify_all();
    };
    pool().submit(std::move(job));
    return Admit::Accepted;
}

void
SessionScheduler::drain()
{
    MutexLock lock(mutex_);
    draining_ = true;
    while (stats_.inFlight != 0)
        idle_cv_.wait(mutex_);
}

bool
SessionScheduler::draining() const
{
    MutexLock lock(mutex_);
    return draining_;
}

SessionScheduler::Stats
SessionScheduler::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
SessionScheduler::noteQuotaExceeded()
{
    MutexLock lock(mutex_);
    ++stats_.quotaExceeded;
}

} // namespace paqoc
