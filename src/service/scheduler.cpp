#include "service/scheduler.h"

#include <utility>

#include "common/failpoint.h"
#include "fleet/tenant.h"

namespace paqoc {

void
SessionScheduler::enableFairShare(
    const std::map<std::string, int> &weights,
    std::size_t max_concurrent)
{
    MutexLock lock(mutex_);
    fair_share_ = true;
    max_concurrent_ =
        max_concurrent > 0 ? max_concurrent : pool().size();
    if (max_concurrent_ == 0)
        max_concurrent_ = 1;
    for (const auto &entry : weights)
        queue_.setWeight(entry.first, entry.second);
}

void
SessionScheduler::setQueueDelayObserver(
    std::function<void(double)> observer)
{
    MutexLock lock(mutex_);
    queue_delay_observer_ = std::move(observer);
}

SessionScheduler::Admit
SessionScheduler::submit(std::function<void()> work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired)
{
    return submit(fleet::kAnonymousTenant, std::move(work), deadline,
                  std::move(on_expired));
}

SessionScheduler::Admit
SessionScheduler::submit(const std::string &tenant,
                         std::function<void()> work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired)
{
    return submit(
        tenant,
        [work = std::move(work)](const CancelToken &) { work(); },
        deadline, std::move(on_expired), CancelSource());
}

SessionScheduler::Admit
SessionScheduler::submit(CancellableWork work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired,
                         CancelSource source)
{
    return submit(fleet::kAnonymousTenant, std::move(work), deadline,
                  std::move(on_expired), std::move(source));
}

SessionScheduler::Admit
SessionScheduler::submit(const std::string &tenant,
                         CancellableWork work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired,
                         CancelSource source)
{
    std::vector<std::function<void()>> to_run;
    {
        const failpoint::Hit hit =
            failpoint::evaluate("scheduler.submit");
        MutexLock lock(mutex_);
        if (hit.action != failpoint::Action::Off
            && hit.action != failpoint::Action::DelayMs) {
            // Injected queue-full: exercises the client's reaction to
            // the `retry` backpressure response.
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        if (draining_) {
            ++stats_.rejected;
            return Admit::Draining;
        }
        if (stats_.inFlight >= max_queue_) {
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        ++stats_.accepted;
        ++stats_.inFlight;
        ++tenants_[tenant].admitted;

        if (deadline != Clock::time_point::max())
            source.armDeadline(deadline);
        Job job = std::make_shared<Pending>(
            Pending{tenant, std::move(work), std::move(on_expired),
                    deadline, Clock::now(), std::move(source),
                    JobState::Queued});
        registry_.push_back(job);
        if (!fair_share_) {
            to_run.push_back(makeJob(std::move(job)));
        } else {
            ++tenants_[tenant].queued;
            queue_.push(tenant, std::move(job));
            pumpLocked(&to_run);
        }
    }
    for (auto &job : to_run)
        pool().submit(std::move(job));
    return Admit::Accepted;
}

std::function<void()>
SessionScheduler::makeJob(Job job)
{
    return [this, job = std::move(job)]() {
        bool expired = false;
        double queue_delay_ms = 0.0;
        std::function<void(double)> observer;
        {
            MutexLock lock(mutex_);
            if (job->state == JobState::Swept)
                return; // sweepExpired() already settled the books
            job->state = JobState::Dispatched;
            expired = Clock::now() > job->deadline;
            queue_delay_ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - job->enqueued)
                    .count();
            observer = queue_delay_observer_;
        }
        if (observer)
            observer(queue_delay_ms);
        if (expired)
            job->source.cancel(CancelReason::DeadlineExceeded);
        try {
            if (expired) {
                if (job->onExpired)
                    job->onExpired();
            } else {
                job->work(job->source.token());
            }
        } catch (...) {
            // Handlers report their own errors over the wire; an
            // escaped exception must not take the worker down.
        }
        std::vector<std::function<void()>> to_run;
        {
            MutexLock lock(mutex_);
            --stats_.inFlight;
            ++(expired ? stats_.expired : stats_.completed);
            TenantStats &ts = tenants_[job->tenant];
            ++(expired ? ts.expired : ts.completed);
            if (fair_share_) {
                --running_;
                pumpLocked(&to_run);
            }
            if (stats_.inFlight == 0)
                idle_cv_.notify_all();
        }
        for (auto &next : to_run)
            pool().submit(std::move(next));
    };
}

std::size_t
SessionScheduler::sweepExpired()
{
    std::vector<std::function<void()>> callbacks;
    std::size_t swept = 0;
    {
        MutexLock lock(mutex_);
        const Clock::time_point now = Clock::now();
        auto it = registry_.begin();
        while (it != registry_.end()) {
            Job job = it->lock();
            if (job == nullptr || job->state != JobState::Queued) {
                // Completed, or a worker owns it -- drop the entry.
                it = registry_.erase(it);
                continue;
            }
            if (now <= job->deadline) {
                ++it;
                continue;
            }
            // Still queued and past deadline: expire it in place. It
            // stays physically queued, but workers skip Swept jobs,
            // so its admission slot frees right now.
            job->state = JobState::Swept;
            job->source.cancel(CancelReason::DeadlineExceeded);
            --stats_.inFlight;
            ++stats_.expired;
            TenantStats &ts = tenants_[job->tenant];
            ++ts.expired;
            if (fair_share_ && ts.queued > 0)
                --ts.queued;
            if (job->onExpired)
                callbacks.push_back(job->onExpired);
            ++swept;
            it = registry_.erase(it);
        }
        if (swept > 0 && stats_.inFlight == 0)
            idle_cv_.notify_all();
    }
    for (auto &cb : callbacks) {
        try {
            cb();
        } catch (...) {
            // Expiry answers are best-effort, like job exceptions.
        }
    }
    return swept;
}

void
SessionScheduler::pumpLocked(std::vector<std::function<void()>> *out)
{
    while (running_ < max_concurrent_) {
        std::string tenant;
        std::optional<Job> next = queue_.pop(&tenant);
        if (!next.has_value())
            break;
        if ((*next)->state == JobState::Swept)
            continue; // purged by a sweep; books already settled
        // Claim the job here, under the same lock hold that popped
        // it: once running_ counts it, a sweep must not expire it (the
        // closure's early return would leak the concurrency slot).
        (*next)->state = JobState::Dispatched;
        ++running_;
        --tenants_[tenant].queued;
        out->push_back(makeJob(std::move(*next)));
    }
}

void
SessionScheduler::drain()
{
    MutexLock lock(mutex_);
    draining_ = true;
    while (stats_.inFlight != 0)
        idle_cv_.wait(mutex_);
}

bool
SessionScheduler::draining() const
{
    MutexLock lock(mutex_);
    return draining_;
}

SessionScheduler::Stats
SessionScheduler::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

std::vector<std::pair<std::string, SessionScheduler::TenantStats>>
SessionScheduler::tenantStats() const
{
    MutexLock lock(mutex_);
    return {tenants_.begin(), tenants_.end()};
}

void
SessionScheduler::noteQuotaExceeded()
{
    MutexLock lock(mutex_);
    ++stats_.quotaExceeded;
}

void
SessionScheduler::noteBudgetExhausted(const std::string &tenant)
{
    MutexLock lock(mutex_);
    ++tenants_[tenant].budgetExhausted;
}

void
SessionScheduler::noteDegraded(const std::string &tenant)
{
    MutexLock lock(mutex_);
    ++tenants_[tenant].degraded;
}

void
SessionScheduler::noteCancelled(const std::string &tenant,
                                CancelReason why)
{
    MutexLock lock(mutex_);
    ++stats_.cancelled;
    ++tenants_[tenant].cancelled;
    if (why == CancelReason::DeadlineExceeded)
        ++stats_.expiredRunning;
}

void
SessionScheduler::noteShed(const std::string &tenant)
{
    MutexLock lock(mutex_);
    ++stats_.shed;
    ++tenants_[tenant].shed;
}

void
SessionScheduler::noteBrownout(const std::string &tenant)
{
    MutexLock lock(mutex_);
    ++stats_.brownout;
    ++tenants_[tenant].brownout;
}

} // namespace paqoc
