#include "service/scheduler.h"

#include <utility>

namespace paqoc {

SessionScheduler::Admit
SessionScheduler::submit(std::function<void()> work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
            ++stats_.rejected;
            return Admit::Draining;
        }
        if (stats_.inFlight >= max_queue_) {
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        ++stats_.accepted;
        ++stats_.inFlight;
    }

    auto job = [this, work = std::move(work), deadline,
                on_expired = std::move(on_expired)]() mutable {
        const bool expired = Clock::now() > deadline;
        try {
            if (expired) {
                if (on_expired)
                    on_expired();
            } else {
                work();
            }
        } catch (...) {
            // Handlers report their own errors over the wire; an
            // escaped exception must not take the worker down.
        }
        std::lock_guard<std::mutex> lock(mutex_);
        --stats_.inFlight;
        ++(expired ? stats_.expired : stats_.completed);
        if (stats_.inFlight == 0)
            idle_cv_.notify_all();
    };
    pool().submit(std::move(job));
    return Admit::Accepted;
}

void
SessionScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idle_cv_.wait(lock, [this]() { return stats_.inFlight == 0; });
}

bool
SessionScheduler::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

SessionScheduler::Stats
SessionScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace paqoc
