#include "service/scheduler.h"

#include <utility>

#include "common/failpoint.h"
#include "fleet/tenant.h"

namespace paqoc {

void
SessionScheduler::enableFairShare(
    const std::map<std::string, int> &weights,
    std::size_t max_concurrent)
{
    MutexLock lock(mutex_);
    fair_share_ = true;
    max_concurrent_ =
        max_concurrent > 0 ? max_concurrent : pool().size();
    if (max_concurrent_ == 0)
        max_concurrent_ = 1;
    for (const auto &entry : weights)
        queue_.setWeight(entry.first, entry.second);
}

SessionScheduler::Admit
SessionScheduler::submit(std::function<void()> work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired)
{
    return submit(fleet::kAnonymousTenant, std::move(work), deadline,
                  std::move(on_expired));
}

SessionScheduler::Admit
SessionScheduler::submit(const std::string &tenant,
                         std::function<void()> work,
                         Clock::time_point deadline,
                         std::function<void()> on_expired)
{
    std::vector<std::function<void()>> to_run;
    {
        const failpoint::Hit hit =
            failpoint::evaluate("scheduler.submit");
        MutexLock lock(mutex_);
        if (hit.action != failpoint::Action::Off
            && hit.action != failpoint::Action::DelayMs) {
            // Injected queue-full: exercises the client's reaction to
            // the `retry` backpressure response.
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        if (draining_) {
            ++stats_.rejected;
            return Admit::Draining;
        }
        if (stats_.inFlight >= max_queue_) {
            ++stats_.rejected;
            return Admit::Overloaded;
        }
        ++stats_.accepted;
        ++stats_.inFlight;
        ++tenants_[tenant].admitted;

        Pending pending{tenant, std::move(work), std::move(on_expired),
                        deadline};
        if (!fair_share_) {
            to_run.push_back(makeJob(std::move(pending)));
        } else {
            ++tenants_[tenant].queued;
            queue_.push(tenant, std::move(pending));
            pumpLocked(&to_run);
        }
    }
    for (auto &job : to_run)
        pool().submit(std::move(job));
    return Admit::Accepted;
}

std::function<void()>
SessionScheduler::makeJob(Pending pending)
{
    return [this, pending = std::move(pending)]() mutable {
        const bool expired = Clock::now() > pending.deadline;
        try {
            if (expired) {
                if (pending.onExpired)
                    pending.onExpired();
            } else {
                pending.work();
            }
        } catch (...) {
            // Handlers report their own errors over the wire; an
            // escaped exception must not take the worker down.
        }
        std::vector<std::function<void()>> to_run;
        {
            MutexLock lock(mutex_);
            --stats_.inFlight;
            ++(expired ? stats_.expired : stats_.completed);
            TenantStats &ts = tenants_[pending.tenant];
            ++(expired ? ts.expired : ts.completed);
            if (fair_share_) {
                --running_;
                pumpLocked(&to_run);
            }
            if (stats_.inFlight == 0)
                idle_cv_.notify_all();
        }
        for (auto &job : to_run)
            pool().submit(std::move(job));
    };
}

void
SessionScheduler::pumpLocked(std::vector<std::function<void()>> *out)
{
    while (running_ < max_concurrent_) {
        std::string tenant;
        std::optional<Pending> next = queue_.pop(&tenant);
        if (!next.has_value())
            break;
        ++running_;
        --tenants_[tenant].queued;
        out->push_back(makeJob(std::move(*next)));
    }
}

void
SessionScheduler::drain()
{
    MutexLock lock(mutex_);
    draining_ = true;
    while (stats_.inFlight != 0)
        idle_cv_.wait(mutex_);
}

bool
SessionScheduler::draining() const
{
    MutexLock lock(mutex_);
    return draining_;
}

SessionScheduler::Stats
SessionScheduler::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

std::vector<std::pair<std::string, SessionScheduler::TenantStats>>
SessionScheduler::tenantStats() const
{
    MutexLock lock(mutex_);
    return {tenants_.begin(), tenants_.end()};
}

void
SessionScheduler::noteQuotaExceeded()
{
    MutexLock lock(mutex_);
    ++stats_.quotaExceeded;
}

void
SessionScheduler::noteBudgetExhausted(const std::string &tenant)
{
    MutexLock lock(mutex_);
    ++tenants_[tenant].budgetExhausted;
}

void
SessionScheduler::noteDegraded(const std::string &tenant)
{
    MutexLock lock(mutex_);
    ++tenants_[tenant].degraded;
}

} // namespace paqoc
