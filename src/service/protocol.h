#ifndef PAQOC_SERVICE_PROTOCOL_H_
#define PAQOC_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "linalg/matrix.h"

namespace paqoc {

/**
 * Wire protocol of the pulse-compilation service (DESIGN.md §6): every
 * message is one *frame* -- a 4-byte big-endian payload length followed
 * by that many bytes of UTF-8 JSON. Requests are objects with an "op"
 * member ("compile" | "generate" | "stats" | "ping" | "shutdown");
 * responses carry {"ok": bool, "payload": ..., "stats": ...} or
 * {"ok": false, "error": "..."}.
 *
 * Multi-tenancy (DESIGN.md §12): a request may carry a "tenant"
 * string identifying who it is billed to; absent (or empty) means the
 * "anonymous" tenant. Tenant identity drives weighted fair-share
 * admission and the replenishing per-tenant budgets -- a tenant whose
 * budget is spent receives budgetExhaustedResponse until the sliding
 * window refunds enough spend.
 */
namespace protocol {

/** Upper bound on one frame; larger frames are a protocol error. */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Read one frame from `fd` into `out`. Returns false on clean EOF
 * before any byte of a frame; raises FatalError on a malformed length,
 * a mid-frame EOF, or an I/O error.
 */
bool readFrame(int fd, std::string &out);

/** Write one frame to `fd`; raises FatalError on I/O failure. */
void writeFrame(int fd, const std::string &payload);

/** JSON <-> Matrix: [[re,im], ...] in row-major order. */
Json matrixToJson(const Matrix &m);
Matrix matrixFromJson(const Json &j);

/** Standard failure response. */
Json errorResponse(const std::string &message);
/** Failure response the client should retry later (backpressure). */
Json overloadedResponse();
/**
 * Structured budget-violation response: {"ok": false, "error": ...,
 * "quota_exceeded": true, "limit": "max_iters" | "max_wall_ms" |
 * "max_resident_pulses"}. Not retryable -- the same request would
 * exhaust the same budget again.
 */
Json quotaExceededResponse(const std::string &limit,
                           const std::string &message);

/**
 * Structured tenant-budget response: {"ok": false, "error": ...,
 * "budget_exhausted": true, "tenant": ..., "retry_after_ms": N}.
 * Unlike quota_exceeded this IS retryable -- the sliding window
 * refunds spend, so the same request succeeds once `retry_after_ms`
 * milliseconds have replenished the tenant's bucket. The `retry`
 * member is deliberately absent: clients must not hot-loop on it the
 * way they do on backpressure.
 */
Json budgetExhaustedResponse(const std::string &tenant,
                             double retry_after_ms,
                             const std::string &message);

/**
 * Structured overload-shed response (DESIGN.md §15): {"ok": false,
 * "error": ..., "overload_shed": true, "tenant": ...,
 * "retry_after_ms": N}. Emitted by the adaptive overload ladder when
 * even degraded service cannot be offered. Like budget_exhausted it
 * carries no `retry` member: clients must back off for
 * `retry_after_ms`, not hot-loop.
 */
Json overloadShedResponse(const std::string &tenant,
                          double retry_after_ms,
                          const std::string &message);

/**
 * Structured cancellation response: {"ok": false, "error": ...,
 * "cancelled": true, "reason": "deadline_exceeded" |
 * "client_disconnected" | "explicit_cancel" | "overload_shed" |
 * "shutdown"}. Not retryable as-is -- the caller decided (or the
 * deadline decided) that the work should stop.
 */
Json cancelledResponse(const std::string &reason,
                       const std::string &message);

} // namespace protocol

} // namespace paqoc

#endif // PAQOC_SERVICE_PROTOCOL_H_
