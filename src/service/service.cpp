#include "service/service.h"

#include <exception>
#include <optional>

#include "circuit/qasm.h"
#include "common/error.h"
#include "qoc/device.h"
#include "qoc/pulse_io.h"
#include "service/protocol.h"
#include "transpile/decompose.h"
#include "transpile/sabre.h"
#include "transpile/topology.h"
#include "workloads/benchmarks.h"

namespace paqoc {

namespace {

Topology
topologyFromSpec(const std::string &spec)
{
    if (spec.rfind("line:", 0) == 0)
        return Topology::line(std::stoi(spec.substr(5)));
    const std::size_t x = spec.find('x');
    PAQOC_FATAL_IF(x == std::string::npos, "bad topology spec '", spec,
                   "' (expected WxH or line:N)");
    return Topology::grid(std::stoi(spec.substr(0, x)),
                          std::stoi(spec.substr(x + 1)));
}

/** Per-request budget overrides (absent members mean "no override"). */
QuotaLimits
quotaFromRequest(const Json &request)
{
    QuotaLimits q;
    q.maxIters = request.get("max_iters", Json(0)).asInt();
    q.maxWallMs = request.get("max_wall_ms", Json(0.0)).asNumber();
    q.maxResidentPulses =
        request.get("max_resident_pulses", Json(0)).asInt();
    return q;
}

} // namespace

CompileJob
compileJobFromJson(const Json &request)
{
    CompileJob job;
    const Json none;
    job.qasm = request.get("qasm", Json("")).asString();
    job.benchmark = request.get("benchmark", Json("")).asString();
    PAQOC_FATAL_IF(job.qasm.empty() == job.benchmark.empty(),
                   "compile request needs exactly one of 'qasm' or "
                   "'benchmark'");
    job.method =
        request.get("method", Json(job.method)).asString();
    PAQOC_FATAL_IF(job.method != "paqoc" && job.method != "accqoc",
                   "unknown method '", job.method, "'");
    const Json &m = request.get("m", none);
    if (m.isNumber())
        job.m = std::to_string(m.asInt());
    else if (m.isString())
        job.m = m.asString();
    job.depth = request.get("depth", Json(job.depth)).asInt();
    job.maxn = request.get("maxn", Json(job.maxn)).asInt();
    job.topology =
        request.get("topology", Json(job.topology)).asString();
    job.commute = request.get("commute", Json(false)).asBool();
    job.emitPulses =
        request.get("emit_pulses", Json(false)).asBool();
    job.backend =
        request.get("backend", Json(job.backend)).asString();
    PAQOC_FATAL_IF(job.backend != "spectral" && job.backend != "grape",
                   "unknown backend '", job.backend, "'");
    return job;
}

Json
compileJobToJson(const CompileJob &job)
{
    Json r = Json::object();
    r.set("op", Json("compile"));
    if (!job.qasm.empty())
        r.set("qasm", Json(job.qasm));
    if (!job.benchmark.empty())
        r.set("benchmark", Json(job.benchmark));
    r.set("method", Json(job.method));
    r.set("m", Json(job.m));
    r.set("depth", Json(job.depth));
    r.set("maxn", Json(job.maxn));
    r.set("topology", Json(job.topology));
    r.set("commute", Json(job.commute));
    r.set("emit_pulses", Json(job.emitPulses));
    r.set("backend", Json(job.backend));
    return r;
}

CompileReport
runCompileJob(const CompileJob &job, PulseGenerator &generator)
{
    const Topology topology = topologyFromSpec(job.topology);
    Circuit physical{1};
    if (!job.benchmark.empty()) {
        physical = workloads::makePhysical(job.benchmark, topology);
    } else {
        const Circuit logical = fromQasm(job.qasm);
        const Circuit cx_level = decomposeToCx(logical);
        const RoutingResult routed = sabreRoute(cx_level, topology);
        physical = decomposeToBasis(routed.physical);
    }

    if (job.method == "accqoc") {
        AccqocOptions opts;
        opts.maxN = job.maxn;
        opts.depth = job.depth;
        return compileAccqoc(physical, generator, opts);
    }
    PaqocOptions opts;
    if (job.m == "inf")
        opts.apaM = -1;
    else if (job.m == "tuned")
        opts.tuned = true;
    else
        opts.apaM = std::stoi(job.m);
    opts.merge.maxN = job.maxn;
    opts.miner.maxQubits = job.maxn;
    opts.merge.commutativityAware = job.commute;
    return compilePaqoc(physical, generator, opts);
}

Json
compilePayload(const CompileJob &job, const CompileReport &report,
               PulseGenerator &generator)
{
    Json payload = Json::object();
    payload.set("latency_dt", Json(report.latency));
    payload.set("esp", Json(report.esp));
    payload.set("final_gates", Json(report.finalGateCount));
    payload.set("merges", Json(report.merges));
    payload.set("apa_kinds", Json(report.apaKinds));
    payload.set("apa_uses", Json(report.apaUses));
    payload.set("gates_covered", Json(report.gatesCovered));
    if (job.emitPulses) {
        // Per customized gate, in circuit order: a deterministic pulse
        // document (waveforms when the backend produced them).
        Json pulses = Json::array();
        for (const Gate &g : report.circuit.gates()) {
            const PulseGenResult r =
                generator.generate(g.unitary(), g.arity());
            Json doc = Json::object();
            doc.set("qubits", Json(g.arity()));
            doc.set("latency_dt", Json(r.latency));
            doc.set("error", Json(r.error));
            if (r.degraded)
                doc.set("degraded", Json(true));
            if (r.schedule.has_value()) {
                const DeviceModel device(g.arity());
                doc.set("schedule",
                        Json::parse(pulseToJson(*r.schedule, device,
                                                r.degraded)));
            }
            pulses.push(std::move(doc));
        }
        payload.set("pulses", std::move(pulses));
    }
    return payload;
}

PulseService::PulseService(ServiceOptions options)
    : options_(std::move(options))
{
    if (!options_.checkpointDir.empty() && options_.checkpointEvery > 0)
        checkpoints_ = std::make_unique<CheckpointStore>(
            options_.checkpointDir,
            PulseLibrary::grapeFingerprint(options_.grape));
    if (options_.libraryDir.empty())
        return;
    PulseLibraryOptions lib_opts;
    lib_opts.syncEveryAppend = options_.syncEveryAppend;
    spectral_lib_ = std::make_unique<PulseLibrary>(
        options_.libraryDir + "/spectral",
        PulseLibrary::spectralFingerprint(), lib_opts);
    grape_lib_ = std::make_unique<PulseLibrary>(
        options_.libraryDir + "/grape",
        PulseLibrary::grapeFingerprint(options_.grape), lib_opts);
    // Freeze the serving epoch: whatever the libraries recovered is
    // what every request of this daemon lifetime starts from.
    epoch_spectral_ = spectral_lib_->entriesSnapshot();
    epoch_grape_ = grape_lib_->entriesSnapshot();
    // Chain the shared-tier write-behind sinks: every fresh local
    // derivation the libraries journal is also published to the tier
    // (tier-fetched entries are filtered by the library).
    if (options_.tierSpectral.sink != nullptr)
        spectral_lib_->setForwardSink(options_.tierSpectral.sink);
    if (options_.tierGrape.sink != nullptr)
        grape_lib_->setForwardSink(options_.tierGrape.sink);
}

void
PulseService::prepareCache(PulseCache &cache,
                           const std::string &backend) const
{
    const std::vector<CachedPulse> &epoch =
        backend == "grape" ? epoch_grape_ : epoch_spectral_;
    // Warm first, then attach: epoch entries must not echo back into
    // the journal.
    for (const CachedPulse &entry : epoch) {
        CachedPulse copy = entry;
        cache.insert(entry.unitary, entry.numQubits, std::move(copy));
    }
    PulseLibrary *lib = backend == "grape" ? grape_lib_.get()
                                           : spectral_lib_.get();
    const ServiceOptions::TierHooks &hooks = backend == "grape"
        ? options_.tierGrape
        : options_.tierSpectral;
    if (hooks.source != nullptr)
        cache.attachTier(hooks.source);
    if (lib != nullptr)
        cache.attachStore(lib);
    else if (hooks.sink != nullptr)
        // In-memory daemon with a tier: publish derivations straight
        // from the cache (there is no library to chain behind).
        cache.attachStore(hooks.sink);
}

Json
PulseService::handle(const Json &request)
{
    return handle(request, nullptr);
}

Json
PulseService::handle(const Json &request, const CancelToken *cancel)
{
    try {
        PAQOC_FATAL_IF(!request.isObject()
                           || !request.contains("op"),
                       "request must be an object with an 'op'");
        const std::string &op = request.at("op").asString();
        if (op == "ping") {
            Json r = Json::object();
            r.set("ok", Json(true));
            r.set("payload", Json("pong"));
            return r;
        }
        if (op == "stats") {
            Json r = Json::object();
            r.set("ok", Json(true));
            r.set("payload", statsJson());
            return r;
        }
        if (op == "shutdown") {
            shutdown_.store(true, std::memory_order_relaxed);
            Json r = Json::object();
            r.set("ok", Json(true));
            r.set("payload", Json("draining"));
            return r;
        }
        if (op == "compile")
            return handleCompile(request, cancel);
        if (op == "generate")
            return handleGenerate(request, cancel);
        errors_.fetch_add(1, std::memory_order_relaxed);
        return protocol::errorResponse("unknown op '" + op + "'");
    } catch (const CancelledError &e) {
        // Cancellation is the client's (or the deadline's) choice,
        // not a service failure. Whatever GRAPE progress existed was
        // checkpointed before the unwind, so a re-request of the same
        // key resumes byte-identically instead of restarting.
        cancelled_requests_.fetch_add(1, std::memory_order_relaxed);
        Json r = protocol::cancelledResponse(e.reasonName(), e.what());
        // Iterations burned before the trip still count against the
        // tenant's replenishing budget (same contract as quota trips).
        r.set("iters_charged",
              Json(static_cast<double>(e.itersCharged())));
        return r;
    } catch (const QuotaExceededError &e) {
        // A budget trip is an expected outcome of an oversized
        // request, not a service error; other sessions are untouched
        // (the per-request token never crosses requests).
        quota_rejections_.fetch_add(1, std::memory_order_relaxed);
        Json r = protocol::quotaExceededResponse(e.limit(), e.what());
        // Tripped work still burned compute: the fleet server charges
        // this against the tenant's replenishing budget.
        r.set("iters_charged",
              Json(static_cast<double>(e.itersCharged())));
        return r;
    } catch (const std::exception &e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return protocol::errorResponse(e.what());
    }
}

Json
PulseService::handleCompile(const Json &request,
                            const CancelToken *cancel)
{
    const CompileJob job = compileJobFromJson(request);
    // Per-request generators warmed from the frozen epoch: snapshot
    // isolation (see the class comment).
    SpectralPulseGenerator spectral;
    GrapePulseGenerator grape(options_.grape);
    grape.setSeedDistance(options_.grapeSeedDistance);
    if (checkpoints_)
        grape.setCheckpoints(checkpoints_.get(),
                             options_.checkpointEvery);
    PulseGenerator &generator =
        job.backend == "grape"
            ? static_cast<PulseGenerator &>(grape)
            : static_cast<PulseGenerator &>(spectral);
    // Per-request budget: server caps tightened by request overrides.
    // The token is attached even with no limit configured -- it then
    // never trips but still counts iterations, which the fleet server
    // charges against the tenant's replenishing budget.
    const QuotaLimits limits =
        resolveQuota(options_.quotaLimits, quotaFromRequest(request));
    QuotaToken quota(limits,
                     request.get("degrade_on_quota", Json(false))
                         .asBool());
    generator.setQuota(&quota);
    generator.setCancel(cancel);
    prepareCache(generator.cache(), job.backend);
    const CompileReport report = runCompileJob(job, generator);
    compiles_.fetch_add(1, std::memory_order_relaxed);
    pulse_calls_.fetch_add(report.pulseCalls,
                           std::memory_order_relaxed);
    cache_hits_.fetch_add(report.cacheHits, std::memory_order_relaxed);

    Json r = Json::object();
    r.set("ok", Json(true));
    r.set("payload", compilePayload(job, report, generator));
    Json stats = Json::object();
    stats.set("pulse_calls", Json(report.pulseCalls));
    stats.set("cache_hits", Json(report.cacheHits));
    stats.set("cost_units", Json(report.costUnits));
    stats.set("wall_seconds", Json(report.wallSeconds));
    stats.set("iters_charged",
              Json(static_cast<double>(quota.itersCharged())));
    r.set("stats", std::move(stats));
    return r;
}

Json
PulseService::handleGenerate(const Json &request,
                             const CancelToken *cancel)
{
    const std::string backend =
        request.get("backend", Json("grape")).asString();
    PAQOC_FATAL_IF(backend != "spectral" && backend != "grape",
                   "unknown backend '", backend, "'");
    const Json none;
    const Json &uj = request.get("unitary", none);
    PAQOC_FATAL_IF(!uj.isArray(),
                   "generate request needs a 'unitary' array");
    const Matrix unitary = protocol::matrixFromJson(uj);
    int num_qubits = 0;
    while ((std::size_t{1} << num_qubits) < unitary.rows())
        ++num_qubits;
    PAQOC_FATAL_IF((std::size_t{1} << num_qubits) != unitary.rows(),
                   "unitary dimension is not a power of two");
    if (request.contains("num_qubits"))
        PAQOC_FATAL_IF(request.at("num_qubits").asInt() != num_qubits,
                       "num_qubits does not match the unitary");

    SpectralPulseGenerator spectral;
    GrapePulseGenerator grape(options_.grape);
    grape.setSeedDistance(options_.grapeSeedDistance);
    if (checkpoints_)
        grape.setCheckpoints(checkpoints_.get(),
                             options_.checkpointEvery);
    PulseGenerator &generator = backend == "grape"
        ? static_cast<PulseGenerator &>(grape)
        : static_cast<PulseGenerator &>(spectral);
    const QuotaLimits limits =
        resolveQuota(options_.quotaLimits, quotaFromRequest(request));
    QuotaToken quota(limits,
                     request.get("degrade_on_quota", Json(false))
                         .asBool());
    generator.setQuota(&quota);
    generator.setCancel(cancel);
    prepareCache(generator.cache(), backend);
    const PulseGenResult result =
        generator.generate(unitary, num_qubits);
    generates_.fetch_add(1, std::memory_order_relaxed);
    pulse_calls_.fetch_add(1, std::memory_order_relaxed);
    cache_hits_.fetch_add(result.cacheHit ? 1 : 0,
                          std::memory_order_relaxed);
    if (result.degraded)
        degraded_pulses_.fetch_add(1, std::memory_order_relaxed);

    Json payload = Json::object();
    payload.set("qubits", Json(num_qubits));
    payload.set("latency_dt", Json(result.latency));
    payload.set("error", Json(result.error));
    if (result.degraded)
        payload.set("degraded", Json(true));
    if (result.schedule.has_value()) {
        const DeviceModel device(num_qubits);
        payload.set("schedule",
                    Json::parse(pulseToJson(*result.schedule, device,
                                            result.degraded)));
    }
    Json r = Json::object();
    r.set("ok", Json(true));
    r.set("payload", std::move(payload));
    Json stats = Json::object();
    stats.set("cache_hit", Json(result.cacheHit));
    stats.set("cost_units", Json(result.costUnits));
    stats.set("iters_charged",
              Json(static_cast<double>(quota.itersCharged())));
    r.set("stats", std::move(stats));
    return r;
}

void
PulseService::persist()
{
    if (spectral_lib_)
        spectral_lib_->compact();
    if (grape_lib_)
        grape_lib_->compact();
}

Json
PulseService::statsJson() const
{
    Json s = Json::object();
    Json serving = Json::object();
    serving.set("compiles",
                Json(compiles_.load(std::memory_order_relaxed)));
    serving.set("generates",
                Json(generates_.load(std::memory_order_relaxed)));
    serving.set("errors",
                Json(errors_.load(std::memory_order_relaxed)));
    serving.set("pulse_calls",
                Json(pulse_calls_.load(std::memory_order_relaxed)));
    serving.set("cache_hits",
                Json(cache_hits_.load(std::memory_order_relaxed)));
    serving.set("degraded_pulses",
                Json(degraded_pulses_.load(std::memory_order_relaxed)));
    serving.set("quota_rejections",
                Json(quota_rejections_.load(std::memory_order_relaxed)));
    serving.set(
        "cancelled",
        Json(cancelled_requests_.load(std::memory_order_relaxed)));
    s.set("serving", std::move(serving));
    // Process-level view for operators: how long this worker has been
    // up, whether a supervisor restarts it, and how much recovered
    // state it rode in on (satellite of DESIGN.md §10).
    Json daemon = Json::object();
    daemon.set(
        "uptime_seconds",
        Json(std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_time_)
                 .count()));
    daemon.set("supervised",
               Json(supervised_.load(std::memory_order_relaxed)));
    daemon.set("worker_restarts",
               Json(worker_restarts_.load(std::memory_order_relaxed)));
    std::size_t recovered = 0;
    if (spectral_lib_)
        recovered += spectral_lib_->stats().journalRecords;
    if (grape_lib_)
        recovered += grape_lib_->stats().journalRecords;
    daemon.set("journal_records_recovered", Json(recovered));
    s.set("daemon", std::move(daemon));
    Json ck = Json::object();
    ck.set("enabled", Json(checkpoints_ != nullptr));
    if (checkpoints_) {
        const CheckpointStore::Stats cs = checkpoints_->stats();
        ck.set("directory", Json(checkpoints_->directory()));
        ck.set("opened", Json(cs.opened));
        ck.set("lock_busy", Json(cs.lockBusy));
        ck.set("resumed_trials", Json(cs.resumedTrials));
        ck.set("completed_trial_hits", Json(cs.completedTrialHits));
        ck.set("records_recovered", Json(cs.recordsRecovered));
        ck.set("records_written", Json(cs.recordsWritten));
        ck.set("corrupt_records", Json(cs.corruptRecords));
        ck.set("rotated_files", Json(cs.rotatedFiles));
        ck.set("discarded", Json(cs.discarded));
        ck.set("failed_writes", Json(cs.failedWrites));
        Json warnings = Json::array();
        for (const std::string &w : cs.warnings)
            warnings.push(Json(w));
        ck.set("warnings", std::move(warnings));
    }
    s.set("checkpoints", std::move(ck));
    Json epoch = Json::object();
    epoch.set("spectral_pulses", Json(epoch_spectral_.size()));
    epoch.set("grape_pulses", Json(epoch_grape_.size()));
    s.set("epoch", std::move(epoch));
    auto lib = [](const PulseLibrary *l) {
        Json j = Json::object();
        if (l == nullptr) {
            j.set("attached", Json(false));
            return j;
        }
        const PulseLibraryStats st = l->stats();
        j.set("attached", Json(true));
        j.set("directory", Json(l->directory()));
        j.set("records", Json(l->size()));
        j.set("snapshot_records", Json(st.snapshotRecords));
        j.set("journal_records", Json(st.journalRecords));
        j.set("appended_records", Json(st.appendedRecords));
        j.set("corrupt_payloads", Json(st.corruptPayloads));
        j.set("dropped_tail_bytes",
              Json(static_cast<double>(st.droppedTailBytes)));
        j.set("degraded", Json(st.degraded));
        j.set("failed_appends", Json(st.failedAppends));
        j.set("skipped_degraded_pulses",
              Json(st.skippedDegradedPulses));
        Json warnings = Json::array();
        for (const std::string &w : st.warnings)
            warnings.push(Json(w));
        j.set("warnings", std::move(warnings));
        return j;
    };
    Json libraries = Json::object();
    libraries.set("spectral", lib(spectral_lib_.get()));
    libraries.set("grape", lib(grape_lib_.get()));
    s.set("libraries", std::move(libraries));
    if (options_.tierStats)
        s.set("tier", options_.tierStats());
    return s;
}

} // namespace paqoc
