#ifndef PAQOC_SERVICE_OVERLOAD_H_
#define PAQOC_SERVICE_OVERLOAD_H_

#include <chrono>
#include <functional>
#include <string>

#include "common/thread_annotations.h"

namespace paqoc {

/**
 * Adaptive overload control (DESIGN.md §15). The controller watches
 * *queue delay* -- how long admitted jobs sat before a worker picked
 * them up -- the CoDel insight being that a standing queue, not
 * instantaneous occupancy, is the reliable overload signal: a burst
 * that drains quickly keeps the windowed *minimum* delay near zero,
 * while sustained overload keeps even the luckiest job waiting.
 *
 * The windowed-min delay `d` against the target `t`
 * (`--overload-target-ms`) selects a brownout ladder rung:
 *
 *   d <= t    Nominal         serve normally
 *   d <= 2t   Brownout        serve reduced-iteration degraded pulses
 *                             (the degrade_on_quota machinery)
 *   d <= 4t   ShedOverBudget  shed tenants whose budget window is
 *                             spent; brown out everyone else
 *   d >  4t   ShedAll         shed with retry_after_ms
 *
 * Degrading before shedding keeps goodput nonzero under pressure;
 * shedding over-budget tenants first preserves fair-share isolation
 * when shedding starts. A shed answer is typed (`overload_shed` +
 * `retry_after_ms`), never the hot-retry backpressure response.
 *
 * The `overload.clock` failpoint overrides the observed delay with
 * its argument in milliseconds (e.g. `overload.clock=
 * return-error(250)` pins d at 250 ms), so tests walk the ladder
 * deterministically without generating real load.
 */
class OverloadController
{
  public:
    using Clock = std::chrono::steady_clock;

    struct Options
    {
        /** Queue-delay target in ms; 0 disables the controller. */
        double targetMs = 0.0;
        /** Sliding window over which the minimum delay is tracked. */
        double windowMs = 500.0;
        /** Iteration cap injected into brownout-degraded requests. */
        long brownoutIters = 8;
    };

    enum class Level
    {
        Nominal = 0,
        Brownout,
        ShedOverBudget,
        ShedAll,
    };

    OverloadController() = default;
    explicit OverloadController(const Options &options)
        : options_(options)
    {}

    bool enabled() const { return options_.targetMs > 0.0; }
    const Options &options() const { return options_; }

    /** Feed one queue-delay sample (scheduler's dispatch observer). */
    void observe(double delay_ms);

    /** Current ladder rung from the windowed-min delay. */
    Level level() const;

    /** Suggested client back-off for a shed response, in ms. */
    double retryAfterMs() const;

    /** Windowed-min queue delay the ladder is keyed on (stats op). */
    double minDelayMs() const;

    static const char *levelName(Level level);

  private:
    double effectiveMinLocked() const PAQOC_REQUIRES(mutex_);

    Options options_;
    mutable Mutex mutex_;
    /** Two-bucket windowed minimum: the live window and the previous
     *  one, so the signal neither flaps on window rollover nor holds
     *  stale peaks forever. */
    double current_min_ PAQOC_GUARDED_BY(mutex_) = -1.0;
    double previous_min_ PAQOC_GUARDED_BY(mutex_) = -1.0;
    Clock::time_point window_start_ PAQOC_GUARDED_BY(mutex_) =
        Clock::time_point::min();
    Clock::time_point last_sample_ PAQOC_GUARDED_BY(mutex_) =
        Clock::time_point::min();
};

} // namespace paqoc

#endif // PAQOC_SERVICE_OVERLOAD_H_
