#ifndef PAQOC_SERVICE_SUPERVISOR_H_
#define PAQOC_SERVICE_SUPERVISOR_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace paqoc {

/**
 * Process supervision for `paqocd --supervise` (DESIGN.md §10): the
 * parent forks a worker, watches a heartbeat pipe, and restarts the
 * worker on crash or hang with bounded, exponentially backed-off
 * restarts. This header and its .cpp are the only place in the tree
 * allowed to call fork()/kill()/waitpid() (lint rule
 * `process-control`), so all process management stays in one audited
 * file.
 *
 * State machine (one worker at a time):
 *
 *   SPAWN -> MONITOR --heartbeat EOF + exit 0--------> DONE
 *                    --crash (signal / nonzero exit)--> BACKOFF
 *                    --heartbeat silence > timeout----> KILL -> BACKOFF
 *                    --SIGTERM/SIGINT to supervisor---> FORWARD -> DONE
 *   BACKOFF --restarts left--> SPAWN (delay doubles, capped)
 *           --budget spent---> DONE (worker's last exit status)
 */
struct SupervisorOptions
{
    /** Restarts before giving up (crashes + hangs combined). */
    int maxRestarts = 5;
    /** First restart delay; doubles per restart. */
    double backoffMs = 200.0;
    double backoffCapMs = 30000.0;
    /** How often a healthy worker beats (WorkerContext carries it). */
    double heartbeatIntervalMs = 250.0;
    /**
     * Silence on the heartbeat pipe after which the worker counts as
     * hung and is SIGKILLed. 0 disables hang detection (the pipe then
     * only signals worker exit).
     */
    double heartbeatTimeoutMs = 5000.0;
    /** Supervisor-side event log (may be empty). */
    std::function<void(const std::string &)> log;
};

/** What a worker incarnation needs to know about its supervisor. */
struct WorkerContext
{
    /** 0 for the first spawn, incremented per restart. */
    int incarnation = 0;
    /** Write end of the heartbeat pipe; -1 when unsupervised. */
    int heartbeatFd = -1;
    double heartbeatIntervalMs = 250.0;
};

/**
 * Run `worker` under supervision. Forks from the calling (still
 * single-threaded) process; the child runs worker(ctx) and _exits
 * with its return value, the parent monitors and restarts per
 * `options`. Returns the final worker exit code: 0 after a clean
 * worker exit, the last worker status once the restart budget is
 * spent, or 128+signum when the supervisor itself was told to stop
 * and forwarded the signal.
 *
 * Fault injection: the environment variable PAQOC_WORKER_FAILPOINTS
 * (same grammar as PAQOC_FAILPOINTS) is armed inside the FIRST worker
 * incarnation only -- failpoint budgets are per-process, so this is
 * how a test crashes the worker exactly once and observes the
 * restarted incarnation serve cleanly.
 */
int runSupervised(const SupervisorOptions &options,
                  const std::function<int(const WorkerContext &)> &worker);

/**
 * RAII heartbeat of a supervised worker: a background thread writes
 * one byte per interval to the supervisor's pipe. Inert when fd < 0,
 * so unsupervised code paths construct it for free. The `heartbeat.stall`
 * failpoint suppresses beats (simulating a wedged worker) without
 * blocking this thread.
 */
class HeartbeatThread
{
  public:
    HeartbeatThread(int fd, double interval_ms);
    ~HeartbeatThread();

    HeartbeatThread(const HeartbeatThread &) = delete;
    HeartbeatThread &operator=(const HeartbeatThread &) = delete;

  private:
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

} // namespace paqoc

#endif // PAQOC_SERVICE_SUPERVISOR_H_
