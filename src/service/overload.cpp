#include "service/overload.h"

#include "common/failpoint.h"

namespace paqoc {

void
OverloadController::observe(double delay_ms)
{
    if (!enabled())
        return;
    MutexLock lock(mutex_);
    const Clock::time_point now = Clock::now();
    const double window_age =
        std::chrono::duration<double, std::milli>(now - window_start_)
            .count();
    if (window_start_ == Clock::time_point::min()
        || window_age >= options_.windowMs) {
        previous_min_ = current_min_;
        current_min_ = -1.0;
        window_start_ = now;
    }
    if (current_min_ < 0.0 || delay_ms < current_min_)
        current_min_ = delay_ms;
    last_sample_ = now;
}

double
OverloadController::effectiveMinLocked() const
{
    // An idle server is not overloaded: with no sample inside two
    // windows, the standing queue (if there ever was one) is gone.
    const Clock::time_point now = Clock::now();
    if (last_sample_ == Clock::time_point::min())
        return 0.0;
    const double silence_ms =
        std::chrono::duration<double, std::milli>(now - last_sample_)
            .count();
    if (silence_ms > 2.0 * options_.windowMs)
        return 0.0;
    double m = current_min_;
    if (previous_min_ >= 0.0 && (m < 0.0 || previous_min_ < m))
        m = previous_min_;
    return m < 0.0 ? 0.0 : m;
}

OverloadController::Level
OverloadController::level() const
{
    if (!enabled())
        return Level::Nominal;
    // Deterministic ladder walking for tests: the failpoint argument
    // substitutes for the measured delay.
    const failpoint::Hit hit = failpoint::evaluate("overload.clock");
    double d;
    if (hit.action != failpoint::Action::Off
        && hit.action != failpoint::Action::DelayMs) {
        d = static_cast<double>(hit.arg);
    } else {
        MutexLock lock(mutex_);
        d = effectiveMinLocked();
    }
    const double t = options_.targetMs;
    if (d <= t)
        return Level::Nominal;
    if (d <= 2.0 * t)
        return Level::Brownout;
    if (d <= 4.0 * t)
        return Level::ShedOverBudget;
    return Level::ShedAll;
}

double
OverloadController::retryAfterMs() const
{
    // Long enough for the standing queue to drain to target, short
    // enough that capacity freed by sheds is re-offered quickly.
    MutexLock lock(mutex_);
    const double d = effectiveMinLocked();
    const double floor_ms = options_.targetMs;
    return d > floor_ms ? d : floor_ms;
}

double
OverloadController::minDelayMs() const
{
    MutexLock lock(mutex_);
    return effectiveMinLocked();
}

const char *
OverloadController::levelName(Level level)
{
    switch (level) {
    case Level::Nominal:
        return "nominal";
    case Level::Brownout:
        return "brownout";
    case Level::ShedOverBudget:
        return "shed_over_budget";
    case Level::ShedAll:
        return "shed_all";
    }
    return "nominal";
}

} // namespace paqoc
