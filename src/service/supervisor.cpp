#include "service/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"

namespace paqoc {

namespace {

// Self-pipe for SIGTERM/SIGINT delivery into the supervisor's poll
// loop. Written from a signal handler, so it must be async-signal-safe
// raw I/O -- failpoints (which may lock or sleep) are off the table.
int g_signal_pipe[2] = {-1, -1};
volatile sig_atomic_t g_signal_seen = 0;

extern "C" void
supervisorSignalHandler(int signum)
{
    g_signal_seen = signum;
    const unsigned char byte = static_cast<unsigned char>(signum);
    // paqoc-lint: allow(raw-io) -- async-signal-safe handler
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void
makePipe(int fds[2])
{
    PAQOC_FATAL_IF(::pipe(fds) != 0, "supervisor: pipe(): ",
                   std::strerror(errno));
    for (int i = 0; i < 2; ++i)
        ::fcntl(fds[i], F_SETFD, FD_CLOEXEC);
    // The handler must never block on a full pipe.
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
}

void
say(const SupervisorOptions &options, const std::string &message)
{
    if (options.log)
        options.log(message);
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Drain all readable bytes; returns bytes read (0 on EOF, -1 on EAGAIN). */
ssize_t
drainPipe(int fd)
{
    char buf[256];
    ssize_t total = -1;
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            total = total < 0 ? n : total + n;
            continue;
        }
        if (n == 0)
            return 0; // EOF: all write ends closed -> worker gone
        if (errno == EINTR)
            continue;
        return total; // EAGAIN (or error): nothing more right now
    }
}

} // namespace

int
runSupervised(const SupervisorOptions &options,
              const std::function<int(const WorkerContext &)> &worker)
{
    makePipe(g_signal_pipe);
    // drainPipe() loops until EAGAIN, so the read end must never
    // block once the pending bytes are consumed.
    ::fcntl(g_signal_pipe[0], F_SETFL, O_NONBLOCK);

    struct sigaction sa{};
    sa.sa_handler = supervisorSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    int incarnation = 0;
    int last_status = 0;
    double backoff_ms = options.backoffMs;

    for (;;) {
        int heartbeat[2];
        makePipe(heartbeat);
        // Parent polls the read end; it must not block either.
        ::fcntl(heartbeat[0], F_SETFL, O_NONBLOCK);

        // fork() is safe here: the supervisor never spawns threads, so
        // the child starts with a consistent heap and no stuck locks.
        const pid_t pid = ::fork();
        PAQOC_FATAL_IF(pid < 0, "supervisor: fork(): ",
                       std::strerror(errno));
        if (pid == 0) {
            // Worker incarnation: default signal dispositions (the
            // daemon installs its own), no supervisor fds beyond the
            // heartbeat write end.
            ::signal(SIGTERM, SIG_DFL);
            ::signal(SIGINT, SIG_DFL);
            ::close(g_signal_pipe[0]);
            ::close(g_signal_pipe[1]);
            ::close(heartbeat[0]);
            if (incarnation == 0) {
                // Worker-only fault injection: budgets are per-process,
                // so arming only the first incarnation lets a chaos
                // test crash the worker exactly once and assert the
                // restarted one serves cleanly.
                const char *spec =
                    std::getenv("PAQOC_WORKER_FAILPOINTS");
                if (spec != nullptr && *spec != '\0')
                    failpoint::armFromSpec(spec);
            }
            WorkerContext ctx;
            ctx.incarnation = incarnation;
            ctx.heartbeatFd = heartbeat[1];
            ctx.heartbeatIntervalMs = options.heartbeatIntervalMs;
            int code = 1;
            try {
                code = worker(ctx);
            } catch (const std::exception &e) {
                // paqoc-lint: allow(printf-output) -- last words before _exit()
                std::fprintf(stderr, "paqocd worker: %s\n", e.what());
                code = 1;
            }
            std::fflush(nullptr);
            ::_exit(code);
        }

        // Supervisor side.
        ::close(heartbeat[1]);
        say(options, "worker incarnation "
                + std::to_string(incarnation) + " started (pid "
                + std::to_string(static_cast<long>(pid)) + ")");

        double last_beat_ms = nowMs();
        bool killed_for_hang = false;
        bool stop_forwarded = false;
        for (;;) {
            pollfd fds[2] = {{heartbeat[0], POLLIN, 0},
                             {g_signal_pipe[0], POLLIN, 0}};
            const int timeout =
                options.heartbeatTimeoutMs > 0.0
                ? static_cast<int>(std::max(
                      10.0, options.heartbeatTimeoutMs / 4.0))
                : -1;
            const int r = ::poll(fds, 2, timeout);
            if (r < 0 && errno != EINTR)
                break;

            if (fds[1].revents & POLLIN) {
                drainPipe(g_signal_pipe[0]);
                const int signum =
                    g_signal_seen != 0 ? g_signal_seen : SIGTERM;
                say(options, "forwarding signal "
                        + std::to_string(signum) + " to worker");
                ::kill(pid, signum);
                stop_forwarded = true;
                // Fall through: wait for the worker to exit below.
            }
            if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
                const ssize_t n = drainPipe(heartbeat[0]);
                if (n > 0)
                    last_beat_ms = nowMs();
                else if (n == 0)
                    break; // EOF: worker exited (or crashed)
            }
            if (!stop_forwarded && options.heartbeatTimeoutMs > 0.0
                && nowMs() - last_beat_ms
                    > options.heartbeatTimeoutMs) {
                say(options,
                    "worker heartbeat silent > "
                        + std::to_string(static_cast<long>(
                            options.heartbeatTimeoutMs))
                        + " ms; killing hung worker");
                ::kill(pid, SIGKILL);
                killed_for_hang = true;
                break;
            }
        }

        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        ::close(heartbeat[0]);
        last_status = status;

        if (stop_forwarded) {
            say(options, "worker stopped on forwarded signal");
            return WIFEXITED(status) ? WEXITSTATUS(status)
                                     : 128 + WTERMSIG(status);
        }
        if (!killed_for_hang && WIFEXITED(status)
            && WEXITSTATUS(status) == 0) {
            say(options, "worker exited cleanly");
            return 0;
        }

        const std::string why = killed_for_hang ? "hung"
            : WIFSIGNALED(status)
            ? "killed by signal " + std::to_string(WTERMSIG(status))
            : "exited with status "
                + std::to_string(WEXITSTATUS(status));
        if (incarnation >= options.maxRestarts) {
            say(options, "worker " + why + "; restart budget ("
                    + std::to_string(options.maxRestarts)
                    + ") spent, giving up");
            return WIFEXITED(last_status) ? WEXITSTATUS(last_status)
                                          : 128 + WTERMSIG(last_status);
        }
        say(options, "worker " + why + "; restarting in "
                + std::to_string(static_cast<long>(backoff_ms))
                + " ms");
        ::poll(nullptr, 0, static_cast<int>(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2.0, options.backoffCapMs);
        ++incarnation;
    }
}

HeartbeatThread::HeartbeatThread(int fd, double interval_ms)
{
    if (fd < 0)
        return;
    thread_ = std::thread([this, fd, interval_ms]() {
        const auto step = std::chrono::milliseconds(10);
        auto next = std::chrono::steady_clock::now();
        while (!stop_.load(std::memory_order_relaxed)) {
            if (std::chrono::steady_clock::now() >= next) {
                // heartbeat.stall simulates a wedged worker: the
                // process stays alive but its beats stop, which the
                // supervisor must treat as a hang.
                if (failpoint::evaluate("heartbeat.stall").action
                    == failpoint::Action::Off) {
                    const char byte = '.';
                    failpoint::checkedWrite("heartbeat.write", fd,
                                            &byte, 1);
                }
                next = std::chrono::steady_clock::now()
                    + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            std::max(1.0, interval_ms)));
            }
            std::this_thread::sleep_for(step);
        }
    });
}

HeartbeatThread::~HeartbeatThread()
{
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
}

} // namespace paqoc
