#include "qoc/pulse_io.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/json.h"

namespace paqoc {

std::string
pulseToCsv(const PulseSchedule &schedule, const DeviceModel &device)
{
    std::ostringstream oss;
    oss << "t";
    for (std::size_t k = 0; k < device.numControls(); ++k)
        oss << ',' << device.controlName(k);
    oss << '\n';
    char buf[32];
    for (int t = 0; t < schedule.numSlices(); ++t) {
        const auto &slice =
            schedule.amplitudes[static_cast<std::size_t>(t)];
        PAQOC_FATAL_IF(slice.size() != device.numControls(),
                       "schedule channel count does not match device");
        oss << t;
        for (double amp : slice) {
            std::snprintf(buf, sizeof buf, ",%.9g", amp);
            oss << buf;
        }
        oss << '\n';
    }
    return oss.str();
}

PulseSchedule
pulseFromCsv(const std::string &csv, const DeviceModel &device)
{
    std::istringstream in(csv);
    std::string line;
    PAQOC_FATAL_IF(!std::getline(in, line), "pulse csv: empty input");

    // Validate the header.
    {
        std::istringstream header(line);
        std::string cell;
        PAQOC_FATAL_IF(!std::getline(header, cell, ',') || cell != "t",
                       "pulse csv: header must start with 't'");
        for (std::size_t k = 0; k < device.numControls(); ++k) {
            PAQOC_FATAL_IF(!std::getline(header, cell, ','),
                           "pulse csv: missing channel column");
            PAQOC_FATAL_IF(cell != device.controlName(k),
                           "pulse csv: channel '", cell,
                           "' does not match device channel '",
                           device.controlName(k), "'");
        }
    }

    PulseSchedule schedule;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string cell;
        PAQOC_FATAL_IF(!std::getline(row, cell, ','), "pulse csv line ",
                       line_no, ": empty row");
        std::vector<double> slice;
        slice.reserve(device.numControls());
        while (std::getline(row, cell, ','))
            slice.push_back(std::stod(cell));
        PAQOC_FATAL_IF(slice.size() != device.numControls(),
                       "pulse csv line ", line_no, ": expected ",
                       device.numControls(), " channels, got ",
                       slice.size());
        schedule.amplitudes.push_back(std::move(slice));
    }
    return schedule;
}

std::string
pulseToJson(const PulseSchedule &schedule, const DeviceModel &device,
            bool degraded)
{
    Json doc = Json::object();
    doc.set("format", Json("paqoc-pulse-v1"));
    doc.set("num_qubits", Json(static_cast<double>(device.numQubits())));
    doc.set("dt_slices",
            Json(static_cast<double>(schedule.numSlices())));
    doc.set("latency_dt", Json(schedule.latency()));
    doc.set("fidelity", Json(schedule.fidelity));
    // Emitted only for stitched fallback pulses: healthy documents
    // stay byte-identical to pre-degraded-mode builds.
    if (degraded)
        doc.set("degraded", Json(true));
    Json channels = Json::array();
    for (std::size_t k = 0; k < device.numControls(); ++k)
        channels.push(Json(device.controlName(k)));
    doc.set("channels", std::move(channels));
    Json rows = Json::array();
    for (int t = 0; t < schedule.numSlices(); ++t) {
        const auto &slice =
            schedule.amplitudes[static_cast<std::size_t>(t)];
        PAQOC_FATAL_IF(slice.size() != device.numControls(),
                       "schedule channel count does not match device");
        Json row = Json::array();
        for (double amp : slice)
            row.push(Json(amp));
        rows.push(std::move(row));
    }
    doc.set("amplitudes", std::move(rows));
    return doc.dump();
}

PulseSchedule
pulseFromJson(const std::string &json, const DeviceModel &device)
{
    const Json doc = Json::parse(json);
    PAQOC_FATAL_IF(!doc.isObject(), "pulse json: expected an object");
    PAQOC_FATAL_IF(!doc.contains("format")
                       || doc.at("format").asString()
                              != "paqoc-pulse-v1",
                   "pulse json: missing or unsupported format tag");

    const Json &channels = doc.at("channels");
    PAQOC_FATAL_IF(channels.size() != device.numControls(),
                   "pulse json: expected ", device.numControls(),
                   " channels, got ", channels.size());
    for (std::size_t k = 0; k < device.numControls(); ++k)
        PAQOC_FATAL_IF(channels.at(k).asString()
                           != device.controlName(k),
                       "pulse json: channel '",
                       channels.at(k).asString(),
                       "' does not match device channel '",
                       device.controlName(k), "'");

    PulseSchedule schedule;
    schedule.fidelity = doc.at("fidelity").asNumber();
    const Json &rows = doc.at("amplitudes");
    PAQOC_FATAL_IF(!rows.isArray(),
                   "pulse json: 'amplitudes' must be an array");
    schedule.amplitudes.reserve(rows.size());
    for (std::size_t t = 0; t < rows.size(); ++t) {
        const Json &row = rows.at(t);
        PAQOC_FATAL_IF(row.size() != device.numControls(),
                       "pulse json slice ", t, ": expected ",
                       device.numControls(), " channels, got ",
                       row.size());
        std::vector<double> slice;
        slice.reserve(row.size());
        for (std::size_t k = 0; k < row.size(); ++k)
            slice.push_back(row.at(k).asNumber());
        schedule.amplitudes.push_back(std::move(slice));
    }
    PAQOC_FATAL_IF(doc.at("dt_slices").asInt()
                       != schedule.numSlices(),
                   "pulse json: dt_slices does not match the number of "
                   "amplitude rows");
    return schedule;
}

std::string
pulseToAscii(const PulseSchedule &schedule, const DeviceModel &device,
             int max_columns)
{
    PAQOC_FATAL_IF(max_columns < 8, "max_columns too small");
    const int slices = schedule.numSlices();
    if (slices == 0)
        return "(empty schedule)\n";
    const int stride = std::max(1, (slices + max_columns - 1)
                                       / max_columns);
    static const char levels[] = " .:-=+*#%@";

    std::ostringstream oss;
    for (std::size_t k = 0; k < device.numControls(); ++k) {
        oss << device.controlName(k);
        for (std::size_t pad = device.controlName(k).size(); pad < 6;
             ++pad)
            oss << ' ';
        oss << '|';
        const double bound = device.bound(k);
        for (int t = 0; t < slices; t += stride) {
            double amp = 0.0;
            int n = 0;
            for (int s = t; s < std::min(slices, t + stride); ++s) {
                amp += schedule
                           .amplitudes[static_cast<std::size_t>(s)][k];
                ++n;
            }
            amp /= std::max(n, 1);
            const double mag = std::min(std::abs(amp) / bound, 1.0);
            const int level = static_cast<int>(std::round(mag * 9.0));
            oss << levels[level];
        }
        oss << "|\n";
    }
    oss << "(" << slices << " dt, " << device.numControls()
        << " channels)\n";
    return oss.str();
}

} // namespace paqoc
