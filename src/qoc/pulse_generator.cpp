#include "qoc/pulse_generator.h"

#include <cmath>

#include "common/error.h"

namespace paqoc {

PulseGenResult
SpectralPulseGenerator::generate(const Matrix &unitary, int num_qubits)
{
    PulseGenResult result;
    const CachedPulse *hit =
        cache_enabled_ ? cache_.lookup(unitary, num_qubits) : nullptr;
    if (hit != nullptr) {
        result.latency = hit->latency;
        result.error = hit->error;
        result.cacheHit = true;
        result.costUnits = 0.0;
        record(result);
        return result;
    }
    result.latency = model_.latency(unitary, num_qubits);
    result.error = model_.pulseError(num_qubits, result.latency);
    result.costUnits = model_.compileCost(num_qubits, result.latency);

    CachedPulse entry;
    entry.latency = result.latency;
    entry.error = result.error;
    cache_.insert(unitary, num_qubits, std::move(entry));
    record(result);
    return result;
}

double
SpectralPulseGenerator::estimateLatency(const Matrix &unitary,
                                        int num_qubits)
{
    if (const CachedPulse *hit = cache_.lookup(unitary, num_qubits))
        return hit->latency;
    return model_.latency(unitary, num_qubits);
}

double
SpectralPulseGenerator::averageLatency(int num_qubits)
{
    return model_.averageLatency(num_qubits);
}

GrapePulseGenerator::GrapePulseGenerator(GrapeOptions options)
    : options_(options)
{}

PulseGenResult
GrapePulseGenerator::generate(const Matrix &unitary, int num_qubits)
{
    PulseGenResult result;
    if (const CachedPulse *hit = cache_.lookup(unitary, num_qubits)) {
        result.latency = hit->latency;
        result.error = hit->error;
        result.schedule = hit->schedule;
        result.cacheHit = true;
        record(result);
        return result;
    }

    // Warm-start from the nearest cached pulse if one is close; use
    // the analytical estimate to start the duration bracket.
    const CachedPulse *seed =
        cache_.nearest(unitary, num_qubits, seed_distance_);
    const int hint =
        static_cast<int>(model_.latency(unitary, num_qubits));
    const MinDurationResult min_dur = findMinimumDuration(
        DeviceModel(num_qubits), unitary, options_, hint,
        seed != nullptr ? &seed->schedule : nullptr);

    result.latency = min_dur.schedule.latency();
    result.error = 1.0 - min_dur.schedule.fidelity;
    result.schedule = min_dur.schedule;
    const double dim = std::pow(2.0, num_qubits);
    result.costUnits = static_cast<double>(min_dur.totalIterations)
        * result.latency * dim * dim * dim;

    CachedPulse entry;
    entry.latency = result.latency;
    entry.error = result.error;
    entry.schedule = min_dur.schedule;
    cache_.insert(unitary, num_qubits, std::move(entry));
    record(result);
    return result;
}

double
GrapePulseGenerator::estimateLatency(const Matrix &unitary, int num_qubits)
{
    if (const CachedPulse *hit = cache_.lookup(unitary, num_qubits))
        return hit->latency;
    return model_.latency(unitary, num_qubits);
}

double
GrapePulseGenerator::averageLatency(int num_qubits)
{
    return model_.averageLatency(num_qubits);
}

} // namespace paqoc
