#include "qoc/pulse_generator.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"

namespace paqoc {

PulseGenResult
PulseGenerator::generate(const Matrix &unitary, int num_qubits)
{
    const PulseGenResult result = generateOne(
        unitary, num_qubits, nullptr,
        std::numeric_limits<std::uint64_t>::max());
    record(result);
    return result;
}

std::vector<PulseGenResult>
PulseGenerator::generateBatch(const std::vector<PulseRequest> &requests,
                              ThreadPool *pool)
{
    std::vector<PulseGenResult> out(requests.size());
    if (requests.empty())
        return out;

    // Snapshot the warm-start horizon before anything runs: in-batch
    // inserts stay invisible to similarity queries, so seeding cannot
    // depend on which request completes first.
    const std::uint64_t horizon = cache_.generation();

    // Dedup identical canonical unitaries so the batch behaves exactly
    // like its serial replay: the first occurrence computes, later
    // ones become cache hits no matter which thread would have won the
    // single-flight race.
    std::vector<std::size_t> primary(requests.size());
    std::vector<std::size_t> distinct;
    distinct.reserve(requests.size());
    if (dedupBatch()) {
        std::unordered_map<std::string, std::size_t> first;
        first.reserve(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const std::string key = PulseCache::canonicalKey(
                requests[i].unitary, requests[i].numQubits);
            const auto [it, inserted] = first.emplace(key, i);
            primary[i] = it->second;
            if (inserted)
                distinct.push_back(i);
        }
    } else {
        for (std::size_t i = 0; i < requests.size(); ++i) {
            primary[i] = i;
            distinct.push_back(i);
        }
    }

    auto run_one = [&](std::size_t j) {
        // Items not yet started stop here once the request is
        // cancelled; the one mid-derivation stops at its next GRAPE
        // iteration poll. Throwing before acquire() leaves no flight
        // to abort.
        if (const CancelToken *c = cancel();
            c != nullptr && c->cancelled())
            c->throwCancelled(quota() != nullptr
                                  ? quota()->itersCharged()
                                  : 0);
        const PulseRequest &r = requests[distinct[j]];
        out[distinct[j]] =
            generateOne(r.unitary, r.numQubits, pool, horizon);
    };
    if (pool != nullptr && distinct.size() > 1)
        pool->parallelFor(distinct.size(), run_one);
    else
        for (std::size_t j = 0; j < distinct.size(); ++j)
            run_one(j);

    // Fold duplicates and record in request order so the counters
    // accumulate exactly as a serial loop would.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (primary[i] != i) {
            PulseGenResult dup = out[primary[i]];
            dup.cacheHit = true;
            dup.costUnits = 0.0;
            out[i] = std::move(dup);
        }
        record(out[i]);
    }
    return out;
}

PulseGenResult
SpectralPulseGenerator::generateOne(const Matrix &unitary, int num_qubits,
                                    ThreadPool *pool,
                                    std::uint64_t nearest_horizon)
{
    (void)pool;
    (void)nearest_horizon;
    PulseGenResult result;
    if (cache_enabled_) {
        const PulseCache::Acquired acq =
            cache_.acquire(unitary, num_qubits);
        if (acq.role != PulseCache::FlightRole::Leader) {
            result.latency = acq.entry->latency;
            result.error = acq.entry->error;
            result.cacheHit = true;
            result.costUnits = 0.0;
            return result;
        }
    }
    try {
        // Shared-tier read-through (DESIGN.md §14): the leader asks
        // the tier before computing. A verified hit publishes exactly
        // like a local derivation, so joiners and the durable library
        // see no difference.
        if (cache_enabled_) {
            if (PulseTierSource *tier = cache_.tierSource()) {
                if (std::optional<CachedPulse> fetched = tier->fetch(
                        PulseCache::canonicalKey(unitary, num_qubits),
                        cancel())) {
                    result.latency = fetched->latency;
                    result.error = fetched->error;
                    result.cacheHit = true;
                    result.costUnits = 0.0;
                    fetched->fromTier = true;
                    cache_.completeFlight(unitary, num_qubits,
                                          std::move(*fetched));
                    return result;
                }
            }
        }
        chargeResidentPulse();
        result.latency = model_.latency(unitary, num_qubits);
        result.error = model_.pulseError(num_qubits, result.latency);
        result.costUnits = model_.compileCost(num_qubits, result.latency);
    } catch (...) {
        if (cache_enabled_)
            cache_.abortFlight(unitary, num_qubits);
        throw;
    }

    CachedPulse entry;
    entry.latency = result.latency;
    entry.error = result.error;
    if (cache_enabled_)
        cache_.completeFlight(unitary, num_qubits, std::move(entry));
    else
        cache_.insert(unitary, num_qubits, std::move(entry));
    return result;
}

double
SpectralPulseGenerator::estimateLatency(const Matrix &unitary,
                                        int num_qubits)
{
    if (const std::optional<CachedPulse> hit =
            cache_.find(unitary, num_qubits))
        return hit->latency;
    return model_.latency(unitary, num_qubits);
}

double
SpectralPulseGenerator::averageLatency(int num_qubits)
{
    return model_.averageLatency(num_qubits);
}

GrapePulseGenerator::GrapePulseGenerator(GrapeOptions options)
    : options_(options)
{}

PulseGenResult
GrapePulseGenerator::generateOne(const Matrix &unitary, int num_qubits,
                                 ThreadPool *pool,
                                 std::uint64_t nearest_horizon)
{
    PulseGenResult result;
    const PulseCache::Acquired acq = cache_.acquire(unitary, num_qubits);
    if (acq.role != PulseCache::FlightRole::Leader) {
        result.latency = acq.entry->latency;
        result.error = acq.entry->error;
        result.schedule = acq.entry->schedule;
        result.cacheHit = true;
        result.degraded = acq.entry->degraded;
        return result;
    }

    try {
        // Shared-tier read-through (DESIGN.md §14): ask the tier
        // before spending GRAPE iterations. A verified hit costs zero
        // iterations and zero quota, and publishes exactly like a
        // local derivation -- GRAPE is a pure function of (unitary,
        // fingerprint-pinned config), so the fetched bytes are the
        // bytes a local run would have produced.
        if (PulseTierSource *tier = cache_.tierSource()) {
            if (std::optional<CachedPulse> fetched = tier->fetch(
                    PulseCache::canonicalKey(unitary, num_qubits),
                    cancel())) {
                result.latency = fetched->latency;
                result.error = fetched->error;
                result.schedule = fetched->schedule;
                result.cacheHit = true;
                result.costUnits = 0.0;
                fetched->fromTier = true;
                cache_.completeFlight(unitary, num_qubits,
                                      std::move(*fetched));
                return result;
            }
        }
        chargeResidentPulse();
        // Crash safety: resume this derivation's GRAPE progress if a
        // checkpoint for the canonical key survived a previous
        // process (DESIGN.md §10). A null checkpoint (not configured,
        // or the file is locked by another worker) changes nothing.
        std::unique_ptr<GrapeCheckpoint> ckpt;
        if (checkpoints_ != nullptr && checkpoint_every_ > 0)
            ckpt = checkpoints_->openCheckpoint(
                PulseCache::canonicalKey(unitary, num_qubits));
        GrapeRuntime runtime;
        runtime.pool = pool;
        runtime.checkpoint = ckpt.get();
        runtime.checkpointEvery = checkpoint_every_;
        runtime.quota = quota();
        // A cancelled derivation unwinds through the catch below:
        // abortFlight re-races the waiters, so a live joiner takes
        // over leadership instead of inheriting a dead leader's hang.
        runtime.cancel = cancel();

        // Warm-start from the nearest pulse cached before the horizon
        // if one is close; use the analytical estimate to start the
        // duration bracket.
        const std::optional<CachedPulse> seed = cache_.nearestBefore(
            unitary, num_qubits, seed_distance_, nearest_horizon);
        const int hint =
            static_cast<int>(model_.latency(unitary, num_qubits));
        const DeviceModel device(num_qubits);
        MinDurationResult min_dur = findMinimumDuration(
            device, unitary, options_, hint,
            seed.has_value() ? &seed->schedule : nullptr, runtime);
        int iterations = min_dur.totalIterations;

        if (!min_dur.converged) {
            // GRAPE hit the duration cap below the fidelity target.
            // Stitch a corrective segment onto the best effort: run
            // one more optimization against the residual unitary
            // (target applied after undoing what the pulse already
            // achieves) and concatenate, instead of silently handing
            // back a low-fidelity pulse. Deterministic for the same
            // reason every GRAPE run is: seeds derive from the
            // residual's content hash.
            const Matrix achieved =
                schedulePropagator(device, min_dur.schedule);
            const Matrix residual = unitary * achieved.adjoint();
            const GrapeResult corrective = grapeOptimize(
                device, residual,
                std::max(1, min_dur.schedule.numSlices()), options_,
                nullptr, runtime);
            min_dur.schedule.amplitudes.insert(
                min_dur.schedule.amplitudes.end(),
                corrective.schedule.amplitudes.begin(),
                corrective.schedule.amplitudes.end());
            min_dur.schedule.fidelity =
                scheduleFidelity(device, unitary, min_dur.schedule);
            iterations += corrective.iterations;
            result.degraded = true;
        }

        result.latency = min_dur.schedule.latency();
        result.error = 1.0 - min_dur.schedule.fidelity;
        result.schedule = min_dur.schedule;
        const double dim = std::pow(2.0, num_qubits);
        result.costUnits = static_cast<double>(iterations)
            * result.latency * dim * dim * dim;

        CachedPulse entry;
        entry.latency = result.latency;
        entry.error = result.error;
        entry.schedule = min_dur.schedule;
        entry.degraded = result.degraded;
        cache_.completeFlight(unitary, num_qubits, std::move(entry));
        // Published (and, when a store is attached, journaled): the
        // checkpoint has nothing left to protect.
        if (ckpt)
            ckpt->discard();
    } catch (...) {
        cache_.abortFlight(unitary, num_qubits);
        throw;
    }
    return result;
}

double
GrapePulseGenerator::estimateLatency(const Matrix &unitary, int num_qubits)
{
    if (const std::optional<CachedPulse> hit =
            cache_.find(unitary, num_qubits))
        return hit->latency;
    return model_.latency(unitary, num_qubits);
}

double
GrapePulseGenerator::averageLatency(int num_qubits)
{
    return model_.averageLatency(num_qubits);
}

} // namespace paqoc
