#ifndef PAQOC_QOC_DEVICE_H_
#define PAQOC_QOC_DEVICE_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Control-Hamiltonian model of a transmon subsystem with XY coupling,
 * the platform of the paper's evaluation (Section VI: control field
 * limit u_max = 0.02 GHz for two-qubit XY terms, 5 * u_max for
 * single-qubit rotation fields; we express amplitudes in rad/dt).
 *
 * The device covers only the local qubits of one customized gate
 * (1 to ~3 qubits), with sigma_x/sigma_y drives per qubit and an
 * (XX + YY)/2 exchange control per coupled pair. The drift Hamiltonian
 * is zero in the rotating frame; Eq. (1) of the paper then reduces to
 * H(t) = sum_k alpha_k(t) H_k, which is exactly what GRAPE optimizes.
 */
class DeviceModel
{
  public:
    /** Amplitude bound of the XY exchange control, in rad/dt. */
    static constexpr double kTwoQubitBound = 0.02;
    /** Amplitude bound of single-qubit drives (5 * u_max). */
    static constexpr double kOneQubitBound = 0.1;

    /**
     * Build a model over n local qubits coupled along the given edges.
     * Edges default to a path 0-1-...-(n-1), which is the coupling
     * shape of any connected <=3-qubit region of a grid.
     */
    explicit DeviceModel(int num_qubits,
                         std::vector<std::pair<int, int>> couplings = {});

    int numQubits() const { return num_qubits_; }
    std::size_t dim() const { return std::size_t{1} << num_qubits_; }

    std::size_t numControls() const { return controls_.size(); }
    const Matrix &control(std::size_t k) const { return controls_[k]; }
    double bound(std::size_t k) const { return bounds_[k]; }
    const std::string &controlName(std::size_t k) const
    { return names_[k]; }

    /**
     * Assemble H(t) for one time slice given the control amplitudes
     * (one per control, already bounded).
     */
    Matrix sliceHamiltonian(const std::vector<double> &amplitudes) const;

    /**
     * Workspace variant: assembles H(t) into `h` (resized as needed)
     * with no temporaries. Bit-identical to sliceHamiltonian; this is
     * what the GRAPE inner loop calls once per slice per iteration.
     */
    void sliceHamiltonianInto(const std::vector<double> &amplitudes,
                              Matrix &h) const;

  private:
    int num_qubits_;
    std::vector<Matrix> controls_;
    std::vector<double> bounds_;
    std::vector<std::string> names_;
};

} // namespace paqoc

#endif // PAQOC_QOC_DEVICE_H_
