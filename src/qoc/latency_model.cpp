#include "qoc/latency_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/unitary_util.h"
#include "qoc/device.h"

namespace paqoc {

double
SpectralLatencyModel::effectiveRate(int num_qubits)
{
    switch (num_qubits) {
      case 1:
        // Both sigma_x and sigma_y drives available at 5 * u_max.
        return DeviceModel::kOneQubitBound;
      default:
        // Entangling content is bottlenecked by the XY exchange at
        // u_max; the factor is calibrated so the modeled CX duration
        // matches GRAPE's measured minimum (~86 dt).
        return DeviceModel::kTwoQubitBound * 0.45;
    }
}

double
SpectralLatencyModel::latency(const Matrix &unitary, int num_qubits) const
{
    PAQOC_FATAL_IF(num_qubits < 1, "bad qubit count");
    PAQOC_ASSERT(unitary.rows() == (std::size_t{1} << num_qubits),
                 "unitary does not match qubit count");
    // Split quantum-speed-limit model: local generator content runs on
    // the strong single-qubit drives concurrently with the entangling
    // content on the weak exchange couplings. Adjacent-pair content
    // uses separate exchange channels concurrently (so the slowest
    // channel bounds the time); weight->=3 and non-adjacent content
    // (largely BCH residue of composing different channels) adds on
    // top at the exchange rate.
    const PauliSplitNorms norms = pauliSplitNorms(unitary, num_qubits);
    const double local_slices =
        std::ceil(norms.localNorm / effectiveRate(1));
    const double ent_slices = num_qubits >= 2
        ? std::ceil((norms.adjacentPairNorm + norms.hardNorm)
                    / effectiveRate(2))
        : 0.0;
    return std::max({kFloor, local_slices, ent_slices});
}

double
SpectralLatencyModel::averageLatency(int num_qubits) const
{
    // Typical entangling content of a Haar-ish random target is
    // O(pi/2); local content rides along on the fast drives.
    constexpr double kTypicalPhase = 1.57;
    if (num_qubits == 1) {
        return std::max(kFloor,
                        std::ceil(kTypicalPhase / effectiveRate(1)));
    }
    return std::max(kFloor,
                    std::ceil(0.5 * kTypicalPhase
                              / effectiveRate(num_qubits)));
}

double
SpectralLatencyModel::pulseError(int num_qubits, double latency) const
{
    const double err = 1.5e-3 * num_qubits + 2.0e-5 * latency;
    return std::min(err, 0.5);
}

double
SpectralLatencyModel::compileCost(int num_qubits, double latency) const
{
    // GRAPE work model: iterations grow mildly with width; per
    // iteration cost is slices x dim^3 (propagators dominate).
    const double dim = std::pow(2.0, num_qubits);
    const double iterations = 60.0 * num_qubits;
    const double trials = 8.0; // duration binary-search probes
    return trials * iterations * latency * dim * dim * dim;
}

} // namespace paqoc
