#ifndef PAQOC_QOC_PULSE_CACHE_H_
#define PAQOC_QOC_PULSE_CACHE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"
#include "qoc/pulse.h"

namespace paqoc {

/** One cached pulse-generation outcome. */
struct CachedPulse
{
    double latency = 0.0;
    double error = 0.0;
    PulseSchedule schedule; // empty for model-generated entries
    Matrix unitary;         // canonical-form target, for similarity
    int numQubits = 0;
};

/**
 * Lookup table of previously generated pulses (paper Section V-B).
 *
 * Keys are canonical forms of the target unitary: global phase is
 * normalized away and, because a <=3-qubit connected region of the
 * grid couples as a path, the qubit order may be reversed without
 * changing the control problem -- both orientations map to one key.
 * The cache also serves nearest-neighbor queries so a similar cached
 * pulse can seed GRAPE (the AccQOC-style warm start PAQOC adopts).
 */
class PulseCache
{
  public:
    PulseCache() = default;

    /** Exact canonical lookup. */
    const CachedPulse *lookup(const Matrix &unitary, int num_qubits) const;

    /** Insert (or overwrite) the entry for a unitary. */
    void insert(const Matrix &unitary, int num_qubits, CachedPulse entry);

    /**
     * Closest cached entry of the same width within max_distance
     * (global-phase-invariant Frobenius distance), or nullptr.
     */
    const CachedPulse *nearest(const Matrix &unitary, int num_qubits,
                               double max_distance) const;

    std::size_t size() const { return entries_.size(); }
    std::size_t hits() const { return hits_; }

    /**
     * Persist the database to disk (the paper's offline/online split,
     * contribution 5: pulses generated offline -- e.g. for APA-basis
     * gates mined from a parameterized circuit -- are reloaded by the
     * online compilation and served as cache hits).
     */
    void save(const std::string &path) const;

    /** Merge a previously saved database into this one. */
    void load(const std::string &path);

    /** Canonical string key (exposed for tests). */
    static std::string canonicalKey(const Matrix &unitary, int num_qubits);

  private:
    std::unordered_map<std::string, CachedPulse> entries_;
    mutable std::size_t hits_ = 0;
};

} // namespace paqoc

#endif // PAQOC_QOC_PULSE_CACHE_H_
