#ifndef PAQOC_QOC_PULSE_CACHE_H_
#define PAQOC_QOC_PULSE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_annotations.h"
#include "linalg/matrix.h"
#include "qoc/pulse.h"

namespace paqoc {

/** One cached pulse-generation outcome. */
struct CachedPulse
{
    double latency = 0.0;
    double error = 0.0;
    PulseSchedule schedule; // empty for model-generated entries
    Matrix unitary;         // canonical-form target, for similarity
    int numQubits = 0;
    /**
     * Stitched best-effort fallback (GRAPE missed the target fidelity
     * at the duration cap). Served for the session so repeated
     * requests stay cheap and consistent, but excluded from save()
     * and from the durable library. Not serialized.
     */
    bool degraded = false;
    /**
     * Monotone insertion stamp (see PulseCache::generation). Batch
     * drivers bound similarity queries by the generation observed at
     * batch start, so warm-start selection is independent of the
     * order concurrent inserts land in (nearestBefore breaks distance
     * ties on the canonical key, never on this stamp, because stamps
     * within a batch are assigned in completion order). Not serialized.
     */
    std::uint64_t generation = 0;
    /**
     * Entry was fetched from the shared network tier rather than
     * derived locally. The durable library still journals it (that is
     * the read-through contract) but does not forward it back to the
     * tier -- the tier already has it. Not serialized.
     */
    bool fromTier = false;
};

/**
 * Observer of cache inserts, implemented by the durable pulse library
 * (src/store/pulse_library.h). Attached via PulseCache::attachStore;
 * every published entry (completed flight, direct insert, or database
 * load) is forwarded *after* the cache lock is released, so a sink may
 * block on I/O without stalling readers. Sinks must not call back into
 * the cache.
 */
class PulseStoreSink
{
  public:
    virtual ~PulseStoreSink() = default;
    /** `key` is PulseCache::canonicalKey of the entry's unitary. */
    virtual void onInsert(const std::string &key,
                          const CachedPulse &entry) = 0;
};

/**
 * Read-through source consulted on a cache miss, implemented by the
 * shared-tier client (src/tier/tier_client.h). The elected single-
 * flight leader calls fetch() *before* computing; a returned entry is
 * published through completeFlight exactly as a locally derived pulse
 * would be, so joiners and the durable library see no difference.
 * fetch() runs outside the cache lock (it does network I/O), must
 * never throw, and returns nullopt on miss, timeout, open breaker, or
 * a corrupt (quarantined) entry -- any nullopt simply means "compute
 * locally", which is how the tier stays strictly an accelerator.
 */
class PulseTierSource
{
  public:
    virtual ~PulseTierSource() = default;
    /** `key` is PulseCache::canonicalKey of the wanted unitary. */
    virtual std::optional<CachedPulse> fetch(const std::string &key) = 0;

    /**
     * Deadline/cancellation-aware fetch: `cancel` (may be null) is
     * the enclosing request's token. An implementation should return
     * nullopt immediately when the token is cancelled or its
     * remaining deadline cannot fund a full tier op -- "compute
     * locally" is always the right degradation. The default forwards
     * to the plain overload so existing sources stay correct.
     */
    virtual std::optional<CachedPulse>
    fetch(const std::string &key, const CancelToken *cancel)
    {
        (void)cancel;
        return fetch(key);
    }
};

/**
 * Lookup table of previously generated pulses (paper Section V-B).
 *
 * Keys are canonical forms of the target unitary: global phase is
 * normalized away and, because a <=3-qubit connected region of the
 * grid couples as a path, the qubit order may be reversed without
 * changing the control problem -- both orientations map to one key.
 * The cache also serves nearest-neighbor queries so a similar cached
 * pulse can seed GRAPE (the AccQOC-style warm start PAQOC adopts).
 *
 * Concurrency: all operations are internally locked, and generation
 * is coordinated through a *single-flight* protocol -- concurrent
 * requests for the same canonical unitary block on the one in-flight
 * computation instead of duplicating it:
 *
 *   auto acq = cache.acquire(u, n);
 *   if (acq.role == FlightRole::Leader) {
 *       // compute the pulse, then publish it:
 *       cache.completeFlight(u, n, entry);   // or abortFlight on error
 *   } else {
 *       // Hit (already cached) or Joined (another thread computed it
 *       // while we waited): acq.entry holds a copy.
 *   }
 *
 * The pointer-returning lookup()/nearest() remain for single-threaded
 * use (tests, serial tools); concurrent code must use acquire() and
 * nearestBefore(), which hand out copies.
 */
class PulseCache
{
  public:
    PulseCache() = default;

    /** How acquire() resolved a request. */
    enum class FlightRole
    {
        Hit,    ///< already cached; entry returned
        Joined, ///< waited on another thread's in-flight run
        Leader, ///< caller must compute and completeFlight/abortFlight
    };

    struct Acquired
    {
        FlightRole role = FlightRole::Leader;
        /** Present for Hit and Joined. */
        std::optional<CachedPulse> entry;
    };

    /**
     * Single-flight entry point: returns the cached entry, waits for
     * an in-flight computation of the same key, or elects the caller
     * leader (who must publish via completeFlight or abortFlight).
     */
    Acquired acquire(const Matrix &unitary, int num_qubits);

    /** Publish a leader's result and wake all joined waiters. */
    void completeFlight(const Matrix &unitary, int num_qubits,
                        CachedPulse entry);

    /**
     * Abandon a leader's flight (exception path). Waiters re-race;
     * one of them becomes the new leader.
     */
    void abortFlight(const Matrix &unitary, int num_qubits);

    /**
     * Exact canonical lookup. Single-threaded use only: the returned
     * pointer is into the table and is not protected against a
     * concurrent overwrite of the same key.
     */
    const CachedPulse *lookup(const Matrix &unitary, int num_qubits) const;

    /** Exact canonical lookup returning a copy (thread-safe). */
    std::optional<CachedPulse> find(const Matrix &unitary,
                                    int num_qubits) const;

    /** Insert (or overwrite) the entry for a unitary. */
    void insert(const Matrix &unitary, int num_qubits, CachedPulse entry);

    /**
     * Closest cached entry of the same width within max_distance
     * (global-phase-invariant Frobenius distance), or nullptr.
     * Single-threaded use only; see lookup().
     */
    const CachedPulse *nearest(const Matrix &unitary, int num_qubits,
                               double max_distance) const;

    /**
     * Thread-safe nearest query restricted to entries inserted before
     * `generation_bound` (copy returned). Batch drivers snapshot
     * generation() at batch start and pass it here so every request
     * in the batch seeds against the same, deterministic view of the
     * cache no matter how the batch is scheduled.
     */
    std::optional<CachedPulse> nearestBefore(
        const Matrix &unitary, int num_qubits, double max_distance,
        std::uint64_t generation_bound) const;

    std::size_t size() const;
    std::size_t hits() const
    { return hits_.load(std::memory_order_relaxed); }

    /** Count of inserts so far; stamps CachedPulse::generation. */
    std::uint64_t generation() const
    { return generation_.load(std::memory_order_relaxed); }

    /**
     * Persist the database to disk (the paper's offline/online split,
     * contribution 5: pulses generated offline -- e.g. for APA-basis
     * gates mined from a parameterized circuit -- are reloaded by the
     * online compilation and served as cache hits).
     */
    void save(const std::string &path) const;

    /**
     * Merge a previously saved database into this one. All-or-nothing:
     * a malformed or truncated file raises FatalError naming the bad
     * line and leaves the cache untouched.
     */
    void load(const std::string &path);

    /**
     * Attach a durable store: every entry published from now on is
     * forwarded to `sink` (null detaches). Call during single-threaded
     * setup, after warming the cache from the store -- entries already
     * present are NOT replayed to the sink.
     */
    void attachStore(PulseStoreSink *sink);

    /**
     * Attach the shared-tier read-through source (null detaches).
     * Same setup discipline as attachStore. Generators consult it via
     * tierSource() after winning a single-flight election.
     */
    void attachTier(PulseTierSource *tier);

    /** The attached tier source, or nullptr. */
    PulseTierSource *tierSource() const;

    /** Canonical string key (exposed for tests). */
    static std::string canonicalKey(const Matrix &unitary, int num_qubits);

  private:
    /**
     * One in-flight computation awaited by joiners. All fields are
     * protected by the owning cache's mutex_ (a nested struct cannot
     * name the outer instance's capability in an annotation, so the
     * contract is enforced by the four sites that touch a Flight, each
     * of which holds mutex_).
     */
    struct Flight
    {
        bool done = false;
        bool aborted = false;
        std::optional<CachedPulse> result;
        CondVar cv;
    };

    void insertLocked(const std::string &key, const Matrix &unitary,
                      int num_qubits, CachedPulse &&entry)
        PAQOC_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::unordered_map<std::string, CachedPulse> entries_
        PAQOC_GUARDED_BY(mutex_);
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
        PAQOC_GUARDED_BY(mutex_);
    mutable std::atomic<std::size_t> hits_{0};
    std::atomic<std::uint64_t> generation_{0};
    /** Set in single-threaded setup; read under mutex_. */
    PulseStoreSink *sink_ PAQOC_GUARDED_BY(mutex_) = nullptr;
    /** Set in single-threaded setup; reads are lock-free. */
    std::atomic<PulseTierSource *> tier_{nullptr};
};

} // namespace paqoc

#endif // PAQOC_QOC_PULSE_CACHE_H_
