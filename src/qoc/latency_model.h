#ifndef PAQOC_QOC_LATENCY_MODEL_H_
#define PAQOC_QOC_LATENCY_MODEL_H_

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Analytical pulse-latency model built on the quantum speed limit.
 *
 * For a target unitary U = exp(-iA), the minimal evolution time under
 * bounded controls scales with ||A||_spec / u_effective, where
 * ||A||_spec is the global-phase-optimized spectral phase norm
 * (linalg/unitary_util.h) and u_effective is the aggregate control
 * strength available at that qubit count (strong single-qubit drives
 * for 1q targets; the weak u_max = 0.02 XY exchange bottleneck for
 * entangling targets).
 *
 * The model reproduces the paper's two empirical observations from its
 * 150-benchmark study (Section III-B) by construction:
 *
 *  - Observation 1 (merging same-width gates never increases latency):
 *    the phase norm is subadditive under matrix products.
 *  - Observation 2 (wider gates cost more): the effective control rate
 *    drops with qubit count.
 *
 * GRAPE (grape.h) remains the ground truth; tests cross-check that
 * GRAPE-measured latencies respect the model's ordering.
 */
class SpectralLatencyModel
{
  public:
    SpectralLatencyModel() = default;

    /** Latency in dt units to realize U on num_qubits qubits. */
    double latency(const Matrix &unitary, int num_qubits) const;

    /**
     * Average latency of a gate of the given width, used when the
     * criticality analysis needs a width-based estimate before any
     * pulse exists (paper Section V-A, Case I).
     */
    double averageLatency(int num_qubits) const;

    /**
     * Modeled pulse error |U - H(t)| of a gate of the given width and
     * latency: a per-gate calibration floor plus duration-proportional
     * leakage. Feeds the ESP product of Eq. (2).
     */
    double pulseError(int num_qubits, double latency) const;

    /**
     * Modeled compilation cost (arbitrary units proportional to GRAPE
     * work): iterations x slices x dim^3 for a gate of this width and
     * latency. Used by the compile-time harness alongside wall clock.
     */
    double compileCost(int num_qubits, double latency) const;

    /** Effective control rate (rad/dt) at a given width. */
    static double effectiveRate(int num_qubits);

  private:
    /** Minimum slices of any pulse (hardware AWG granularity). */
    static constexpr double kFloor = 2.0;
};

} // namespace paqoc

#endif // PAQOC_QOC_LATENCY_MODEL_H_
