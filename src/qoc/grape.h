#ifndef PAQOC_QOC_GRAPE_H_
#define PAQOC_QOC_GRAPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/quota.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "qoc/device.h"
#include "qoc/pulse.h"

namespace paqoc {

/** Knobs of the GRAPE optimizer (gradient ascent + ADAM). */
struct GrapeOptions
{
    /** Stop when 1 - fidelity drops below this. */
    double targetInfidelity = 1e-3;
    /** Maximum ADAM iterations per duration trial. */
    int maxIterations = 300;
    /** ADAM learning rate (in units of the control bound). */
    double learningRate = 0.05;
    /**
     * Base seed mixed with the target-unitary hash and the slice
     * count, so every (target, duration) pair draws the same initial
     * pulse regardless of which thread or batch position runs it.
     */
    std::uint64_t seed = 7;
    /**
     * Independent random restarts per fixed-duration run; the best
     * outcome wins (converged first, then fidelity, then lowest
     * restart index). Restarts are independent tasks and run
     * concurrently on the pulse engine's thread pool.
     */
    int restarts = 1;
    /**
     * Candidate slice counts evaluated per round of the minimum-
     * duration search. 1 reproduces the classic sequential binary
     * search; k >= 2 probes k durations concurrently per round,
     * shrinking the bracket by k+1 instead of 2. The probe set is a
     * pure function of the bracket, so results do not depend on the
     * thread count.
     */
    int durationProbes = 3;
};

/** Outcome of one fixed-duration GRAPE run. */
struct GrapeResult
{
    PulseSchedule schedule;
    bool converged = false;
    /** ADAM iterations spent, summed over all restarts. */
    int iterations = 0;
};

/**
 * Identity of one GRAPE trial inside a pulse derivation. Trials are
 * pure functions of (target, duration, restart) -- the same key always
 * produces the same bytes -- which is what makes checkpoint replay
 * sound: a recovered trial result is exactly what a live re-run would
 * compute (DESIGN.md §10).
 */
struct GrapeTrialKey
{
    std::uint64_t targetHash = 0;
    int numSlices = 0;
    int restart = 0;
};

/**
 * Resumable snapshot of an in-progress trial. The ADAM loop is a pure
 * function of these doubles (the trial RNG is consumed entirely by the
 * initial seeding, before the first snapshot), so restoring them and
 * continuing at `iteration + 1` reproduces the uninterrupted run
 * bit for bit.
 */
struct GrapeTrialState
{
    GrapeTrialKey key;
    /** ADAM iterations completed when the snapshot was taken. */
    int iteration = 0;
    double bestFidelity = 0.0;
    std::vector<std::vector<double>> u; // amplitudes [slice][control]
    std::vector<std::vector<double>> m; // ADAM first moment
    std::vector<std::vector<double>> v; // ADAM second moment
    std::vector<std::vector<double>> bestU;
};

/**
 * Checkpoint of one pulse derivation (one canonical cache key).
 * Completed trials are memoized verbatim; at most the interrupted
 * trial resumes mid-flight. Implementations must be thread-safe:
 * concurrent duration probes save from pool threads.
 */
class GrapeCheckpoint
{
  public:
    virtual ~GrapeCheckpoint() = default;

    /** Recorded result of a finished trial, if any. */
    virtual std::optional<GrapeResult>
    completedTrial(const GrapeTrialKey &key) const = 0;

    /** Latest mid-trial snapshot for `key`, if any. */
    virtual std::optional<GrapeTrialState>
    trialState(const GrapeTrialKey &key) const = 0;

    /** Persist a mid-trial snapshot (best effort, never throws). */
    virtual void saveTrialState(const GrapeTrialState &state) = 0;

    /** Persist a finished trial (best effort, never throws). */
    virtual void saveCompletedTrial(const GrapeTrialKey &key,
                                    const GrapeResult &result) = 0;

    /** The derivation published durably; drop the checkpoint. */
    virtual void discard() = 0;
};

/** Hands out per-derivation checkpoints keyed by canonical cache key. */
class GrapeCheckpointProvider
{
  public:
    virtual ~GrapeCheckpointProvider() = default;

    /**
     * Open (recovering if present) the checkpoint for one canonical
     * key. May return nullptr (e.g. the file is locked by another
     * process); callers then run without checkpointing.
     */
    virtual std::unique_ptr<GrapeCheckpoint>
    openCheckpoint(const std::string &canonical_key) = 0;
};

/**
 * Cache of slice propagators exp(-i H(u) dt) shared by the duration
 * probes of one minimum-duration search. Adjacent probes seeded from
 * the same initial guess resample the same source slices, so their
 * first fidelity evaluations exponentiate many identical slice
 * Hamiltonians; the cache computes each once.
 *
 * Keys are the exact amplitude bytes and values are pure functions of
 * the key, so concurrent probes may look up and insert in any order
 * without affecting a single bit of any result -- which is what keeps
 * the engine's thread-count determinism intact. Entries are capped;
 * past the cap inserts are dropped (a cache miss only costs time).
 */
class PropagatorCache
{
  public:
    /** Copy the cached propagator for `amplitudes` into `out`. */
    bool lookup(const std::vector<double> &amplitudes,
                Matrix &out) const;

    /** Record a propagator (dropped beyond the entry cap). */
    void insert(const std::vector<double> &amplitudes,
                const Matrix &propagator);

    std::size_t size() const;

  private:
    static constexpr std::size_t kMaxEntries = 4096;

    mutable Mutex mutex_;
    std::map<std::vector<double>, Matrix> entries_
        PAQOC_GUARDED_BY(mutex_);
};

/**
 * Execution context threaded through a GRAPE derivation. Default
 * constructed it changes nothing: no pool, no checkpointing, no
 * quota -- the optimizer follows the exact legacy code path.
 */
struct GrapeRuntime
{
    ThreadPool *pool = nullptr;
    /** Checkpoint of this derivation (may be null). */
    GrapeCheckpoint *checkpoint = nullptr;
    /** Snapshot every N ADAM iterations (0 disables snapshots). */
    int checkpointEvery = 0;
    /** Cooperative budget of the enclosing request (may be null). */
    QuotaToken *quota = nullptr;
    /**
     * Cancellation token of the enclosing request (may be null).
     * Polled once per ADAM iteration; a cancelled trial snapshots its
     * end-of-iteration state first (checkpoint-before-cancel) and
     * then unwinds with CancelledError, so a re-request resumes
     * byte-identically instead of restarting (DESIGN.md §15).
     */
    const CancelToken *cancel = nullptr;
    /**
     * Shared propagator cache (may be null). Only consulted for the
     * first fidelity evaluation of guess-seeded trials, where reuse
     * across duration probes actually occurs; never changes results.
     */
    PropagatorCache *propCache = nullptr;
};

/**
 * Optimize a piecewise-constant pulse of num_slices slices to realize
 * the target unitary on the device, via GRAPE with first-order
 * gradients and ADAM updates; amplitudes are clipped to the per-control
 * bounds each step. An optional initial guess (e.g., a similar cached
 * pulse, per AccQOC) warm-starts the optimization; it is resized to
 * num_slices if needed. When a pool is given, restarts (and the
 * backward-pass gradient loop on 3-qubit devices) run as parallel
 * tasks; results are identical for any pool size.
 */
GrapeResult grapeOptimize(const DeviceModel &device, const Matrix &target,
                          int num_slices, const GrapeOptions &options = {},
                          const PulseSchedule *initial_guess = nullptr,
                          ThreadPool *pool = nullptr);

/**
 * As above, with a full runtime: checkpointed trials replay from (or
 * resume into) `runtime.checkpoint`, and `runtime.quota` is charged
 * one unit per ADAM iteration. With a default runtime this is exactly
 * the legacy overload.
 */
GrapeResult grapeOptimize(const DeviceModel &device, const Matrix &target,
                          int num_slices, const GrapeOptions &options,
                          const PulseSchedule *initial_guess,
                          const GrapeRuntime &runtime);

/** Result of the minimum-duration search. */
struct MinDurationResult
{
    PulseSchedule schedule;
    /** Total GRAPE iterations spent across all duration trials. */
    int totalIterations = 0;
    /** Number of duration trials evaluated. */
    int trials = 0;
    /**
     * False when even the duration cap failed to reach the target
     * fidelity; `schedule` then holds the best pulse found at the
     * cap. Callers degrade gracefully (PulseGenerator stitches a
     * corrective segment and tags the result) instead of crashing.
     */
    bool converged = true;
};

/**
 * Find (by exponential bracketing + multi-probe binary search,
 * Section V-B) the minimum pulse duration at which GRAPE reaches the
 * target fidelity, and return the pulse at that duration.
 *
 * With options.durationProbes >= 2 and a pool, each round's candidate
 * durations are optimized concurrently. The candidate set depends
 * only on the bracket (never on the pool), so the found duration,
 * trial count, and iteration totals are bit-identical for any thread
 * count, including the serial pool-less path.
 *
 * @param latency_hint Optional starting point for the bracket (e.g.,
 *        the analytical model's estimate); 0 means unknown.
 */
MinDurationResult findMinimumDuration(
    const DeviceModel &device, const Matrix &target,
    const GrapeOptions &options = {}, int latency_hint = 0,
    const PulseSchedule *initial_guess = nullptr,
    ThreadPool *pool = nullptr);

/**
 * As above with a full runtime. The candidate set is a pure function
 * of the bracket and every trial is a pure function of its key, so a
 * search resumed from a checkpoint walks the exact same candidates --
 * completed trials replay from the checkpoint and only the
 * interrupted one computes, yielding a byte-identical result.
 */
MinDurationResult findMinimumDuration(
    const DeviceModel &device, const Matrix &target,
    const GrapeOptions &options, int latency_hint,
    const PulseSchedule *initial_guess, const GrapeRuntime &runtime);

/** Propagator realized by playing `schedule` on `device`. */
Matrix schedulePropagator(const DeviceModel &device,
                          const PulseSchedule &schedule);

/** Trace fidelity |Tr(target^dag U_schedule)|^2 / d^2. */
double scheduleFidelity(const DeviceModel &device, const Matrix &target,
                        const PulseSchedule &schedule);

} // namespace paqoc

#endif // PAQOC_QOC_GRAPE_H_
