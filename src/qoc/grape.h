#ifndef PAQOC_QOC_GRAPE_H_
#define PAQOC_QOC_GRAPE_H_

#include <optional>

#include "qoc/device.h"
#include "qoc/pulse.h"

namespace paqoc {

/** Knobs of the GRAPE optimizer (gradient ascent + ADAM). */
struct GrapeOptions
{
    /** Stop when 1 - fidelity drops below this. */
    double targetInfidelity = 1e-3;
    /** Maximum ADAM iterations per duration trial. */
    int maxIterations = 300;
    /** ADAM learning rate (in units of the control bound). */
    double learningRate = 0.05;
    /** Seed for the random initial pulse. */
    std::uint64_t seed = 7;
};

/** Outcome of one fixed-duration GRAPE run. */
struct GrapeResult
{
    PulseSchedule schedule;
    bool converged = false;
    int iterations = 0;
};

/**
 * Optimize a piecewise-constant pulse of num_slices slices to realize
 * the target unitary on the device, via GRAPE with first-order
 * gradients and ADAM updates; amplitudes are clipped to the per-control
 * bounds each step. An optional initial guess (e.g., a similar cached
 * pulse, per AccQOC) warm-starts the optimization; it is resized to
 * num_slices if needed.
 */
GrapeResult grapeOptimize(const DeviceModel &device, const Matrix &target,
                          int num_slices, const GrapeOptions &options = {},
                          const PulseSchedule *initial_guess = nullptr);

/** Result of the minimum-duration search. */
struct MinDurationResult
{
    PulseSchedule schedule;
    /** Total GRAPE iterations spent across all duration trials. */
    int totalIterations = 0;
    /** Number of duration trials evaluated. */
    int trials = 0;
};

/**
 * Find (by exponential bracketing + binary search, Section V-B) the
 * minimum pulse duration at which GRAPE reaches the target fidelity,
 * and return the pulse at that duration.
 *
 * @param latency_hint Optional starting point for the bracket (e.g.,
 *        the analytical model's estimate); 0 means unknown.
 */
MinDurationResult findMinimumDuration(
    const DeviceModel &device, const Matrix &target,
    const GrapeOptions &options = {}, int latency_hint = 0,
    const PulseSchedule *initial_guess = nullptr);

} // namespace paqoc

#endif // PAQOC_QOC_GRAPE_H_
