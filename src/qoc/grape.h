#ifndef PAQOC_QOC_GRAPE_H_
#define PAQOC_QOC_GRAPE_H_

#include <optional>

#include "common/thread_pool.h"
#include "qoc/device.h"
#include "qoc/pulse.h"

namespace paqoc {

/** Knobs of the GRAPE optimizer (gradient ascent + ADAM). */
struct GrapeOptions
{
    /** Stop when 1 - fidelity drops below this. */
    double targetInfidelity = 1e-3;
    /** Maximum ADAM iterations per duration trial. */
    int maxIterations = 300;
    /** ADAM learning rate (in units of the control bound). */
    double learningRate = 0.05;
    /**
     * Base seed mixed with the target-unitary hash and the slice
     * count, so every (target, duration) pair draws the same initial
     * pulse regardless of which thread or batch position runs it.
     */
    std::uint64_t seed = 7;
    /**
     * Independent random restarts per fixed-duration run; the best
     * outcome wins (converged first, then fidelity, then lowest
     * restart index). Restarts are independent tasks and run
     * concurrently on the pulse engine's thread pool.
     */
    int restarts = 1;
    /**
     * Candidate slice counts evaluated per round of the minimum-
     * duration search. 1 reproduces the classic sequential binary
     * search; k >= 2 probes k durations concurrently per round,
     * shrinking the bracket by k+1 instead of 2. The probe set is a
     * pure function of the bracket, so results do not depend on the
     * thread count.
     */
    int durationProbes = 3;
};

/** Outcome of one fixed-duration GRAPE run. */
struct GrapeResult
{
    PulseSchedule schedule;
    bool converged = false;
    /** ADAM iterations spent, summed over all restarts. */
    int iterations = 0;
};

/**
 * Optimize a piecewise-constant pulse of num_slices slices to realize
 * the target unitary on the device, via GRAPE with first-order
 * gradients and ADAM updates; amplitudes are clipped to the per-control
 * bounds each step. An optional initial guess (e.g., a similar cached
 * pulse, per AccQOC) warm-starts the optimization; it is resized to
 * num_slices if needed. When a pool is given, restarts (and the
 * backward-pass gradient loop on 3-qubit devices) run as parallel
 * tasks; results are identical for any pool size.
 */
GrapeResult grapeOptimize(const DeviceModel &device, const Matrix &target,
                          int num_slices, const GrapeOptions &options = {},
                          const PulseSchedule *initial_guess = nullptr,
                          ThreadPool *pool = nullptr);

/** Result of the minimum-duration search. */
struct MinDurationResult
{
    PulseSchedule schedule;
    /** Total GRAPE iterations spent across all duration trials. */
    int totalIterations = 0;
    /** Number of duration trials evaluated. */
    int trials = 0;
    /**
     * False when even the duration cap failed to reach the target
     * fidelity; `schedule` then holds the best pulse found at the
     * cap. Callers degrade gracefully (PulseGenerator stitches a
     * corrective segment and tags the result) instead of crashing.
     */
    bool converged = true;
};

/**
 * Find (by exponential bracketing + multi-probe binary search,
 * Section V-B) the minimum pulse duration at which GRAPE reaches the
 * target fidelity, and return the pulse at that duration.
 *
 * With options.durationProbes >= 2 and a pool, each round's candidate
 * durations are optimized concurrently. The candidate set depends
 * only on the bracket (never on the pool), so the found duration,
 * trial count, and iteration totals are bit-identical for any thread
 * count, including the serial pool-less path.
 *
 * @param latency_hint Optional starting point for the bracket (e.g.,
 *        the analytical model's estimate); 0 means unknown.
 */
MinDurationResult findMinimumDuration(
    const DeviceModel &device, const Matrix &target,
    const GrapeOptions &options = {}, int latency_hint = 0,
    const PulseSchedule *initial_guess = nullptr,
    ThreadPool *pool = nullptr);

/** Propagator realized by playing `schedule` on `device`. */
Matrix schedulePropagator(const DeviceModel &device,
                          const PulseSchedule &schedule);

/** Trace fidelity |Tr(target^dag U_schedule)|^2 / d^2. */
double scheduleFidelity(const DeviceModel &device, const Matrix &target,
                        const PulseSchedule &schedule);

} // namespace paqoc

#endif // PAQOC_QOC_GRAPE_H_
