#include "qoc/grape.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/expm.h"
#include "linalg/unitary_util.h"

namespace paqoc {

namespace {

/** Trace of a * b without forming the product matrix. */
Complex
traceOfProduct(const Matrix &a, const Matrix &b)
{
    const std::size_t n = a.rows();
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k)
            t += a(i, k) * b(k, i);
    return t;
}

/** One ADAM-optimized GRAPE state. */
class GrapeRun
{
  public:
    GrapeRun(const DeviceModel &device, const Matrix &target,
             int num_slices, const GrapeOptions &opts)
        : device_(device), target_(target), opts_(opts),
          n_slices_(num_slices),
          n_controls_(device.numControls()),
          dim_(device.dim())
    {
        u_.assign(static_cast<std::size_t>(n_slices_),
                  std::vector<double>(n_controls_, 0.0));
        m_.assign(u_.size(), std::vector<double>(n_controls_, 0.0));
        v_.assign(u_.size(), std::vector<double>(n_controls_, 0.0));
    }

    void
    seedRandom(Rng &rng)
    {
        for (auto &slice : u_)
            for (std::size_t k = 0; k < n_controls_; ++k)
                slice[k] = 0.5 * device_.bound(k)
                    * rng.uniform(-1.0, 1.0);
    }

    void
    seedFrom(const PulseSchedule &guess)
    {
        // Stretch or shrink the guess to the new slice count by
        // nearest-neighbor resampling, then clip to bounds.
        const int src = guess.numSlices();
        if (src == 0)
            return;
        for (int t = 0; t < n_slices_; ++t) {
            const int s = std::min(src - 1, t * src / n_slices_);
            for (std::size_t k = 0; k < n_controls_; ++k) {
                const double amp =
                    k < guess.amplitudes[static_cast<std::size_t>(s)]
                            .size()
                        ? guess.amplitudes[static_cast<std::size_t>(s)][k]
                        : 0.0;
                u_[static_cast<std::size_t>(t)][k] = std::clamp(
                    amp, -device_.bound(k), device_.bound(k));
            }
        }
    }

    GrapeResult optimize();

  private:
    double fidelityAndGradient(std::vector<std::vector<double>> &grad);

    const DeviceModel &device_;
    const Matrix &target_;
    const GrapeOptions &opts_;
    int n_slices_;
    std::size_t n_controls_;
    std::size_t dim_;

    std::vector<std::vector<double>> u_; // amplitudes [slice][control]
    std::vector<std::vector<double>> m_; // ADAM first moment
    std::vector<std::vector<double>> v_; // ADAM second moment
};

double
GrapeRun::fidelityAndGradient(std::vector<std::vector<double>> &grad)
{
    const double d = static_cast<double>(dim_);

    // Forward pass: slice propagators and prefix products F_t.
    std::vector<Matrix> props(static_cast<std::size_t>(n_slices_));
    std::vector<Matrix> prefix(static_cast<std::size_t>(n_slices_));
    Matrix acc = Matrix::identity(dim_);
    for (int t = 0; t < n_slices_; ++t) {
        const Matrix h = device_.sliceHamiltonian(
            u_[static_cast<std::size_t>(t)]);
        props[static_cast<std::size_t>(t)] = expmPropagator(h, 1.0);
        acc = props[static_cast<std::size_t>(t)] * acc;
        prefix[static_cast<std::size_t>(t)] = acc;
    }
    const Complex g = traceOfProduct(target_.adjoint(), acc);
    const double fidelity = std::norm(g) / (d * d);

    // Backward pass: R_t = target^dag * U_N ... U_{t+1}; the gradient
    // of |g|^2/d^2 w.r.t. amplitude u_{t,k} with the first-order
    // propagator derivative -i dt H_k U_t is
    //   (2/d^2) * Re( conj(g) * Tr(R_t * (-i) * H_k * F_t) ).
    Matrix r = target_.adjoint();
    for (int t = n_slices_ - 1; t >= 0; --t) {
        const Matrix hf_base = prefix[static_cast<std::size_t>(t)];
        for (std::size_t k = 0; k < n_controls_; ++k) {
            const Matrix hk_f = device_.control(k) * hf_base;
            const Complex tr = traceOfProduct(r, hk_f);
            const Complex dgrad = std::conj(g) * (Complex(0, -1) * tr);
            grad[static_cast<std::size_t>(t)][k] =
                2.0 * dgrad.real() / (d * d);
        }
        r = r * props[static_cast<std::size_t>(t)];
    }
    return fidelity;
}

GrapeResult
GrapeRun::optimize()
{
    constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
    std::vector<std::vector<double>> grad(
        static_cast<std::size_t>(n_slices_),
        std::vector<double>(n_controls_, 0.0));

    GrapeResult result;
    double best_fidelity = 0.0;
    std::vector<std::vector<double>> best_u = u_;

    for (int iter = 1; iter <= opts_.maxIterations; ++iter) {
        const double fidelity = fidelityAndGradient(grad);
        if (fidelity > best_fidelity) {
            best_fidelity = fidelity;
            best_u = u_;
        }
        result.iterations = iter;
        if (1.0 - fidelity <= opts_.targetInfidelity) {
            result.converged = true;
            break;
        }

        const double b1t = 1.0 - std::pow(kBeta1, iter);
        const double b2t = 1.0 - std::pow(kBeta2, iter);
        for (int t = 0; t < n_slices_; ++t) {
            const auto ts = static_cast<std::size_t>(t);
            for (std::size_t k = 0; k < n_controls_; ++k) {
                const double gkt = grad[ts][k];
                m_[ts][k] = kBeta1 * m_[ts][k] + (1.0 - kBeta1) * gkt;
                v_[ts][k] = kBeta2 * v_[ts][k]
                    + (1.0 - kBeta2) * gkt * gkt;
                const double mhat = m_[ts][k] / b1t;
                const double vhat = v_[ts][k] / b2t;
                const double step = opts_.learningRate * device_.bound(k)
                    * mhat / (std::sqrt(vhat) + kEps);
                u_[ts][k] = std::clamp(u_[ts][k] + step,
                                       -device_.bound(k),
                                       device_.bound(k));
            }
        }
    }

    result.schedule.amplitudes = std::move(best_u);
    result.schedule.fidelity = best_fidelity;
    return result;
}

} // namespace

GrapeResult
grapeOptimize(const DeviceModel &device, const Matrix &target,
              int num_slices, const GrapeOptions &options,
              const PulseSchedule *initial_guess)
{
    PAQOC_FATAL_IF(num_slices <= 0, "pulse needs at least one slice");
    PAQOC_FATAL_IF(target.rows() != device.dim(),
                   "target dimension ", target.rows(),
                   " does not match device dimension ", device.dim());
    GrapeRun run(device, target, num_slices, options);
    Rng rng(options.seed + static_cast<std::uint64_t>(num_slices));
    if (initial_guess != nullptr && initial_guess->numSlices() > 0)
        run.seedFrom(*initial_guess);
    else
        run.seedRandom(rng);
    return run.optimize();
}

MinDurationResult
findMinimumDuration(const DeviceModel &device, const Matrix &target,
                    const GrapeOptions &options, int latency_hint,
                    const PulseSchedule *initial_guess)
{
    MinDurationResult out;

    auto trial = [&](int slices) {
        GrapeResult r = grapeOptimize(device, target, slices, options,
                                      initial_guess);
        out.totalIterations += r.iterations;
        ++out.trials;
        return r;
    };

    // Exponential bracketing upward from the hint until convergence.
    int lo = 1;
    int hi = std::max(latency_hint, 4);
    GrapeResult at_hi = trial(hi);
    const int kMaxSlices = 4096;
    while (!at_hi.converged && hi < kMaxSlices) {
        lo = hi + 1;
        hi *= 2;
        at_hi = trial(hi);
    }
    PAQOC_FATAL_IF(!at_hi.converged,
                   "GRAPE could not reach the target fidelity within ",
                   kMaxSlices, " slices");

    // Binary search for the shortest converging duration in [lo, hi].
    GrapeResult best = at_hi;
    int best_slices = hi;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        GrapeResult r = trial(mid);
        if (r.converged) {
            best = r;
            best_slices = mid;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (void)best_slices;
    out.schedule = std::move(best.schedule);
    return out;
}

} // namespace paqoc
