#include "qoc/grape.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "linalg/expm.h"
#include "linalg/kernels.h"
#include "linalg/unitary_util.h"

namespace paqoc {

namespace {

/**
 * Trace of a * b given aT = a.transpose(): Tr(a b) = sum_{i,k}
 * a(i,k) b(k,i) = sum elementwise aT .* b, so both operands stream
 * row-major instead of b being walked down its columns. The dotu
 * kernel accumulates in ascending-i order on every backend.
 */
Complex
traceOfProductT(const Matrix &a_t, const Matrix &b)
{
    return kernels::dotu(a_t.data(), b.data(),
                         a_t.rows() * a_t.cols());
}

/** hash_combine-style seed mixer. */
std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/** One ADAM-optimized GRAPE state. */
class GrapeRun
{
  public:
    GrapeRun(const DeviceModel &device, const Matrix &target,
             int num_slices, const GrapeOptions &opts)
        : device_(device), target_(target),
          target_adj_(target.adjoint()),
          target_conj_(target.conjugate()),
          opts_(opts),
          n_slices_(num_slices),
          n_controls_(device.numControls()),
          dim_(device.dim())
    {
        u_.assign(static_cast<std::size_t>(n_slices_),
                  std::vector<double>(n_controls_, 0.0));
        m_.assign(u_.size(), std::vector<double>(n_controls_, 0.0));
        v_.assign(u_.size(), std::vector<double>(n_controls_, 0.0));
        props_.resize(u_.size());
        prefix_.resize(u_.size());
        hk_scratch_.resize(n_controls_);
        identity_ = Matrix::identity(dim_);
    }

    void
    seedRandom(Rng &rng)
    {
        for (auto &slice : u_)
            for (std::size_t k = 0; k < n_controls_; ++k)
                slice[k] = 0.5 * device_.bound(k)
                    * rng.uniform(-1.0, 1.0);
    }

    void
    seedFrom(const PulseSchedule &guess)
    {
        // Stretch or shrink the guess to the new slice count by
        // nearest-neighbor resampling, then clip to bounds.
        const int src = guess.numSlices();
        if (src == 0)
            return;
        // Resampled guesses repeat slices across adjacent duration
        // probes, so the first evaluation may reuse the shared
        // propagator cache.
        guess_seeded_ = true;
        for (int t = 0; t < n_slices_; ++t) {
            const int s = std::min(src - 1, t * src / n_slices_);
            for (std::size_t k = 0; k < n_controls_; ++k) {
                const double amp =
                    k < guess.amplitudes[static_cast<std::size_t>(s)]
                            .size()
                        ? guess.amplitudes[static_cast<std::size_t>(s)][k]
                        : 0.0;
                u_[static_cast<std::size_t>(t)][k] = std::clamp(
                    amp, -device_.bound(k), device_.bound(k));
            }
        }
    }

    /**
     * Adopt a mid-trial snapshot; the next iteration to run is
     * `state.iteration + 1`. False (state untouched beyond dims
     * check) when the snapshot's shape does not match this problem.
     */
    bool
    restore(const GrapeTrialState &state)
    {
        auto shaped = [&](const std::vector<std::vector<double>> &w) {
            if (w.size() != static_cast<std::size_t>(n_slices_))
                return false;
            for (const auto &slice : w)
                if (slice.size() != n_controls_)
                    return false;
            return true;
        };
        if (state.iteration < 0 || !shaped(state.u) || !shaped(state.m)
            || !shaped(state.v) || !shaped(state.bestU))
            return false;
        u_ = state.u;
        m_ = state.m;
        v_ = state.v;
        best_u_ = state.bestU;
        best_fidelity_ = state.bestFidelity;
        return true;
    }

    GrapeResult optimize(const GrapeRuntime &rt,
                         const GrapeTrialKey &key, int start_iter);

  private:
    double fidelityAndGradient(std::vector<std::vector<double>> &grad,
                               const GrapeRuntime &rt);

    const DeviceModel &device_;
    const Matrix &target_;
    const Matrix target_adj_;  // target^dag, hoisted out of the loop
    const Matrix target_conj_; // conj(target) = (target^dag)^T
    const GrapeOptions &opts_;
    int n_slices_;
    std::size_t n_controls_;
    std::size_t dim_;

    std::vector<std::vector<double>> u_; // amplitudes [slice][control]
    std::vector<std::vector<double>> m_; // ADAM first moment
    std::vector<std::vector<double>> v_; // ADAM second moment
    double best_fidelity_ = 0.0;
    std::vector<std::vector<double>> best_u_;

    // Scratch reused across all iterations of the trial: one warm
    // fidelity+gradient evaluation performs no matrix allocations at
    // all (the historical code allocated ~6 matrices per slice per
    // iteration). Contents never survive an iteration, so reuse
    // cannot change results.
    std::vector<Matrix> props_;      // slice propagators U_t
    std::vector<Matrix> prefix_;     // prefix products F_t
    std::vector<Matrix> hk_scratch_; // per-control H_k * F_t
    Matrix identity_;
    Matrix h_;   // slice Hamiltonian
    Matrix acc_; // forward accumulator
    Matrix r_;   // backward accumulator R_t
    Matrix r_t_; // R_t transposed
    Matrix tmp_; // matmulInto cannot alias; multiply here and swap
    ExpmWorkspace ews_;
    bool guess_seeded_ = false;
};

double
GrapeRun::fidelityAndGradient(std::vector<std::vector<double>> &grad,
                              const GrapeRuntime &rt)
{
    const double d = static_cast<double>(dim_);
    // The cache only pays off on the very first evaluation of a
    // guess-seeded trial (before ADAM perturbs the amplitudes into
    // unique values); afterwards lookups would only waste time.
    PropagatorCache *cache = guess_seeded_ ? rt.propCache : nullptr;
    guess_seeded_ = false;

    // Forward pass: slice propagators and prefix products F_t.
    acc_ = identity_;
    for (int t = 0; t < n_slices_; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        const std::vector<double> &amps = u_[ts];
        // The propagator is a pure function of the slice amplitudes,
        // so equal amplitude vectors (common in resampled guesses and
        // zero-amplitude stretches) share one exponential -- first
        // with the previous slice, then through the cross-probe cache.
        if (t > 0 && amps == u_[ts - 1]) {
            props_[ts] = props_[ts - 1];
        } else if (cache == nullptr || !cache->lookup(amps, props_[ts])) {
            device_.sliceHamiltonianInto(amps, h_);
            expmPropagatorInto(h_, 1.0, props_[ts], ews_);
            if (cache != nullptr)
                cache->insert(amps, props_[ts]);
        }
        tmp_.resize(dim_, dim_);
        matmulInto(props_[ts], acc_, tmp_);
        std::swap(acc_, tmp_);
        prefix_[ts] = acc_;
    }
    // Tr(target^dag acc) as an elementwise dot with conj(target):
    // (target^dag)^T = conj(target), both matrices stream row-major.
    const Complex g = traceOfProductT(target_conj_, acc_);
    const double fidelity = std::norm(g) / (d * d);

    // Backward pass: R_t = target^dag * U_N ... U_{t+1}; the gradient
    // of |g|^2/d^2 w.r.t. amplitude u_{t,k} with the first-order
    // propagator derivative -i dt H_k U_t is
    //   (2/d^2) * Re( conj(g) * Tr(R_t * (-i) * H_k * F_t) ).
    // The controls are independent, so the k-loop fans out across the
    // pool on the widest (3-qubit) devices; each control writes only
    // its own grad slot (and its own scratch matrix), keeping results
    // thread-count-independent.
    const bool fan_out = rt.pool != nullptr && rt.pool->size() > 1
        && n_controls_ >= 6;
    r_ = target_adj_;
    for (int t = n_slices_ - 1; t >= 0; --t) {
        const auto ts = static_cast<std::size_t>(t);
        const Matrix &hf_base = prefix_[ts];
        // One transpose of R_t per backward step lets every control's
        // trace stream contiguously instead of striding b's columns.
        r_t_.resize(dim_, dim_);
        kernels::transposeInto(r_.data(), r_t_.data(), dim_, dim_);
        auto one_control = [&](std::size_t k) {
            Matrix &hk_f = hk_scratch_[k];
            hk_f.resize(dim_, dim_);
            matmulInto(device_.control(k), hf_base, hk_f);
            const Complex tr = traceOfProductT(r_t_, hk_f);
            const Complex dgrad = std::conj(g) * (Complex(0, -1) * tr);
            grad[ts][k] = 2.0 * dgrad.real() / (d * d);
        };
        if (fan_out)
            rt.pool->parallelFor(n_controls_, one_control, 2);
        else
            for (std::size_t k = 0; k < n_controls_; ++k)
                one_control(k);
        tmp_.resize(dim_, dim_);
        matmulInto(r_, props_[ts], tmp_);
        std::swap(r_, tmp_);
    }
    return fidelity;
}

GrapeResult
GrapeRun::optimize(const GrapeRuntime &rt, const GrapeTrialKey &key,
                   int start_iter)
{
    constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
    std::vector<std::vector<double>> grad(
        static_cast<std::size_t>(n_slices_),
        std::vector<double>(n_controls_, 0.0));

    GrapeResult result;
    // On resume the loop may not execute at all (snapshot taken at
    // the final iteration); account for the completed prefix.
    result.iterations = start_iter - 1;
    if (best_u_.empty())
        best_u_ = u_;

    for (int iter = start_iter; iter <= opts_.maxIterations; ++iter) {
        const double fidelity = fidelityAndGradient(grad, rt);
        if (fidelity > best_fidelity_) {
            best_fidelity_ = fidelity;
            best_u_ = u_;
        }
        result.iterations = iter;
        if (1.0 - fidelity <= opts_.targetInfidelity) {
            result.converged = true;
            break;
        }

        const double b1t = 1.0 - std::pow(kBeta1, iter);
        const double b2t = 1.0 - std::pow(kBeta2, iter);
        for (int t = 0; t < n_slices_; ++t) {
            const auto ts = static_cast<std::size_t>(t);
            for (std::size_t k = 0; k < n_controls_; ++k) {
                const double gkt = grad[ts][k];
                m_[ts][k] = kBeta1 * m_[ts][k] + (1.0 - kBeta1) * gkt;
                v_[ts][k] = kBeta2 * v_[ts][k]
                    + (1.0 - kBeta2) * gkt * gkt;
                const double mhat = m_[ts][k] / b1t;
                const double vhat = v_[ts][k] / b2t;
                const double step = opts_.learningRate * device_.bound(k)
                    * mhat / (std::sqrt(vhat) + kEps);
                u_[ts][k] = std::clamp(u_[ts][k] + step,
                                       -device_.bound(k),
                                       device_.bound(k));
            }
        }

        if (rt.checkpoint != nullptr && rt.checkpointEvery > 0
            && iter % rt.checkpointEvery == 0) {
            GrapeTrialState state;
            state.key = key;
            state.iteration = iter;
            state.bestFidelity = best_fidelity_;
            state.u = u_;
            state.m = m_;
            state.v = v_;
            state.bestU = best_u_;
            rt.checkpoint->saveTrialState(state);
        }
        // Charged after the snapshot so work done before the trip is
        // still resumable, and after the convergence break so every
        // trial performs at least one full iteration (a degraded
        // token always has a best effort to hand back).
        if (rt.quota != nullptr && !rt.quota->chargeIterations(1)) {
            if (!rt.quota->degradeOnExceeded())
                rt.quota->throwQuotaExceeded();
            break;
        }
        // Cancellation poll, once per iteration: the latency bound on
        // "orphaned work stops" is one ADAM step. Checkpoint before
        // unwinding (unless this iteration's periodic snapshot was
        // just written) so the interrupted derivation resumes at
        // iter + 1 byte-identically on a re-request.
        if (rt.cancel != nullptr && rt.cancel->cancelled()) {
            if (rt.checkpoint != nullptr && rt.checkpointEvery > 0
                && iter % rt.checkpointEvery != 0) {
                GrapeTrialState state;
                state.key = key;
                state.iteration = iter;
                state.bestFidelity = best_fidelity_;
                state.u = u_;
                state.m = m_;
                state.v = v_;
                state.bestU = best_u_;
                rt.checkpoint->saveTrialState(state);
            }
            rt.cancel->throwCancelled(
                rt.quota != nullptr ? rt.quota->itersCharged() : 0);
        }
    }

    result.schedule.amplitudes = best_u_;
    result.schedule.fidelity = best_fidelity_;
    return result;
}

} // namespace

bool
PropagatorCache::lookup(const std::vector<double> &amplitudes,
                        Matrix &out) const
{
    MutexLock lock(mutex_);
    const auto it = entries_.find(amplitudes);
    if (it == entries_.end())
        return false;
    out = it->second;
    return true;
}

void
PropagatorCache::insert(const std::vector<double> &amplitudes,
                        const Matrix &propagator)
{
    MutexLock lock(mutex_);
    if (entries_.size() >= kMaxEntries)
        return;
    entries_.emplace(amplitudes, propagator);
}

std::size_t
PropagatorCache::size() const
{
    MutexLock lock(mutex_);
    return entries_.size();
}

GrapeResult
grapeOptimize(const DeviceModel &device, const Matrix &target,
              int num_slices, const GrapeOptions &options,
              const PulseSchedule *initial_guess, ThreadPool *pool)
{
    GrapeRuntime runtime;
    runtime.pool = pool;
    return grapeOptimize(device, target, num_slices, options,
                         initial_guess, runtime);
}

GrapeResult
grapeOptimize(const DeviceModel &device, const Matrix &target,
              int num_slices, const GrapeOptions &options,
              const PulseSchedule *initial_guess,
              const GrapeRuntime &runtime)
{
    PAQOC_FATAL_IF(num_slices <= 0, "pulse needs at least one slice");
    PAQOC_FATAL_IF(target.rows() != device.dim(),
                   "target dimension ", target.rows(),
                   " does not match device dimension ", device.dim());
    const int restarts = std::max(1, options.restarts);
    // Per-gate seeding: the base seed is mixed with the target hash,
    // the slice count, and the restart index, so the initial pulse of
    // every (target, duration, restart) triple is a pure function of
    // the problem -- identical across threads, batch orders and probe
    // rounds.
    const std::uint64_t target_hash = matrixHash(target);
    auto run_one = [&](int restart) {
        const GrapeTrialKey key{target_hash, num_slices, restart};
        if (runtime.checkpoint != nullptr) {
            // Memoized replay: a finished trial's recorded result is
            // exactly what re-running it would produce (the trial is
            // a pure function of its key), so return it verbatim.
            if (std::optional<GrapeResult> done =
                    runtime.checkpoint->completedTrial(key))
                return *done;
        }
        GrapeRun run(device, target, num_slices, options);
        int start_iter = 1;
        bool resumed = false;
        if (runtime.checkpoint != nullptr) {
            if (std::optional<GrapeTrialState> state =
                    runtime.checkpoint->trialState(key);
                state && run.restore(*state)) {
                start_iter = state->iteration + 1;
                resumed = true;
            }
        }
        if (!resumed) {
            // The trial RNG is consumed entirely here, before the
            // first snapshot could be taken, so snapshots need not
            // carry RNG state to replay exactly.
            if (restart == 0 && initial_guess != nullptr
                && initial_guess->numSlices() > 0) {
                run.seedFrom(*initial_guess);
            } else {
                Rng rng(mixSeed(
                    mixSeed(mixSeed(options.seed, target_hash),
                            static_cast<std::uint64_t>(num_slices)),
                    static_cast<std::uint64_t>(restart)));
                run.seedRandom(rng);
            }
        }
        GrapeResult r = run.optimize(runtime, key, start_iter);
        // The grape.converge failpoint turns any run into a
        // non-converging one so the degraded (stitched) path can be
        // driven without constructing a genuinely hard unitary.
        // Applied before the completed-trial record is written so a
        // replayed trial matches what the live run returned.
        if (r.converged
            && failpoint::evaluate("grape.converge").action
                != failpoint::Action::Off)
            r.converged = false;
        // A quota-degraded trial stopped early; its result is not the
        // pure function of the key, so it must never be memoized (an
        // unbudgeted retry would replay the truncated pulse).
        if (runtime.checkpoint != nullptr
            && !(runtime.quota != nullptr && runtime.quota->exceeded()))
            runtime.checkpoint->saveCompletedTrial(key, r);
        return r;
    };

    if (restarts == 1)
        return run_one(0);

    std::vector<GrapeResult> results(
        static_cast<std::size_t>(restarts));
    if (runtime.pool != nullptr) {
        runtime.pool->parallelFor(results.size(), [&](std::size_t i) {
            results[i] = run_one(static_cast<int>(i));
        });
    } else {
        for (std::size_t i = 0; i < results.size(); ++i)
            results[i] = run_one(static_cast<int>(i));
    }

    // Deterministic pick: converged beats not, then higher fidelity,
    // then the lower restart index.
    std::size_t best = 0;
    int total_iterations = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        total_iterations += results[i].iterations;
        const GrapeResult &r = results[i];
        const GrapeResult &b = results[best];
        if (i == 0)
            continue;
        if ((r.converged && !b.converged)
            || (r.converged == b.converged
                && r.schedule.fidelity > b.schedule.fidelity))
            best = i;
    }
    GrapeResult out = std::move(results[best]);
    out.iterations = total_iterations;
    return out;
}

MinDurationResult
findMinimumDuration(const DeviceModel &device, const Matrix &target,
                    const GrapeOptions &options, int latency_hint,
                    const PulseSchedule *initial_guess, ThreadPool *pool)
{
    GrapeRuntime runtime;
    runtime.pool = pool;
    return findMinimumDuration(device, target, options, latency_hint,
                               initial_guess, runtime);
}

MinDurationResult
findMinimumDuration(const DeviceModel &device, const Matrix &target,
                    const GrapeOptions &options, int latency_hint,
                    const PulseSchedule *initial_guess,
                    const GrapeRuntime &runtime)
{
    MinDurationResult out;
    ThreadPool *pool = runtime.pool;

    // Adjacent duration probes seeded from the same guess share their
    // first-iteration slice propagators through this cache (values
    // are pure functions of the amplitudes, so sharing is invisible
    // to the results). An externally supplied cache wins, letting a
    // caller share across searches.
    PropagatorCache local_prop_cache;
    GrapeRuntime rt = runtime;
    if (rt.propCache == nullptr && initial_guess != nullptr)
        rt.propCache = &local_prop_cache;
    const GrapeRuntime &runtime_ref = rt;

    // Evaluate a deterministic set of candidate durations; with a pool
    // the candidates run concurrently, and the trial/iteration
    // accounting always folds in candidate order.
    auto eval_many = [&](const std::vector<int> &slices) {
        std::vector<GrapeResult> rs(slices.size());
        auto trial = [&](std::size_t i) {
            rs[i] = grapeOptimize(device, target, slices[i], options,
                                  initial_guess, runtime_ref);
        };
        if (pool != nullptr && slices.size() > 1)
            pool->parallelFor(slices.size(), trial);
        else
            for (std::size_t i = 0; i < slices.size(); ++i)
                trial(i);
        for (const GrapeResult &r : rs) {
            out.totalIterations += r.iterations;
            ++out.trials;
        }
        return rs;
    };

    const int probes = std::max(1, options.durationProbes);
    const int kMaxSlices = 4096;

    // Exponential bracketing upward from the hint until convergence;
    // with probes >= 2 each round tests the next two octaves at once.
    int lo = 1;
    int hi = std::max(latency_hint, 4);
    GrapeResult at_hi = eval_many({hi})[0];
    while (!at_hi.converged && hi < kMaxSlices) {
        if (probes <= 1) {
            lo = hi + 1;
            hi *= 2;
            at_hi = eval_many({hi})[0];
        } else {
            const std::vector<GrapeResult> rs =
                eval_many({hi * 2, hi * 4});
            if (rs[0].converged) {
                lo = hi + 1;
                hi *= 2;
                at_hi = rs[0];
            } else {
                lo = hi * 2 + 1;
                hi *= 4;
                at_hi = rs[1];
            }
        }
    }
    if (!at_hi.converged) {
        // Duration cap reached without hitting the fidelity target.
        // Hand back the best effort at the cap and let the caller
        // degrade (stitch + tag) rather than abort the compile.
        out.converged = false;
        out.schedule = std::move(at_hi.schedule);
        return out;
    }

    // Multi-probe narrowing for the shortest converging duration in
    // [lo, hi]: p candidates split the bracket into p+1 parts (p = 1
    // is the classic binary search).
    GrapeResult best = at_hi;
    while (lo < hi) {
        const int width = hi - lo;
        const int p = std::min(probes, width);
        std::vector<int> mids;
        mids.reserve(static_cast<std::size_t>(p));
        for (int i = 1; i <= p; ++i)
            mids.push_back(lo + (width * i) / (p + 1));
        const std::vector<GrapeResult> rs = eval_many(mids);
        int found = -1;
        for (std::size_t i = 0; i < rs.size(); ++i) {
            if (rs[i].converged) {
                found = static_cast<int>(i);
                break;
            }
        }
        if (found >= 0) {
            best = rs[static_cast<std::size_t>(found)];
            hi = mids[static_cast<std::size_t>(found)];
            if (found > 0)
                lo = mids[static_cast<std::size_t>(found - 1)] + 1;
        } else {
            lo = mids.back() + 1;
        }
    }
    out.schedule = std::move(best.schedule);
    return out;
}

Matrix
schedulePropagator(const DeviceModel &device,
                   const PulseSchedule &schedule)
{
    Matrix acc = Matrix::identity(device.dim());
    Matrix h, u, tmp;
    ExpmWorkspace ws;
    for (const auto &slice : schedule.amplitudes) {
        device.sliceHamiltonianInto(slice, h);
        expmPropagatorInto(h, 1.0, u, ws);
        tmp.resize(device.dim(), device.dim());
        matmulInto(u, acc, tmp);
        std::swap(acc, tmp);
    }
    return acc;
}

double
scheduleFidelity(const DeviceModel &device, const Matrix &target,
                 const PulseSchedule &schedule)
{
    PAQOC_FATAL_IF(target.rows() != device.dim(),
                   "target dimension ", target.rows(),
                   " does not match device dimension ", device.dim());
    const Matrix acc = schedulePropagator(device, schedule);
    const Complex g = traceOfProductT(target.conjugate(), acc);
    const double d = static_cast<double>(device.dim());
    return std::norm(g) / (d * d);
}

} // namespace paqoc
