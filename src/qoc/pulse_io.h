#ifndef PAQOC_QOC_PULSE_IO_H_
#define PAQOC_QOC_PULSE_IO_H_

#include <string>

#include "qoc/device.h"
#include "qoc/pulse.h"

namespace paqoc {

/**
 * Render a pulse schedule as CSV: one row per dt slice, one column per
 * control channel (named after the device's channels, e.g. x0, y0,
 * xy01), preceded by a "t" column. This is the hand-off format for
 * driving external waveform tooling.
 */
std::string pulseToCsv(const PulseSchedule &schedule,
                       const DeviceModel &device);

/**
 * Parse a pulse CSV produced by pulseToCsv (the header row is
 * validated against the device's channel names). Fidelity metadata is
 * not stored in the CSV; the returned schedule has fidelity 0.
 */
PulseSchedule pulseFromCsv(const std::string &csv,
                           const DeviceModel &device);

/**
 * Render a pulse schedule as a self-describing JSON document:
 *
 *   {"format": "paqoc-pulse-v1", "num_qubits": n, "dt_slices": N,
 *    "latency_dt": N, "fidelity": f, "channels": ["x0", ...],
 *    "amplitudes": [[a_x0, ...], ...]}   // one inner array per slice
 *
 * Unlike the CSV hand-off format this carries the fidelity/latency
 * metadata, so a schedule survives a round trip losslessly (doubles
 * are serialized with full precision). This is the pulse payload of
 * the `paqocd` wire protocol. When `degraded` is set (a stitched
 * best-effort pulse, DESIGN.md §9) the document additionally carries
 * "degraded": true; healthy documents are unchanged byte for byte.
 */
std::string pulseToJson(const PulseSchedule &schedule,
                        const DeviceModel &device,
                        bool degraded = false);

/**
 * Parse a pulse JSON produced by pulseToJson. The format tag, channel
 * names, and slice shape are validated against the device; raises
 * FatalError on any mismatch.
 */
PulseSchedule pulseFromJson(const std::string &json,
                            const DeviceModel &device);

/**
 * Compact ASCII rendering of a schedule (one line per control, time
 * running left to right, amplitude bucketed into -#=. levels). For
 * logs and quick inspection.
 */
std::string pulseToAscii(const PulseSchedule &schedule,
                         const DeviceModel &device, int max_columns = 72);

} // namespace paqoc

#endif // PAQOC_QOC_PULSE_IO_H_
