#include "qoc/pulse_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "linalg/unitary_util.h"

namespace paqoc {

namespace {

/** Normalize global phase: largest-magnitude entry made real positive. */
Matrix
phaseNormalized(const Matrix &u)
{
    std::size_t best_r = 0, best_c = 0;
    double best = -1.0;
    for (std::size_t r = 0; r < u.rows(); ++r) {
        for (std::size_t c = 0; c < u.cols(); ++c) {
            const double m = std::abs(u(r, c));
            if (m > best + 1e-12) {
                best = m;
                best_r = r;
                best_c = c;
            }
        }
    }
    const Complex pivot = u(best_r, best_c);
    Matrix out = u;
    if (std::abs(pivot) > 1e-12)
        out *= std::conj(pivot) / std::abs(pivot);
    return out;
}

/** Relabel qubits by reversing their order (path symmetry). */
Matrix
bitReversed(const Matrix &u, int num_qubits)
{
    const std::size_t dim = u.rows();
    auto rev = [num_qubits](std::size_t x) {
        std::size_t y = 0;
        for (int b = 0; b < num_qubits; ++b)
            y |= ((x >> b) & 1u) << (num_qubits - 1 - b);
        return y;
    };
    Matrix out(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            out(rev(r), rev(c)) = u(r, c);
    return out;
}

std::string
quantized(const Matrix &u)
{
    std::string s;
    s.reserve(u.rows() * u.cols() * 20);
    char buf[48];
    for (std::size_t r = 0; r < u.rows(); ++r) {
        for (std::size_t c = 0; c < u.cols(); ++c) {
            // Round at 1e-4 so GRAPE noise maps to a stable key; the
            // +0.0 folds negative zero.
            const double re =
                std::round(u(r, c).real() * 1e4) / 1e4 + 0.0;
            const double im =
                std::round(u(r, c).imag() * 1e4) / 1e4 + 0.0;
            std::snprintf(buf, sizeof buf, "%.4f,%.4f;", re, im);
            s += buf;
        }
    }
    return s;
}

} // namespace

std::string
PulseCache::canonicalKey(const Matrix &unitary, int num_qubits)
{
    PAQOC_ASSERT(unitary.rows() == (std::size_t{1} << num_qubits),
                 "unitary does not match qubit count");
    std::string key = quantized(phaseNormalized(unitary));
    if (num_qubits > 1) {
        std::string alt = quantized(
            phaseNormalized(bitReversed(unitary, num_qubits)));
        if (alt < key)
            key = std::move(alt);
    }
    return std::to_string(num_qubits) + ":" + key;
}

PulseCache::Acquired
PulseCache::acquire(const Matrix &unitary, int num_qubits)
{
    const std::string key = canonicalKey(unitary, num_qubits);
    MutexLock lock(mutex_);
    for (;;) {
        const auto hit = entries_.find(key);
        if (hit != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return {FlightRole::Hit, hit->second};
        }
        const auto it = flights_.find(key);
        if (it == flights_.end()) {
            flights_.emplace(key, std::make_shared<Flight>());
            return {FlightRole::Leader, std::nullopt};
        }
        const std::shared_ptr<Flight> flight = it->second;
        while (!flight->done)
            flight->cv.wait(mutex_);
        if (!flight->aborted) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return {FlightRole::Joined, flight->result};
        }
        // The leader failed; loop and re-race for leadership.
    }
}

void
PulseCache::completeFlight(const Matrix &unitary, int num_qubits,
                           CachedPulse entry)
{
    const std::string key = canonicalKey(unitary, num_qubits);
    std::optional<CachedPulse> journaled;
    PulseStoreSink *sink = nullptr;
    {
        MutexLock lock(mutex_);
        const auto it = flights_.find(key);
        PAQOC_ASSERT(it != flights_.end(),
                     "completeFlight without a matching acquire");
        const std::shared_ptr<Flight> flight = it->second;
        flights_.erase(it);
        insertLocked(key, unitary, num_qubits, std::move(entry));
        flight->done = true;
        flight->result = entries_.at(key);
        if (sink_ != nullptr) {
            journaled = entries_.at(key);
            sink = sink_;
        }
        flight->cv.notify_all();
    }
    // Forward outside the lock: the sink may do blocking file I/O.
    if (journaled.has_value())
        sink->onInsert(key, *journaled);
}

void
PulseCache::abortFlight(const Matrix &unitary, int num_qubits)
{
    const std::string key = canonicalKey(unitary, num_qubits);
    MutexLock lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end())
        return;
    const std::shared_ptr<Flight> flight = it->second;
    flights_.erase(it);
    flight->done = true;
    flight->aborted = true;
    flight->cv.notify_all();
}

const CachedPulse *
PulseCache::lookup(const Matrix &unitary, int num_qubits) const
{
    const std::string key = canonicalKey(unitary, num_qubits);
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return nullptr;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &it->second;
}

std::optional<CachedPulse>
PulseCache::find(const Matrix &unitary, int num_qubits) const
{
    const std::string key = canonicalKey(unitary, num_qubits);
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
PulseCache::insert(const Matrix &unitary, int num_qubits,
                   CachedPulse entry)
{
    const std::string key = canonicalKey(unitary, num_qubits);
    std::optional<CachedPulse> journaled;
    PulseStoreSink *sink = nullptr;
    {
        MutexLock lock(mutex_);
        insertLocked(key, unitary, num_qubits, std::move(entry));
        if (sink_ != nullptr) {
            journaled = entries_.at(key);
            sink = sink_;
        }
    }
    if (journaled.has_value())
        sink->onInsert(key, *journaled);
}

void
PulseCache::attachStore(PulseStoreSink *sink)
{
    MutexLock lock(mutex_);
    sink_ = sink;
}

void
PulseCache::attachTier(PulseTierSource *tier)
{
    tier_.store(tier, std::memory_order_release);
}

PulseTierSource *
PulseCache::tierSource() const
{
    return tier_.load(std::memory_order_acquire);
}

void
PulseCache::insertLocked(const std::string &key, const Matrix &unitary,
                         int num_qubits, CachedPulse &&entry)
{
    entry.unitary = unitary;
    entry.numQubits = num_qubits;
    entry.generation =
        generation_.fetch_add(1, std::memory_order_relaxed);
    entries_[key] = std::move(entry);
}

std::size_t
PulseCache::size() const
{
    MutexLock lock(mutex_);
    return entries_.size();
}

void
PulseCache::save(const std::string &path) const
{
    std::ofstream out(path);
    PAQOC_FATAL_IF(!out, "cannot write pulse database '", path, "'");
    out << "paqoc-pulse-db 1\n";
    out.precision(17);
    MutexLock lock(mutex_);
    // Emit in canonical-key order so the file is byte-stable across
    // STL hash implementations and insert histories.
    std::vector<std::pair<const std::string *, const CachedPulse *>>
        ordered;
    ordered.reserve(entries_.size());
    // paqoc-lint: allow(unordered-iteration) order folded by sort below
    for (const auto &[key, e] : entries_) {
        // Stitched fallback pulses are session-local best effort; a
        // saved database must never freeze one in.
        if (e.degraded)
            continue;
        ordered.emplace_back(&key, &e);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  return *a.first < *b.first;
              });
    for (const auto &[key_ptr, entry_ptr] : ordered) {
        const CachedPulse &e = *entry_ptr;
        const std::size_t dim = e.unitary.rows();
        out << "entry " << e.numQubits << ' ' << e.latency << ' '
            << e.error << ' ' << dim << ' '
            << e.schedule.numSlices() << ' '
            << (e.schedule.numSlices() > 0
                    ? e.schedule.amplitudes[0].size()
                    : 0)
            << ' ' << e.schedule.fidelity << '\n';
        for (std::size_t r = 0; r < dim; ++r) {
            for (std::size_t c = 0; c < dim; ++c)
                out << e.unitary(r, c).real() << ' '
                    << e.unitary(r, c).imag() << ' ';
            out << '\n';
        }
        for (const auto &slice : e.schedule.amplitudes) {
            for (double a : slice)
                out << a << ' ';
            out << '\n';
        }
    }
}

void
PulseCache::load(const std::string &path)
{
    std::ifstream in(path);
    PAQOC_FATAL_IF(!in, "cannot read pulse database '", path, "'");

    // Parse line-by-line into a staging area first: a malformed file
    // raises a FatalError naming the offending line and the cache is
    // left exactly as it was (no partial load).
    int line_no = 0;
    std::string line;
    auto next_line = [&](const char *what) {
        PAQOC_FATAL_IF(!std::getline(in, line), "pulse database '",
                       path, "' line ", line_no + 1,
                       ": unexpected end of file (expected ", what,
                       ")");
        ++line_no;
    };
    auto bad_line = [&](const std::string &why) {
        PAQOC_FATAL_IF(true, "pulse database '", path, "' line ",
                       line_no, ": ", why, " -- got '", line, "'");
    };

    next_line("header");
    {
        std::istringstream hdr(line);
        std::string magic;
        int version = 0;
        if (!(hdr >> magic >> version) || magic != "paqoc-pulse-db"
            || version != 1)
            bad_line("not a version-1 pulse database header");
    }

    std::vector<CachedPulse> staged;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        CachedPulse e;
        std::size_t dim = 0, slices = 0, channels = 0;
        {
            std::istringstream row(line);
            std::string tag;
            if (!(row >> tag) || tag != "entry")
                bad_line("expected an 'entry' record");
            if (!(row >> e.numQubits >> e.latency >> e.error >> dim
                  >> slices >> channels >> e.schedule.fidelity))
                bad_line("malformed entry header");
            if (e.numQubits <= 0 || dim == 0 || dim > 256
                || dim != (std::size_t{1} << e.numQubits))
                bad_line("entry dimension does not match qubit count");
        }
        e.unitary = Matrix(dim, dim);
        for (std::size_t r = 0; r < dim; ++r) {
            next_line("a unitary row");
            std::istringstream row(line);
            for (std::size_t c = 0; c < dim; ++c) {
                double re = 0.0, im = 0.0;
                if (!(row >> re >> im))
                    bad_line("truncated unitary row");
                e.unitary(r, c) = Complex(re, im);
            }
        }
        e.schedule.amplitudes.assign(slices,
                                     std::vector<double>(channels));
        for (auto &slice : e.schedule.amplitudes) {
            next_line("an amplitude row");
            std::istringstream row(line);
            for (double &a : slice)
                if (!(row >> a))
                    bad_line("truncated amplitude row");
        }
        staged.push_back(std::move(e));
    }
    for (CachedPulse &e : staged) {
        const Matrix u = e.unitary;
        const int nq = e.numQubits;
        insert(u, nq, std::move(e));
    }
}

const CachedPulse *
PulseCache::nearest(const Matrix &unitary, int num_qubits,
                    double max_distance) const
{
    MutexLock lock(mutex_);
    const CachedPulse *best = nullptr;
    double best_dist = max_distance;
    // Tie-break on the canonical key (as nearestBefore does) so the
    // selected entry never depends on hash-map iteration order.
    const std::string *best_key = nullptr;
    // paqoc-lint: allow(unordered-iteration) order folded by tie-break
    for (const auto &[key, entry] : entries_) {
        if (entry.numQubits != num_qubits)
            continue;
        const double d = phaseInvariantDistance(entry.unitary, unitary);
        if (d > max_distance)
            continue;
        if (best == nullptr || d < best_dist
            || (d == best_dist && key < *best_key)) {
            best_dist = d;
            best = &entry;
            best_key = &key;
        }
    }
    return best;
}

std::optional<CachedPulse>
PulseCache::nearestBefore(const Matrix &unitary, int num_qubits,
                          double max_distance,
                          std::uint64_t generation_bound) const
{
    MutexLock lock(mutex_);
    const CachedPulse *best = nullptr;
    double best_dist = 0.0;
    // Tie-break on the canonical key so equal-distance entries resolve
    // identically regardless of hash-map iteration order or of the
    // (thread-dependent) order concurrent inserts landed in.
    const std::string *best_key = nullptr;
    // paqoc-lint: allow(unordered-iteration) order folded by tie-break
    for (const auto &[key, entry] : entries_) {
        if (entry.numQubits != num_qubits
            || entry.generation >= generation_bound)
            continue;
        const double d = phaseInvariantDistance(entry.unitary, unitary);
        if (d > max_distance)
            continue;
        if (best == nullptr || d < best_dist
            || (d == best_dist && key < *best_key)) {
            best_dist = d;
            best = &entry;
            best_key = &key;
        }
    }
    if (best == nullptr)
        return std::nullopt;
    return *best;
}

} // namespace paqoc
