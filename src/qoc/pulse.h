#ifndef PAQOC_QOC_PULSE_H_
#define PAQOC_QOC_PULSE_H_

#include <vector>

#include "linalg/matrix.h"

namespace paqoc {

/**
 * A piecewise-constant control pulse schedule: amplitudes[t][k] is the
 * amplitude of control k during time slice t (each slice lasts one dt).
 * Latency in dt units is simply the number of slices.
 */
struct PulseSchedule
{
    /** Per-slice, per-control amplitudes in rad/dt. */
    std::vector<std::vector<double>> amplitudes;
    /** Trace fidelity |Tr(U_target^dag U(T))|^2 / d^2 achieved. */
    double fidelity = 0.0;

    int numSlices() const
    { return static_cast<int>(amplitudes.size()); }

    /** Latency in dt units (one slice per dt). */
    double latency() const
    { return static_cast<double>(amplitudes.size()); }
};

} // namespace paqoc

#endif // PAQOC_QOC_PULSE_H_
