#ifndef PAQOC_QOC_PULSE_GENERATOR_H_
#define PAQOC_QOC_PULSE_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "qoc/grape.h"
#include "qoc/latency_model.h"
#include "qoc/pulse.h"
#include "qoc/pulse_cache.h"

namespace paqoc {

/** Outcome of generating (or estimating) a pulse for one unitary. */
struct PulseGenResult
{
    /** Pulse latency in dt units. */
    double latency = 0.0;
    /** Pulse error |U - H(t)| entering the ESP product. */
    double error = 0.0;
    /** Modeled compilation cost in GRAPE-work units. */
    double costUnits = 0.0;
    /** True when served from the pulse lookup table. */
    bool cacheHit = false;
    /**
     * True when GRAPE missed the fidelity target at the duration cap
     * and the pulse is a stitched best-effort fallback (tagged
     * `degraded: true` in JSON output, never persisted).
     */
    bool degraded = false;
    /** The controls themselves (absent in estimate-only paths). */
    std::optional<PulseSchedule> schedule;
};

/** One unitary of a batch pulse request. */
struct PulseRequest
{
    Matrix unitary;
    int numQubits = 0;
};

/**
 * Abstract pulse backend of the compiler (paper Fig. 7, "Control
 * Pulses Generator"). generate() commits a pulse (and populates the
 * cache); generateBatch() commits many concurrently on a thread pool;
 * estimateLatency() is the cheap query the criticality-aware ranking
 * uses when the analytical model suffices (Section V-A).
 *
 * Concurrency contract: generate() may be called from multiple
 * threads; concurrent requests for the same canonical unitary are
 * single-flighted through the pulse cache, so exactly one backend run
 * happens per distinct unitary. Batch results and all counters are
 * bit-identical for any thread count: the batch driver dedups
 * requests by canonical key before dispatch, warm-start similarity
 * queries see only the pre-batch cache snapshot, and counters fold in
 * request-index order after the parallel section.
 */
class PulseGenerator
{
  public:
    virtual ~PulseGenerator() = default;

    /** Generate (or fetch) the pulse for a unitary on n qubits. */
    PulseGenResult generate(const Matrix &unitary, int num_qubits);

    /**
     * Generate pulses for a whole batch; with a pool, distinct
     * unitaries run concurrently. Results (including cacheHit and
     * costUnits) match a serial generate() loop over the requests.
     */
    std::vector<PulseGenResult> generateBatch(
        const std::vector<PulseRequest> &requests,
        ThreadPool *pool = nullptr);

    /** Cheap latency estimate without committing a pulse. */
    virtual double estimateLatency(const Matrix &unitary,
                                   int num_qubits) = 0;

    /** Width-level average latency (for Case I approximations). */
    virtual double averageLatency(int num_qubits) = 0;

    /** Accumulated modeled compilation cost over all generate calls. */
    double totalCostUnits() const
    { return total_cost_.load(std::memory_order_relaxed); }

    /** Number of generate() calls answered by the cache. */
    std::size_t cacheHits() const
    { return cache_hits_.load(std::memory_order_relaxed); }
    std::size_t generateCalls() const
    { return generate_calls_.load(std::memory_order_relaxed); }

    const PulseCache &cache() const { return cache_; }
    /** Mutable cache access (store attachment, warm-up). */
    PulseCache &cache() { return cache_; }

    /** Load a pulse database saved by an offline run. */
    void loadDatabase(const std::string &path) { cache_.load(path); }

    /** Persist the pulse database for later online runs. */
    void saveDatabase(const std::string &path) const
    { cache_.save(path); }

    /**
     * Attach the enclosing request's resource budget (may be null to
     * detach). Not owned; must outlive every generate call. Each
     * cache-missing derivation charges one resident pulse, and GRAPE
     * charges iterations through the same token.
     */
    void setQuota(QuotaToken *quota) { quota_ = quota; }

    /**
     * Attach the enclosing request's cancellation token (may be null
     * to detach). Not owned; must outlive every generate call. Batch
     * items poll it before starting, tier fetches cap their budget by
     * its remaining deadline, and GRAPE polls it each iteration
     * (through GrapeRuntime), so a cancelled request unwinds within
     * one ADAM step. The single-flight abort-re-race then hands cache
     * leadership to a live joiner.
     */
    void setCancel(const CancelToken *cancel) { cancel_ = cancel; }

  protected:
    /**
     * Produce one pulse without touching the counters. The pool (may
     * be null) parallelizes the backend's own inner work; similarity
     * queries must not see cache entries stamped at or after
     * nearest_horizon (pass PulseCache's current generation -- or
     * UINT64_MAX outside a batch -- so warm starts are reproducible).
     */
    virtual PulseGenResult generateOne(const Matrix &unitary,
                                       int num_qubits, ThreadPool *pool,
                                       std::uint64_t nearest_horizon) = 0;

    /**
     * Whether the batch driver may serve repeated unitaries within one
     * batch from the first occurrence's result (true whenever a serial
     * replay would have hit the cache for them).
     */
    virtual bool dedupBatch() const { return true; }

    void
    record(const PulseGenResult &result)
    {
        generate_calls_.fetch_add(1, std::memory_order_relaxed);
        cache_hits_.fetch_add(result.cacheHit ? 1 : 0,
                              std::memory_order_relaxed);
        // fetch_add on atomic<double> via CAS; batch drivers record
        // serially in request order, so sums stay deterministic there.
        double cur = total_cost_.load(std::memory_order_relaxed);
        while (!total_cost_.compare_exchange_weak(
            cur, cur + result.costUnits, std::memory_order_relaxed))
            ;
    }

    /** Budget of the current request; null when unmetered. */
    QuotaToken *quota() const { return quota_; }

    /** Cancellation token of the current request; null when none. */
    const CancelToken *cancel() const { return cancel_; }

    /**
     * Charge one cache-missing derivation against the quota; raises
     * QuotaExceededError on a tripped hard token (the caller's
     * abortFlight path re-races the flight to the next waiter).
     * Degrade mode lets the derivation proceed: the iteration budget
     * (already tripped) then bounds its cost to one iteration per
     * trial, producing a stitched best-effort pulse.
     */
    void
    chargeResidentPulse()
    {
        if (quota_ == nullptr || quota_->chargeResidentPulse())
            return;
        if (!quota_->degradeOnExceeded())
            quota_->throwQuotaExceeded();
    }

    PulseCache cache_;

  private:
    QuotaToken *quota_ = nullptr;
    const CancelToken *cancel_ = nullptr;
    std::atomic<double> total_cost_{0.0};
    std::atomic<std::size_t> cache_hits_{0};
    std::atomic<std::size_t> generate_calls_{0};
};

/**
 * Analytical backend: latencies from the spectral quantum-speed-limit
 * model, errors from the calibrated error model, compile cost from the
 * GRAPE work model. Fast enough for the 17-benchmark sweeps; shares
 * the pulse cache semantics with the GRAPE backend so cache effects
 * (Fig. 11) are faithfully reproduced.
 */
class SpectralPulseGenerator : public PulseGenerator
{
  public:
    SpectralPulseGenerator() = default;

    double estimateLatency(const Matrix &unitary, int num_qubits) override;
    double averageLatency(int num_qubits) override;

    /**
     * Disable the pulse lookup table (ablation knob): every generate()
     * call then pays the full modeled pulse-generation cost.
     */
    void setCacheEnabled(bool enabled) { cache_enabled_ = enabled; }

  protected:
    PulseGenResult generateOne(const Matrix &unitary, int num_qubits,
                               ThreadPool *pool,
                               std::uint64_t nearest_horizon) override;
    bool dedupBatch() const override { return cache_enabled_; }

  private:
    SpectralLatencyModel model_;
    bool cache_enabled_ = true;
};

/**
 * Real-numerics backend: GRAPE with ADAM plus minimum-duration search;
 * warm-started from the nearest cached pulse when one is close
 * (Section V-B / AccQOC-style similarity reuse). Latency estimates for
 * ranking still come from the analytical model so that ranking stays
 * cheap, exactly as the paper prescribes. Duration probes and restarts
 * fan out onto the thread pool passed through generate/generateBatch.
 */
class GrapePulseGenerator : public PulseGenerator
{
  public:
    explicit GrapePulseGenerator(GrapeOptions options = {});

    double estimateLatency(const Matrix &unitary, int num_qubits) override;
    double averageLatency(int num_qubits) override;

    /** Similarity radius for warm starts. */
    void setSeedDistance(double d) { seed_distance_ = d; }

    /**
     * Enable crash-safe derivations: each cache-missing unitary
     * checkpoints its GRAPE progress (keyed by canonical cache key)
     * every `every` iterations and discards the checkpoint once the
     * pulse publishes to the cache. The provider is not owned and
     * must outlive the generator; null (or every <= 0) disables
     * checkpointing and restores the exact legacy code path.
     */
    void
    setCheckpoints(GrapeCheckpointProvider *provider, int every)
    {
        checkpoints_ = provider;
        checkpoint_every_ = every;
    }

  protected:
    PulseGenResult generateOne(const Matrix &unitary, int num_qubits,
                               ThreadPool *pool,
                               std::uint64_t nearest_horizon) override;

  private:
    GrapeOptions options_;
    SpectralLatencyModel model_;
    double seed_distance_ = 1.0;
    GrapeCheckpointProvider *checkpoints_ = nullptr;
    int checkpoint_every_ = 0;
};

} // namespace paqoc

#endif // PAQOC_QOC_PULSE_GENERATOR_H_
