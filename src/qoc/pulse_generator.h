#ifndef PAQOC_QOC_PULSE_GENERATOR_H_
#define PAQOC_QOC_PULSE_GENERATOR_H_

#include <memory>
#include <optional>
#include <string>

#include "linalg/matrix.h"
#include "qoc/grape.h"
#include "qoc/latency_model.h"
#include "qoc/pulse.h"
#include "qoc/pulse_cache.h"

namespace paqoc {

/** Outcome of generating (or estimating) a pulse for one unitary. */
struct PulseGenResult
{
    /** Pulse latency in dt units. */
    double latency = 0.0;
    /** Pulse error |U - H(t)| entering the ESP product. */
    double error = 0.0;
    /** Modeled compilation cost in GRAPE-work units. */
    double costUnits = 0.0;
    /** True when served from the pulse lookup table. */
    bool cacheHit = false;
    /** The controls themselves (absent in estimate-only paths). */
    std::optional<PulseSchedule> schedule;
};

/**
 * Abstract pulse backend of the compiler (paper Fig. 7, "Control
 * Pulses Generator"). generate() commits a pulse (and populates the
 * cache); estimateLatency() is the cheap query the criticality-aware
 * ranking uses when the analytical model suffices (Section V-A).
 */
class PulseGenerator
{
  public:
    virtual ~PulseGenerator() = default;

    /** Generate (or fetch) the pulse for a unitary on n qubits. */
    virtual PulseGenResult generate(const Matrix &unitary,
                                    int num_qubits) = 0;

    /** Cheap latency estimate without committing a pulse. */
    virtual double estimateLatency(const Matrix &unitary,
                                   int num_qubits) = 0;

    /** Width-level average latency (for Case I approximations). */
    virtual double averageLatency(int num_qubits) = 0;

    /** Accumulated modeled compilation cost over all generate calls. */
    double totalCostUnits() const { return total_cost_; }

    /** Number of generate() calls answered by the cache. */
    std::size_t cacheHits() const { return cache_hits_; }
    std::size_t generateCalls() const { return generate_calls_; }

  protected:
    void
    record(const PulseGenResult &result)
    {
        ++generate_calls_;
        total_cost_ += result.costUnits;
        cache_hits_ += result.cacheHit ? 1 : 0;
    }

  private:
    double total_cost_ = 0.0;
    std::size_t cache_hits_ = 0;
    std::size_t generate_calls_ = 0;
};

/**
 * Analytical backend: latencies from the spectral quantum-speed-limit
 * model, errors from the calibrated error model, compile cost from the
 * GRAPE work model. Fast enough for the 17-benchmark sweeps; shares
 * the pulse cache semantics with the GRAPE backend so cache effects
 * (Fig. 11) are faithfully reproduced.
 */
class SpectralPulseGenerator : public PulseGenerator
{
  public:
    SpectralPulseGenerator() = default;

    PulseGenResult generate(const Matrix &unitary, int num_qubits) override;
    double estimateLatency(const Matrix &unitary, int num_qubits) override;
    double averageLatency(int num_qubits) override;

    const PulseCache &cache() const { return cache_; }

    /** Load a pulse database saved by an offline run. */
    void loadDatabase(const std::string &path) { cache_.load(path); }

    /** Persist the pulse database for later online runs. */
    void saveDatabase(const std::string &path) const
    { cache_.save(path); }

    /**
     * Disable the pulse lookup table (ablation knob): every generate()
     * call then pays the full modeled pulse-generation cost.
     */
    void setCacheEnabled(bool enabled) { cache_enabled_ = enabled; }

  private:
    SpectralLatencyModel model_;
    PulseCache cache_;
    bool cache_enabled_ = true;
};

/**
 * Real-numerics backend: GRAPE with ADAM plus minimum-duration binary
 * search; warm-started from the nearest cached pulse when one is close
 * (Section V-B / AccQOC-style similarity reuse). Latency estimates for
 * ranking still come from the analytical model so that ranking stays
 * cheap, exactly as the paper prescribes.
 */
class GrapePulseGenerator : public PulseGenerator
{
  public:
    explicit GrapePulseGenerator(GrapeOptions options = {});

    PulseGenResult generate(const Matrix &unitary, int num_qubits) override;
    double estimateLatency(const Matrix &unitary, int num_qubits) override;
    double averageLatency(int num_qubits) override;

    const PulseCache &cache() const { return cache_; }

    /** Load a pulse database saved by an offline run. */
    void loadDatabase(const std::string &path) { cache_.load(path); }

    /** Persist the pulse database for later online runs. */
    void saveDatabase(const std::string &path) const
    { cache_.save(path); }

    /** Similarity radius for warm starts. */
    void setSeedDistance(double d) { seed_distance_ = d; }

  private:
    GrapeOptions options_;
    SpectralLatencyModel model_;
    PulseCache cache_;
    double seed_distance_ = 1.0;
};

} // namespace paqoc

#endif // PAQOC_QOC_PULSE_GENERATOR_H_
