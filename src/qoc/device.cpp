#include "qoc/device.h"

#include <sstream>

#include "circuit/circuit.h"
#include "common/error.h"
#include "linalg/kernels.h"

namespace paqoc {

namespace {

Matrix
pauliX()
{
    return Matrix{{0.0, 1.0}, {1.0, 0.0}};
}

Matrix
pauliY()
{
    return Matrix{{Complex(0, 0), Complex(0, -1)},
                  {Complex(0, 1), Complex(0, 0)}};
}

} // namespace

DeviceModel::DeviceModel(int num_qubits,
                         std::vector<std::pair<int, int>> couplings)
    : num_qubits_(num_qubits)
{
    PAQOC_FATAL_IF(num_qubits < 1 || num_qubits > 6,
                   "DeviceModel supports 1..6 qubits, got ", num_qubits);
    if (couplings.empty()) {
        for (int i = 0; i + 1 < num_qubits; ++i)
            couplings.emplace_back(i, i + 1);
    }

    // Single-qubit sigma_x / sigma_y drives.
    for (int q = 0; q < num_qubits_; ++q) {
        controls_.push_back(embedUnitary(pauliX(), {q}, num_qubits_));
        bounds_.push_back(kOneQubitBound);
        names_.push_back("x" + std::to_string(q));
        controls_.push_back(embedUnitary(pauliY(), {q}, num_qubits_));
        bounds_.push_back(kOneQubitBound);
        names_.push_back("y" + std::to_string(q));
    }

    // XY exchange control per coupled pair: (XX + YY) / 2.
    for (const auto &[a, b] : couplings) {
        PAQOC_FATAL_IF(a < 0 || b < 0 || a >= num_qubits_
                           || b >= num_qubits_ || a == b,
                       "bad coupling edge (", a, ",", b, ")");
        Matrix xy = embedUnitary(kron(pauliX(), pauliX()), {a, b},
                                 num_qubits_)
            + embedUnitary(kron(pauliY(), pauliY()), {a, b}, num_qubits_);
        xy *= Complex(0.5, 0.0);
        controls_.push_back(std::move(xy));
        bounds_.push_back(kTwoQubitBound);
        std::ostringstream name;
        name << "xy" << a << b;
        names_.push_back(name.str());
    }
}

Matrix
DeviceModel::sliceHamiltonian(const std::vector<double> &amplitudes) const
{
    Matrix h;
    sliceHamiltonianInto(amplitudes, h);
    return h;
}

void
DeviceModel::sliceHamiltonianInto(const std::vector<double> &amplitudes,
                                  Matrix &h) const
{
    PAQOC_ASSERT(amplitudes.size() == controls_.size(),
                 "amplitude count mismatch");
    h.resize(dim(), dim());
    const std::size_t n2 = dim() * dim();
    for (std::size_t k = 0; k < controls_.size(); ++k) {
        if (amplitudes[k] == 0.0)
            continue;
        // h += alpha_k * H_k via the axpy kernel: same multiply-then-
        // add rounding as the historical copy/scale/add sequence.
        kernels::axpy(Complex(amplitudes[k], 0.0),
                      controls_[k].data(), h.data(), n2);
    }
}

} // namespace paqoc
