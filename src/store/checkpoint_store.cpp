#include "store/checkpoint_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <tuple>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "store/crc32.h"
#include "store/journal.h"

namespace paqoc {

namespace {

/**
 * Record payloads inside a checkpoint journal (all integers
 * little-endian, doubles as their raw IEEE-754 bits so optimizer
 * state round-trips exactly -- the resume-byte-identity contract):
 *
 *   u8 kind | u64 targetHash | i32 numSlices | i32 restart | body
 *
 *   kind 1 (mid-trial snapshot):
 *     i32 iteration | f64 bestFidelity
 *     | mat u | mat m | mat v | mat bestU
 *   kind 2 (completed trial):
 *     u8 converged | i32 iterations | f64 fidelity | mat amplitudes
 *
 *   mat: u32 rows | u32 cols | rows*cols f64, row-major
 *
 * The latest snapshot for a key wins; a completed record supersedes
 * snapshots entirely (lookup order in grapeOptimize).
 */
constexpr std::uint8_t kProgressRecord = 1;
constexpr std::uint8_t kCompletedRecord = 2;
/** Decode sanity caps, far above any real pulse. */
constexpr std::uint32_t kMaxRows = 1u << 20;
constexpr std::uint32_t kMaxCols = 1u << 10;

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
}

void
putI32(std::string &out, std::int32_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
}

void
putF64(std::string &out, double v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
}

void
putMat(std::string &out, const std::vector<std::vector<double>> &w)
{
    const std::uint32_t rows = static_cast<std::uint32_t>(w.size());
    const std::uint32_t cols =
        rows > 0 ? static_cast<std::uint32_t>(w.front().size()) : 0;
    putU32(out, rows);
    putU32(out, cols);
    for (const auto &row : w)
        for (double x : row)
            putF64(out, x);
}

/** Bounds-checked forward reader over one record payload. */
struct Cursor
{
    const char *p;
    const char *end;

    bool
    take(void *out, std::size_t n)
    {
        if (static_cast<std::size_t>(end - p) < n)
            return false;
        std::memcpy(out, p, n);
        p += n;
        return true;
    }

    bool getU8(std::uint8_t &v) { return take(&v, 1); }
    bool getU32(std::uint32_t &v) { return take(&v, 4); }
    bool getU64(std::uint64_t &v) { return take(&v, 8); }
    bool getF64(double &v) { return take(&v, 8); }

    bool
    getI32(std::int32_t &v)
    {
        std::uint32_t raw = 0;
        if (!getU32(raw))
            return false;
        v = static_cast<std::int32_t>(raw);
        return true;
    }

    bool
    getMat(std::vector<std::vector<double>> &w)
    {
        std::uint32_t rows = 0, cols = 0;
        if (!getU32(rows) || !getU32(cols) || rows > kMaxRows
            || cols > kMaxCols)
            return false;
        if (static_cast<std::size_t>(end - p)
            < std::size_t{rows} * cols * 8)
            return false;
        w.assign(rows, std::vector<double>(cols, 0.0));
        for (auto &row : w)
            for (double &x : row)
                if (!getF64(x))
                    return false;
        return true;
    }
};

std::string
encodeKey(const GrapeTrialKey &key, std::uint8_t kind)
{
    std::string out;
    putU8(out, kind);
    putU64(out, key.targetHash);
    putI32(out, key.numSlices);
    putI32(out, key.restart);
    return out;
}

std::string
encodeProgress(const GrapeTrialState &state)
{
    std::string out = encodeKey(state.key, kProgressRecord);
    putI32(out, state.iteration);
    putF64(out, state.bestFidelity);
    putMat(out, state.u);
    putMat(out, state.m);
    putMat(out, state.v);
    putMat(out, state.bestU);
    return out;
}

std::string
encodeCompleted(const GrapeTrialKey &key, const GrapeResult &result)
{
    std::string out = encodeKey(key, kCompletedRecord);
    putU8(out, result.converged ? 1 : 0);
    putI32(out, result.iterations);
    putF64(out, result.schedule.fidelity);
    putMat(out, result.schedule.amplitudes);
    return out;
}

using TrialId = std::tuple<std::uint64_t, int, int>;

TrialId
trialId(const GrapeTrialKey &key)
{
    return {key.targetHash, key.numSlices, key.restart};
}

/**
 * Decode one recovered record into the replay maps. False (record
 * skipped) on any structural damage; the caller counts and warns.
 */
bool
decodeRecord(const std::string &payload,
             std::map<TrialId, GrapeResult> &completed,
             std::map<TrialId, GrapeTrialState> &progress)
{
    Cursor c{payload.data(), payload.data() + payload.size()};
    std::uint8_t kind = 0;
    GrapeTrialKey key;
    std::int32_t slices = 0, restart = 0;
    if (!c.getU8(kind) || !c.getU64(key.targetHash)
        || !c.getI32(slices) || !c.getI32(restart) || slices <= 0
        || restart < 0)
        return false;
    key.numSlices = slices;
    key.restart = restart;
    if (kind == kProgressRecord) {
        GrapeTrialState state;
        state.key = key;
        if (!c.getI32(state.iteration) || state.iteration < 0
            || !c.getF64(state.bestFidelity) || !c.getMat(state.u)
            || !c.getMat(state.m) || !c.getMat(state.v)
            || !c.getMat(state.bestU) || c.p != c.end)
            return false;
        progress[trialId(key)] = std::move(state); // latest wins
        return true;
    }
    if (kind == kCompletedRecord) {
        GrapeResult result;
        std::uint8_t converged = 0;
        if (!c.getU8(converged) || !c.getI32(result.iterations)
            || !c.getF64(result.schedule.fidelity)
            || !c.getMat(result.schedule.amplitudes) || c.p != c.end)
            return false;
        result.converged = converged != 0;
        completed[trialId(key)] = std::move(result);
        return true;
    }
    return false;
}

} // namespace

/**
 * One open checkpoint file: replay maps recovered at open time (then
 * read-only), a journal writer for new records, and the flock that
 * keeps other workers out until close or discard.
 */
class CheckpointFile final : public GrapeCheckpoint
{
  public:
    CheckpointFile(CheckpointStore *owner, std::string path,
                   int lock_fd, JournalWriter writer, bool degraded,
                   std::map<TrialId, GrapeResult> completed,
                   std::map<TrialId, GrapeTrialState> progress)
        : owner_(owner), path_(std::move(path)),
          completed_(std::move(completed)),
          progress_(std::move(progress)), lock_fd_(lock_fd),
          writer_(std::move(writer)), degraded_(degraded)
    {}

    ~CheckpointFile() override
    {
        MutexLock lock(write_mutex_);
        writer_.close();
        if (lock_fd_ >= 0) {
            ::close(lock_fd_);
            lock_fd_ = -1;
        }
    }

    std::optional<GrapeResult>
    completedTrial(const GrapeTrialKey &key) const override
    {
        const auto it = completed_.find(trialId(key));
        if (it == completed_.end())
            return std::nullopt;
        owner_->noteCompletedHit();
        return it->second;
    }

    std::optional<GrapeTrialState>
    trialState(const GrapeTrialKey &key) const override
    {
        const auto it = progress_.find(trialId(key));
        if (it == progress_.end())
            return std::nullopt;
        owner_->noteResume();
        return it->second;
    }

    void
    saveTrialState(const GrapeTrialState &state) override
    {
        appendRecord(encodeProgress(state));
    }

    void
    saveCompletedTrial(const GrapeTrialKey &key,
                       const GrapeResult &result) override
    {
        appendRecord(encodeCompleted(key, result));
    }

    void
    discard() override
    {
        MutexLock lock(write_mutex_);
        if (lock_fd_ < 0)
            return;
        writer_.close();
        ::unlink(path_.c_str());
        ::close(lock_fd_);
        lock_fd_ = -1;
        owner_->noteDiscard();
    }

  private:
    void
    appendRecord(const std::string &payload)
    {
        MutexLock lock(write_mutex_);
        if (degraded_ || !writer_.isOpen())
            return;
        try {
            writer_.append(payload);
        } catch (const FatalError &e) {
            // Best effort: the derivation keeps running, this file
            // just stops growing (its recovered prefix stays valid).
            degraded_ = true;
            owner_->noteFailedWrite(e.what());
            return;
        }
        owner_->noteRecordWritten();
    }

    CheckpointStore *owner_;
    const std::string path_;
    // Replay maps are filled at open and read-only afterwards, so
    // concurrent trial lookups need no lock.
    const std::map<TrialId, GrapeResult> completed_;
    const std::map<TrialId, GrapeTrialState> progress_;

    Mutex write_mutex_;
    int lock_fd_ PAQOC_GUARDED_BY(write_mutex_);
    JournalWriter writer_ PAQOC_GUARDED_BY(write_mutex_);
    bool degraded_ PAQOC_GUARDED_BY(write_mutex_);
};

CheckpointStore::CheckpointStore(std::string directory,
                                 std::string config_fingerprint)
    : directory_(std::move(directory)),
      config_fingerprint_(std::move(config_fingerprint))
{}

std::string
CheckpointStore::checkpointPath(const std::string &canonical_key) const
{
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08x",
                  crc32(canonical_key.data(), canonical_key.size()));
    return directory_ + "/" + hex + "-"
        + std::to_string(canonical_key.size()) + ".ckpt";
}

std::unique_ptr<GrapeCheckpoint>
CheckpointStore::openCheckpoint(const std::string &canonical_key)
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        noteWarning("cannot create checkpoint directory '" + directory_
                    + "': " + ec.message());
        return nullptr;
    }
    const std::string path = checkpointPath(canonical_key);
    // The fingerprint binds the file to configuration AND key, so a
    // CRC32 filename collision between two keys is detected as a
    // mismatch and rotated rather than silently cross-resumed.
    const std::string fingerprint =
        config_fingerprint_ + "\n" + canonical_key;

    for (int attempt = 0; attempt < 3; ++attempt) {
        const int fd =
            ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd < 0) {
            noteWarning("cannot open checkpoint '" + path
                        + "': " + std::strerror(errno));
            return nullptr;
        }
        if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
            ::close(fd);
            MutexLock lock(mutex_);
            ++stats_.lockBusy;
            return nullptr;
        }
        struct stat st{};
        const std::uint64_t size = ::fstat(fd, &st) == 0
            ? static_cast<std::uint64_t>(st.st_size)
            : 0;
        if (size > 0
            && failpoint::evaluate("checkpoint.corrupt").action
                != failpoint::Action::Off) {
            rotateAside(path, ".corrupt", fd,
                        "checkpoint.corrupt failpoint");
            continue;
        }

        std::map<TrialId, GrapeResult> completed;
        std::map<TrialId, GrapeTrialState> progress;
        std::size_t recovered = 0, corrupt = 0;
        const JournalScan scan = scanJournal(
            path, fingerprint, [&](const std::string &payload) {
                if (decodeRecord(payload, completed, progress))
                    ++recovered;
                else
                    ++corrupt;
            });
        if (size > 0
            && (!scan.headerValid || scan.fingerprint != fingerprint)) {
            rotateAside(path, ".stale", fd, scan.warning);
            continue;
        }

        JournalWriter writer;
        bool degraded = false;
        try {
            writer = JournalWriter::openAppend(path, fingerprint,
                                               scan.committedBytes,
                                               "checkpoint.append");
        } catch (const FatalError &e) {
            degraded = true;
            noteFailedWrite(e.what());
        }

        {
            MutexLock lock(mutex_);
            ++stats_.opened;
            stats_.recordsRecovered += recovered;
            stats_.corruptRecords += corrupt;
            if (size > 0 && scan.droppedBytes > 0) {
                ++stats_.corruptRecords;
                stats_.warnings.push_back(
                    scan.warning.empty()
                        ? "checkpoint '" + path
                              + "': torn tail skipped"
                        : scan.warning);
            }
            if (corrupt > 0)
                stats_.warnings.push_back(
                    "checkpoint '" + path + "': "
                    + std::to_string(corrupt)
                    + " undecodable record(s) skipped");
        }
        return std::make_unique<CheckpointFile>(
            this, path, fd, std::move(writer), degraded,
            std::move(completed), std::move(progress));
    }
    noteWarning("checkpoint '" + path
                + "': rotated repeatedly; running without checkpoint");
    return nullptr;
}

void
CheckpointStore::rotateAside(const std::string &path,
                             const char *suffix, int fd,
                             const std::string &why)
{
    const std::string aside = path + suffix;
    ::unlink(aside.c_str());
    ::rename(path.c_str(), aside.c_str());
    ::close(fd);
    MutexLock lock(mutex_);
    ++stats_.rotatedFiles;
    stats_.warnings.push_back(
        "checkpoint '" + path + "' rotated to '" + aside + "'"
        + (why.empty() ? "" : ": " + why));
}

CheckpointStore::Stats
CheckpointStore::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
CheckpointStore::noteResume()
{
    MutexLock lock(mutex_);
    ++stats_.resumedTrials;
}

void
CheckpointStore::noteCompletedHit()
{
    MutexLock lock(mutex_);
    ++stats_.completedTrialHits;
}

void
CheckpointStore::noteRecordWritten()
{
    MutexLock lock(mutex_);
    ++stats_.recordsWritten;
}

void
CheckpointStore::noteDiscard()
{
    MutexLock lock(mutex_);
    ++stats_.discarded;
}

void
CheckpointStore::noteFailedWrite(const std::string &warning)
{
    MutexLock lock(mutex_);
    ++stats_.failedWrites;
    stats_.warnings.push_back(warning);
}

void
CheckpointStore::noteWarning(const std::string &warning)
{
    MutexLock lock(mutex_);
    stats_.warnings.push_back(warning);
}

} // namespace paqoc
