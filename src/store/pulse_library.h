#ifndef PAQOC_STORE_PULSE_LIBRARY_H_
#define PAQOC_STORE_PULSE_LIBRARY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "qoc/grape.h"
#include "qoc/pulse_cache.h"
#include "store/journal.h"

namespace paqoc {

/** Tuning knobs of a PulseLibrary. */
struct PulseLibraryOptions
{
    /**
     * fsync after every appended record. Off by default: a process
     * crash (kill -9) never loses flushed appends anyway because each
     * record is a single write(); fsync only adds protection against
     * whole-OS crashes, at a large per-record cost. Compaction and
     * graceful shutdown always fsync.
     */
    bool syncEveryAppend = false;
};

/** What a library recovered and did; surfaced by `paqocd` and tests. */
struct PulseLibraryStats
{
    /** Records loaded from the snapshot file. */
    std::size_t snapshotRecords = 0;
    /** Records replayed from the journal. */
    std::size_t journalRecords = 0;
    /** CRC-valid records whose payload failed to decode (skipped). */
    std::size_t corruptPayloads = 0;
    /** Torn/corrupt tail bytes dropped during recovery. */
    std::uint64_t droppedTailBytes = 0;
    /** Records appended since open. */
    std::size_t appendedRecords = 0;
    /**
     * True once a journal write, fsync, or compaction failed (disk
     * full, injected failpoint). The library then serves read-only
     * from memory: new derivations update the in-memory map but are
     * no longer persisted, and compaction is skipped. A restart with
     * a healthy disk recovers everything journaled before the fault.
     */
    bool degraded = false;
    /** Appends abandoned because of the degraded transition. */
    std::size_t failedAppends = 0;
    /** Degraded (stitched-fallback) pulses refused persistence. */
    std::size_t skippedDegradedPulses = 0;
    /** Everything recovery had to skip or rotate aside. */
    std::vector<std::string> warnings;
};

/**
 * Crash-safe durable pulse library (DESIGN.md §6): the persistence
 * layer that lets the paper's offline/online split outlive a process.
 * State lives in a directory as
 *
 *   snapshot.bin   last compaction (journal record format)
 *   journal.bin    CRC32-checked append-only journal since then
 *
 * both keyed by PulseCache::canonicalKey and stamped with a
 * device/GRAPE-config fingerprint -- a library written under one
 * backend configuration is never served to another (mismatched files
 * are rotated aside with a warning, not deleted).
 *
 * Usage (order matters -- warm before attach, or warmed entries echo
 * back into the journal):
 *
 *   PulseLibrary lib(dir, PulseLibrary::spectralFingerprint());
 *   lib.warm(generator.cache());   // start warm
 *   generator.cache().attachStore(&lib); // journal completed flights
 *   ...
 *   lib.compact();                 // snapshot + truncate, fsynced
 *
 * Durability guarantees: every append is a single write() to an
 * append-only fd, so kill -9 at any instant leaves a valid prefix plus
 * at most one torn record, which recovery skips and reports. Recovery
 * never aborts on corrupt content. Compaction writes the snapshot to a
 * temp file, fsyncs, and renames -- a crash mid-compaction leaves
 * either the old or the new snapshot, never a mix.
 *
 * Thread-safety: onInsert/compact/size/stats are internally locked;
 * the library is shared by all of a daemon's generators.
 */
class PulseLibrary : public PulseStoreSink
{
  public:
    /**
     * Open (or create) the library in `directory`, recovering snapshot
     * and journal. Raises FatalError only on real I/O failures (e.g.
     * unwritable directory), never on corrupt or foreign content.
     */
    PulseLibrary(std::string directory, std::string fingerprint,
                 PulseLibraryOptions options = {});
    ~PulseLibrary() override;

    /** Insert every stored pulse into `cache` (call before attach). */
    void warm(PulseCache &cache) const;

    /**
     * Copy of the live entries, ordered by canonical key. The service
     * freezes this at startup as its serving epoch (see
     * PulseService): requests warm per-request caches from the frozen
     * copy, so concurrent serving stays deterministic while fresh
     * derivations keep journaling here for the next launch.
     */
    std::vector<CachedPulse> entriesSnapshot() const;

    /** PulseStoreSink: journal one published cache entry. */
    void onInsert(const std::string &key,
                  const CachedPulse &entry) override;

    /**
     * Chain a second sink behind this one (null detaches): every
     * entry accepted by onInsert is forwarded after the library's own
     * lock is released -- the shared-tier write-behind queue hangs
     * here. Entries the tier already owns (CachedPulse::fromTier) and
     * degraded pulses are not forwarded. Set during single-threaded
     * setup, like PulseCache::attachStore.
     */
    void setForwardSink(PulseStoreSink *sink);

    /**
     * Fold the journal into a fresh snapshot (write-temp-fsync-rename)
     * and truncate the journal. Safe to call at any time.
     */
    void compact();

    /** fsync the journal (graceful-shutdown path). */
    void sync();

    /** Live (deduplicated) record count. */
    std::size_t size() const;
    PulseLibraryStats stats() const;
    const std::string &directory() const { return directory_; }
    const std::string &fingerprint() const { return fingerprint_; }

    /** Fingerprint of the analytical backend + device constants. */
    static std::string spectralFingerprint();
    /** Fingerprint of a GRAPE backend configuration + device. */
    static std::string grapeFingerprint(const GrapeOptions &options);

  private:
    /**
     * Recovery-time only (runs in the constructor, before the object
     * is shared), hence exempt from the lock analysis.
     */
    void applyRecord(const std::string &payload, std::size_t &counter)
        PAQOC_NO_THREAD_SAFETY_ANALYSIS;

    /**
     * Flip to read-only degraded mode after a persistence failure:
     * close the journal, record the reason, and keep serving from
     * memory (DESIGN.md §9).
     */
    void enterDegradedLocked(const std::string &reason)
        PAQOC_REQUIRES(mutex_);

    std::string snapshotPath() const;
    std::string journalPath() const;

    mutable Mutex mutex_;
    std::string directory_;
    std::string fingerprint_;
    PulseLibraryOptions options_;
    /** Ordered by canonical key so snapshots are deterministic. */
    std::map<std::string, CachedPulse> entries_
        PAQOC_GUARDED_BY(mutex_);
    JournalWriter journal_ PAQOC_GUARDED_BY(mutex_);
    PulseLibraryStats stats_ PAQOC_GUARDED_BY(mutex_);
    /** Set in single-threaded setup; reads are lock-free. */
    std::atomic<PulseStoreSink *> forward_{nullptr};
};

/** Binary record payload codec (exposed for tests and tooling). */
std::string encodePulseRecord(const std::string &key,
                              const CachedPulse &entry);
/** Returns nullopt on a structurally invalid payload. */
std::optional<std::pair<std::string, CachedPulse>>
decodePulseRecord(const std::string &payload);

} // namespace paqoc

#endif // PAQOC_STORE_PULSE_LIBRARY_H_
