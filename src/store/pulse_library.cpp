#include "store/pulse_library.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "qoc/device.h"

namespace paqoc {

namespace {

constexpr char kSnapshotFile[] = "snapshot.bin";
constexpr char kJournalFile[] = "journal.bin";

void
putU32(std::string &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
}

void
putF64(std::string &out, double v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
}

/** Bounds-checked cursor over a record payload. */
struct Cursor
{
    const std::string &data;
    std::size_t pos = 0;
    bool ok = true;

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        if (pos + 4 > data.size()) {
            ok = false;
            return 0;
        }
        std::memcpy(&v, data.data() + pos, 4);
        pos += 4;
        return v;
    }

    double
    f64()
    {
        double v = 0.0;
        if (pos + 8 > data.size()) {
            ok = false;
            return 0.0;
        }
        std::memcpy(&v, data.data() + pos, 8);
        pos += 8;
        return v;
    }

    std::string
    bytes(std::size_t n)
    {
        if (pos + n > data.size()) {
            ok = false;
            return {};
        }
        std::string s = data.substr(pos, n);
        pos += n;
        return s;
    }
};

void
makeDirectory(const std::string &path)
{
    // mkdir -p over the path's components.
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial += path[i];
            continue;
        }
        if (i < path.size())
            partial += '/';
        if (partial.empty() || partial == "/")
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            PAQOC_FATAL_IF(true, "cannot create directory '", partial,
                           "': ", std::strerror(errno));
    }
}

void
rotateAside(const std::string &path, std::vector<std::string> &warnings)
{
    const std::string stale = path + ".stale";
    ::unlink(stale.c_str());
    if (::rename(path.c_str(), stale.c_str()) == 0)
        warnings.push_back("rotated incompatible file '" + path
                           + "' to '" + stale + "'");
}

void
fsyncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

std::string
encodePulseRecord(const std::string &key, const CachedPulse &entry)
{
    std::string out;
    const std::size_t dim = entry.unitary.rows();
    const std::size_t slices = entry.schedule.amplitudes.size();
    const std::size_t channels =
        slices > 0 ? entry.schedule.amplitudes[0].size() : 0;
    out.reserve(key.size() + dim * dim * 16 + slices * channels * 8
                + 64);
    putU32(out, static_cast<std::uint32_t>(key.size()));
    out += key;
    putU32(out, static_cast<std::uint32_t>(entry.numQubits));
    putF64(out, entry.latency);
    putF64(out, entry.error);
    putU32(out, static_cast<std::uint32_t>(dim));
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
            putF64(out, entry.unitary(r, c).real());
            putF64(out, entry.unitary(r, c).imag());
        }
    }
    putU32(out, static_cast<std::uint32_t>(slices));
    putU32(out, static_cast<std::uint32_t>(channels));
    putF64(out, entry.schedule.fidelity);
    for (const auto &slice : entry.schedule.amplitudes) {
        PAQOC_ASSERT(slice.size() == channels,
                     "ragged schedule cannot be serialized");
        for (double a : slice)
            putF64(out, a);
    }
    return out;
}

std::optional<std::pair<std::string, CachedPulse>>
decodePulseRecord(const std::string &payload)
{
    Cursor cur{payload};
    const std::uint32_t key_len = cur.u32();
    if (!cur.ok || key_len > payload.size())
        return std::nullopt;
    std::string key = cur.bytes(key_len);
    CachedPulse entry;
    entry.numQubits = static_cast<int>(cur.u32());
    entry.latency = cur.f64();
    entry.error = cur.f64();
    const std::uint32_t dim = cur.u32();
    if (!cur.ok || entry.numQubits <= 0 || entry.numQubits > 8
        || dim != (std::uint32_t{1} << entry.numQubits))
        return std::nullopt;
    entry.unitary = Matrix(dim, dim);
    for (std::uint32_t r = 0; r < dim; ++r)
        for (std::uint32_t c = 0; c < dim; ++c) {
            const double re = cur.f64();
            const double im = cur.f64();
            entry.unitary(r, c) = Complex(re, im);
        }
    const std::uint32_t slices = cur.u32();
    const std::uint32_t channels = cur.u32();
    entry.schedule.fidelity = cur.f64();
    if (!cur.ok
        || static_cast<std::uint64_t>(slices) * channels * 8
            > payload.size())
        return std::nullopt;
    entry.schedule.amplitudes.assign(slices,
                                     std::vector<double>(channels));
    for (auto &slice : entry.schedule.amplitudes)
        for (double &a : slice)
            a = cur.f64();
    if (!cur.ok || cur.pos != payload.size())
        return std::nullopt;
    return std::make_pair(std::move(key), std::move(entry));
}

PulseLibrary::PulseLibrary(std::string directory, std::string fingerprint,
                           PulseLibraryOptions options)
    : directory_(std::move(directory)),
      fingerprint_(std::move(fingerprint)), options_(options)
{
    makeDirectory(directory_);

    // 1. Snapshot: the state as of the last compaction.
    JournalScan snap = scanJournal(
        snapshotPath(), fingerprint_, [this](const std::string &p) {
            applyRecord(p, stats_.snapshotRecords);
        });
    if (!snap.warning.empty())
        stats_.warnings.push_back(snap.warning);
    if (!snap.headerValid
        || (!snap.fingerprint.empty()
            && snap.fingerprint != fingerprint_))
        rotateAside(snapshotPath(), stats_.warnings);
    stats_.droppedTailBytes += snap.droppedBytes;

    // 2. Journal: everything appended since; later records win.
    JournalScan jrn = scanJournal(
        journalPath(), fingerprint_, [this](const std::string &p) {
            applyRecord(p, stats_.journalRecords);
        });
    if (!jrn.warning.empty())
        stats_.warnings.push_back(jrn.warning);
    std::uint64_t truncate_to = jrn.committedBytes;
    if (!jrn.headerValid
        || (!jrn.fingerprint.empty()
            && jrn.fingerprint != fingerprint_)) {
        rotateAside(journalPath(), stats_.warnings);
        truncate_to = 0; // fresh file, openAppend writes the header
    } else {
        stats_.droppedTailBytes += jrn.droppedBytes;
    }

    // 3. Reopen for appending, dropping any torn tail.
    journal_ =
        JournalWriter::openAppend(journalPath(), fingerprint_,
                                  truncate_to);
}

PulseLibrary::~PulseLibrary()
{
    journal_.sync();
}

void
PulseLibrary::applyRecord(const std::string &payload,
                          std::size_t &counter)
{
    // Called during recovery only (constructor; mutex not yet shared).
    auto decoded = decodePulseRecord(payload);
    if (!decoded.has_value()) {
        ++stats_.corruptPayloads;
        stats_.warnings.push_back(
            "pulse library: skipped an undecodable record of "
            + std::to_string(payload.size()) + " bytes");
        return;
    }
    entries_[decoded->first] = std::move(decoded->second);
    ++counter;
}

void
PulseLibrary::warm(PulseCache &cache) const
{
    MutexLock lock(mutex_);
    for (const auto &[key, entry] : entries_) {
        CachedPulse copy = entry;
        cache.insert(entry.unitary, entry.numQubits, std::move(copy));
    }
}

std::vector<CachedPulse>
PulseLibrary::entriesSnapshot() const
{
    MutexLock lock(mutex_);
    std::vector<CachedPulse> out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_)
        out.push_back(entry);
    return out;
}

void
PulseLibrary::onInsert(const std::string &key, const CachedPulse &entry)
{
    bool fresh = false;
    {
        MutexLock lock(mutex_);
        if (entry.degraded) {
            // Stitched best-effort pulses are session-local: serving
            // them again after a restart would freeze a degraded
            // result into the library forever.
            ++stats_.skippedDegradedPulses;
            return;
        }
        const auto it = entries_.find(key);
        if (it != entries_.end() && it->second.latency == entry.latency
            && it->second.error == entry.error
            && it->second.schedule.amplitudes.size()
                == entry.schedule.amplitudes.size()) {
            // Exact re-derivation of a stored pulse: nothing new to
            // log (and nothing new for the forward sink either).
            return;
        }
        entries_[key] = entry;
        fresh = true;
        if (stats_.degraded) {
            // Read-only mode: keep serving the fresh derivation from
            // memory, but stop touching the (failing) disk.
            ++stats_.failedAppends;
        } else {
            try {
                journal_.append(encodePulseRecord(key, entry));
                ++stats_.appendedRecords;
                if (options_.syncEveryAppend && !journal_.sync())
                    enterDegradedLocked("journal fsync failed");
            } catch (const FatalError &e) {
                ++stats_.failedAppends;
                enterDegradedLocked(e.what());
            }
        }
    }
    // Write-behind forwarding runs outside the lock (the tier queue
    // takes its own). Entries that came *from* the tier stay here --
    // echoing them back would just churn the queue -- and a locally
    // degraded library still forwards: the tier may well be healthier
    // than this host's disk.
    if (fresh && !entry.fromTier) {
        if (PulseStoreSink *next =
                forward_.load(std::memory_order_acquire))
            next->onInsert(key, entry);
    }
}

void
PulseLibrary::setForwardSink(PulseStoreSink *sink)
{
    forward_.store(sink, std::memory_order_release);
}

void
PulseLibrary::enterDegradedLocked(const std::string &reason)
{
    if (stats_.degraded)
        return;
    stats_.degraded = true;
    stats_.warnings.push_back(
        "pulse library degraded to read-only: " + reason);
    // The fd is in an unknown state (possibly a torn tail record);
    // the next clean start rescans, truncates, and recovers.
    journal_.close();
}

void
PulseLibrary::compact()
{
    MutexLock lock(mutex_);
    if (stats_.degraded) {
        // The disk already failed once; rewriting the snapshot could
        // replace a good file with a torn one. Keep what we have.
        return;
    }
    try {
        const std::string tmp = snapshotPath() + ".tmp";
        ::unlink(tmp.c_str());
        {
            JournalWriter snap =
                JournalWriter::openAppend(tmp, fingerprint_, 0);
            for (const auto &[key, entry] : entries_)
                snap.append(encodePulseRecord(key, entry));
            PAQOC_FATAL_IF(!snap.sync(), "cannot fsync snapshot '",
                           tmp, "'");
        }
        const failpoint::Hit hit =
            failpoint::evaluate("library.compact");
        const bool rename_blocked =
            hit.action != failpoint::Action::Off
            && hit.action != failpoint::Action::DelayMs;
        PAQOC_FATAL_IF(rename_blocked
                           || ::rename(tmp.c_str(),
                                       snapshotPath().c_str())
                               != 0,
                       "cannot publish snapshot '", snapshotPath(),
                       "': ",
                       rename_blocked ? "injected rename failure"
                                      : std::strerror(errno));
        fsyncDirectory(directory_);

        // Reset the journal: every record it held is now in the
        // snapshot. A crash before this truncate merely leaves
        // duplicate records, which replay idempotently.
        journal_.close();
        PAQOC_FATAL_IF(::truncate(journalPath().c_str(), 0) != 0,
                       "cannot truncate journal '", journalPath(),
                       "': ", std::strerror(errno));
        journal_ =
            JournalWriter::openAppend(journalPath(), fingerprint_, 0);
        PAQOC_FATAL_IF(!journal_.sync(), "cannot fsync journal '",
                       journalPath(), "'");
    } catch (const FatalError &e) {
        // Compaction is an optimization; failing it must not take the
        // daemon down. The snapshot/journal pair on disk is still one
        // of the states the crash-safety argument covers.
        enterDegradedLocked(e.what());
    }
}

void
PulseLibrary::sync()
{
    MutexLock lock(mutex_);
    if (!stats_.degraded && !journal_.sync())
        enterDegradedLocked("journal fsync failed");
}

std::size_t
PulseLibrary::size() const
{
    MutexLock lock(mutex_);
    return entries_.size();
}

PulseLibraryStats
PulseLibrary::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

std::string
PulseLibrary::spectralFingerprint()
{
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "spectral-v1;dev=xy-transmon;u2=%.17g;u1=%.17g",
                  DeviceModel::kTwoQubitBound,
                  DeviceModel::kOneQubitBound);
    return buf;
}

std::string
PulseLibrary::grapeFingerprint(const GrapeOptions &options)
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "grape-v1;dev=xy-transmon;u2=%.17g;u1=%.17g;"
                  "ti=%.17g;mi=%d;lr=%.17g;seed=%llu;rs=%d;dp=%d",
                  DeviceModel::kTwoQubitBound,
                  DeviceModel::kOneQubitBound, options.targetInfidelity,
                  options.maxIterations, options.learningRate,
                  static_cast<unsigned long long>(options.seed),
                  options.restarts, options.durationProbes);
    return buf;
}

std::string
PulseLibrary::snapshotPath() const
{
    return directory_ + "/" + kSnapshotFile;
}

std::string
PulseLibrary::journalPath() const
{
    return directory_ + "/" + kJournalFile;
}

} // namespace paqoc
