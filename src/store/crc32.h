#ifndef PAQOC_STORE_CRC32_H_
#define PAQOC_STORE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace paqoc {

/**
 * IEEE 802.3 CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320),
 * used to checksum every journal record. Self-contained table-based
 * implementation; crc32("123456789") == 0xCBF43926.
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

} // namespace paqoc

#endif // PAQOC_STORE_CRC32_H_
