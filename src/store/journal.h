#ifndef PAQOC_STORE_JOURNAL_H_
#define PAQOC_STORE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>

namespace paqoc {

/**
 * Append-only record journal with per-record CRC32, the durability
 * primitive under the pulse library (DESIGN.md §6).
 *
 * On-disk layout (all integers little-endian):
 *
 *   header:  "paqocjnl" (8 bytes) | u32 version=1
 *            | u32 fingerprint_len | fingerprint bytes
 *   record:  u32 payload_len | u32 crc32(payload) | payload bytes
 *
 * The journal is written append-only with one write() per record, so a
 * crash (including kill -9) can only produce a *truncated or torn
 * tail*, never a hole in the middle. Recovery (scanJournal) walks
 * records until the first length/CRC violation and reports the bad
 * tail instead of aborting; the writer then truncates the file back to
 * the committed prefix before appending again.
 */
struct JournalScan
{
    /** False when the file exists but magic/version/header is bad. */
    bool headerValid = true;
    /** Fingerprint stored in the header (empty for a missing file). */
    std::string fingerprint;
    /** Committed records delivered to the callback. */
    std::size_t records = 0;
    /** Byte length of the valid prefix (header + committed records). */
    std::uint64_t committedBytes = 0;
    /** Bytes of torn/corrupt tail after the valid prefix. */
    std::uint64_t droppedBytes = 0;
    /** Human-readable description of anything skipped; empty if clean. */
    std::string warning;
};

/**
 * Scan `path`, invoking `on_record` for every committed record in
 * order. Missing file yields an empty clean scan. Never throws on
 * corrupt content -- damage is reported through the scan result; only
 * I/O errors opening a file that exists raise FatalError. When the
 * header fingerprint differs from `expected_fingerprint`, no records
 * are delivered (the caller decides whether to discard or rotate).
 */
JournalScan scanJournal(
    const std::string &path, const std::string &expected_fingerprint,
    const std::function<void(const std::string &payload)> &on_record);

/** Writer end of a journal file. Not internally synchronized. */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(JournalWriter &&other) noexcept;
    JournalWriter &operator=(JournalWriter &&other) noexcept;
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open `path` for appending, creating it (with a fresh header) if
     * missing or empty. `truncate_to` should be the committedBytes of
     * a prior scanJournal: a file longer than that is truncated first,
     * dropping a torn tail. Raises FatalError on I/O failure or a
     * fingerprint/header mismatch (scan first to detect those).
     * `append_point` names the failpoint evaluated on every append,
     * letting each journal family (library vs. checkpoint) be faulted
     * independently.
     */
    static JournalWriter openAppend(
        const std::string &path, const std::string &fingerprint,
        std::uint64_t truncate_to,
        const std::string &append_point = "journal.append");

    /**
     * Append one record (length + CRC + payload in a single write).
     * Raises FatalError on write failure (including an injected
     * `journal.append` failpoint); the file may then hold a torn tail
     * record, which the next scan skips and truncates.
     */
    void append(const std::string &payload);

    /**
     * fsync the file (compaction and graceful shutdown). Returns
     * false when the kernel refuses (`journal.fsync` failpoint or a
     * real device error); callers treat that as a durability loss.
     */
    bool sync();

    void close();
    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string append_point_ = "journal.append";
};

} // namespace paqoc

#endif // PAQOC_STORE_JOURNAL_H_
