#include "store/journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "store/crc32.h"

namespace paqoc {

namespace {

constexpr char kMagic[8] = {'p', 'a', 'q', 'o', 'c', 'j', 'n', 'l'};
constexpr std::uint32_t kVersion = 1;
/** Sanity bound: no single pulse record approaches this. */
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

void
putU32(std::string &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
}

bool
readExact(std::ifstream &in, char *buf, std::size_t n)
{
    in.read(buf, static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(in.gcount()) == n;
}

std::string
headerBytes(const std::string &fingerprint)
{
    std::string h(kMagic, sizeof kMagic);
    putU32(h, kVersion);
    putU32(h, static_cast<std::uint32_t>(fingerprint.size()));
    h += fingerprint;
    return h;
}

/**
 * Write all of `buf` through the named failpoint, retrying short
 * writes and EINTR; anything else raises FatalError with `what`.
 */
void
writeFully(const char *point, int fd, const char *buf, std::size_t n,
           const char *what)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t wrote =
            failpoint::checkedWrite(point, fd, buf + off, n - off);
        if (wrote < 0 && errno == EINTR)
            continue;
        PAQOC_FATAL_IF(wrote <= 0, what, ": ", std::strerror(errno));
        off += static_cast<std::size_t>(wrote);
    }
}

} // namespace

JournalScan
scanJournal(const std::string &path,
            const std::string &expected_fingerprint,
            const std::function<void(const std::string &)> &on_record)
{
    JournalScan scan;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        // Missing file: clean empty scan; the writer creates it.
        return scan;
    }
    in.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    char magic[8];
    std::uint32_t version = 0, fp_len = 0;
    if (!readExact(in, magic, sizeof magic)
        || std::memcmp(magic, kMagic, sizeof kMagic) != 0
        || !readExact(in, reinterpret_cast<char *>(&version), 4)
        || version != kVersion
        || !readExact(in, reinterpret_cast<char *>(&fp_len), 4)
        || fp_len > kMaxRecordBytes) {
        scan.headerValid = false;
        scan.droppedBytes = file_size;
        scan.warning = "journal '" + path
            + "': unrecognized header; file ignored";
        return scan;
    }
    std::string fingerprint(fp_len, '\0');
    if (fp_len > 0 && !readExact(in, fingerprint.data(), fp_len)) {
        scan.headerValid = false;
        scan.droppedBytes = file_size;
        scan.warning = "journal '" + path
            + "': truncated header; file ignored";
        return scan;
    }
    scan.fingerprint = fingerprint;
    scan.committedBytes = sizeof kMagic + 8 + fp_len;
    if (fingerprint != expected_fingerprint) {
        scan.droppedBytes = file_size - scan.committedBytes;
        scan.warning = "journal '" + path + "': fingerprint '"
            + fingerprint + "' does not match current configuration";
        return scan;
    }

    std::string payload;
    for (;;) {
        std::uint32_t len = 0, crc = 0;
        if (!readExact(in, reinterpret_cast<char *>(&len), 4))
            break; // clean EOF or torn length word
        if (len > kMaxRecordBytes
            || !readExact(in, reinterpret_cast<char *>(&crc), 4)) {
            scan.warning = "journal '" + path
                + "': torn record header after "
                + std::to_string(scan.records)
                + " records; tail skipped";
            break;
        }
        payload.resize(len);
        if (!readExact(in, payload.data(), len)) {
            scan.warning = "journal '" + path
                + "': truncated record payload after "
                + std::to_string(scan.records)
                + " records; tail skipped";
            break;
        }
        if (crc32(payload.data(), payload.size()) != crc) {
            scan.warning = "journal '" + path
                + "': CRC mismatch in record "
                + std::to_string(scan.records + 1)
                + "; tail skipped";
            break;
        }
        on_record(payload);
        ++scan.records;
        scan.committedBytes += 8 + len;
    }
    scan.droppedBytes = file_size - scan.committedBytes;
    return scan;
}

JournalWriter::~JournalWriter()
{
    close();
}

JournalWriter::JournalWriter(JournalWriter &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      append_point_(std::move(other.append_point_))
{}

JournalWriter &
JournalWriter::operator=(JournalWriter &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        append_point_ = std::move(other.append_point_);
    }
    return *this;
}

JournalWriter
JournalWriter::openAppend(const std::string &path,
                          const std::string &fingerprint,
                          std::uint64_t truncate_to,
                          const std::string &append_point)
{
    JournalWriter w;
    w.append_point_ = append_point;
    w.fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    PAQOC_FATAL_IF(w.fd_ < 0, "cannot open journal '", path,
                   "': ", std::strerror(errno));

    struct stat st{};
    PAQOC_FATAL_IF(::fstat(w.fd_, &st) != 0, "cannot stat journal '",
                   path, "': ", std::strerror(errno));
    const std::string header = headerBytes(fingerprint);
    if (st.st_size == 0) {
        writeFully("journal.open", w.fd_, header.data(), header.size(),
                   "cannot write journal header");
    } else {
        PAQOC_FATAL_IF(truncate_to < header.size(),
                       "journal '", path,
                       "' exists but the committed prefix is shorter "
                       "than its header (scan it first)");
        if (static_cast<std::uint64_t>(st.st_size) > truncate_to) {
            PAQOC_FATAL_IF(
                ::ftruncate(w.fd_,
                            static_cast<off_t>(truncate_to)) != 0,
                "cannot truncate torn tail of '", path,
                "': ", std::strerror(errno));
        }
    }
    PAQOC_FATAL_IF(::lseek(w.fd_, 0, SEEK_END) < 0, "cannot seek '",
                   path, "': ", std::strerror(errno));
    return w;
}

void
JournalWriter::append(const std::string &payload)
{
    PAQOC_ASSERT(fd_ >= 0, "append on a closed journal");
    PAQOC_FATAL_IF(payload.size() > kMaxRecordBytes,
                   "journal record too large (", payload.size(),
                   " bytes)");
    std::string rec;
    rec.reserve(8 + payload.size());
    putU32(rec, static_cast<std::uint32_t>(payload.size()));
    putU32(rec, crc32(payload.data(), payload.size()));
    rec += payload;
    // One write() per record: a crash can tear the tail record but
    // never interleave two records.
    writeFully(append_point_.c_str(), fd_, rec.data(), rec.size(),
               "journal append failed");
}

bool
JournalWriter::sync()
{
    if (fd_ < 0)
        return true;
    return failpoint::checkedFsync("journal.fsync", fd_) == 0;
}

void
JournalWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace paqoc
