#ifndef PAQOC_STORE_CHECKPOINT_STORE_H_
#define PAQOC_STORE_CHECKPOINT_STORE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "qoc/grape.h"

namespace paqoc {

class CheckpointFile;

/**
 * File-backed GrapeCheckpointProvider (DESIGN.md §10): one CRC32-
 * framed journal file per in-flight pulse derivation, named by the
 * CRC32 of its canonical cache key, under a dedicated checkpoint
 * directory.
 *
 * Each file reuses the store's journal primitives -- the header
 * fingerprint binds the file to both the GRAPE configuration and the
 * canonical key, records are `u32 len | u32 crc | payload` appended
 * through the failpoint-aware checked* wrappers (point
 * `checkpoint.append`), and recovery is scan-skip-and-warn: a
 * truncated or bit-flipped tail drops the damaged suffix and resumes
 * from the last intact record, never from corrupt bytes. A file whose
 * header or fingerprint does not match is rotated aside (`.stale`,
 * or `.corrupt` under the `checkpoint.corrupt` failpoint) and the
 * derivation starts fresh.
 *
 * Files are advisory-locked (flock) while open so two workers cannot
 * interleave appends; a locked file makes openCheckpoint return
 * nullptr and the caller simply runs without checkpointing. All
 * persistence is best effort: a failed append degrades the checkpoint
 * to read-only instead of failing the derivation.
 */
class CheckpointStore : public GrapeCheckpointProvider
{
  public:
    struct Stats
    {
        /** Checkpoint files opened (fresh or recovered). */
        std::size_t opened = 0;
        /** openCheckpoint refusals due to a concurrent holder. */
        std::size_t lockBusy = 0;
        /** Mid-trial snapshots handed to a resuming optimizer. */
        std::size_t resumedTrials = 0;
        /** Finished-trial results replayed from a checkpoint. */
        std::size_t completedTrialHits = 0;
        /** Records recovered across all opens. */
        std::size_t recordsRecovered = 0;
        /** Records appended across all checkpoints. */
        std::size_t recordsWritten = 0;
        /** Undecodable or dropped-tail records skipped (and warned). */
        std::size_t corruptRecords = 0;
        /** Foreign/corrupt files rotated aside. */
        std::size_t rotatedFiles = 0;
        /** Checkpoints deleted after their pulse published durably. */
        std::size_t discarded = 0;
        /** Appends that failed and degraded a file to read-only. */
        std::size_t failedWrites = 0;
        std::vector<std::string> warnings;
    };

    /**
     * @param directory Created on first open if missing.
     * @param config_fingerprint Binds files to the GRAPE
     *        configuration (grapeFingerprint of the serving options);
     *        a checkpoint taken under different knobs is stale by
     *        definition and must not resume.
     */
    CheckpointStore(std::string directory,
                    std::string config_fingerprint);

    std::unique_ptr<GrapeCheckpoint>
    openCheckpoint(const std::string &canonical_key) override;

    Stats stats() const;

    const std::string &directory() const { return directory_; }

    /** File path the given canonical key checkpoints into. */
    std::string checkpointPath(const std::string &canonical_key) const;

  private:
    friend class CheckpointFile;

    /** Set a foreign/corrupt file aside and release its fd. */
    void rotateAside(const std::string &path, const char *suffix,
                     int fd, const std::string &why);

    void noteResume();
    void noteCompletedHit();
    void noteRecordWritten();
    void noteDiscard();
    void noteFailedWrite(const std::string &warning);
    void noteWarning(const std::string &warning);

    const std::string directory_;
    const std::string config_fingerprint_;

    mutable Mutex mutex_;
    Stats stats_ PAQOC_GUARDED_BY(mutex_);
};

} // namespace paqoc

#endif // PAQOC_STORE_CHECKPOINT_STORE_H_
