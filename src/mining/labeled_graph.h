#ifndef PAQOC_MINING_LABELED_GRAPH_H_
#define PAQOC_MINING_LABELED_GRAPH_H_

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/dag.h"

namespace paqoc {

/**
 * The labeled directed graph of Section III-A: one node per gate
 * (label = operation name plus symbolic rotation angle), one edge per
 * direct dependence between two gates, labeled with the role each
 * shared qubit plays on both sides ("2-1" means the source gate's 2nd
 * qubit is the target gate's 1st). The role labels are what let the
 * miner distinguish the look-alike blocks of the paper's Fig. 5.
 */
struct LabeledGraph
{
    struct Edge
    {
        int from = 0;
        int to = 0;
        std::string label;
    };

    std::vector<std::string> nodeLabels;
    std::vector<Edge> edges;
    /** Outgoing/incoming edge indices per node. */
    std::vector<std::vector<int>> out;
    std::vector<std::vector<int>> in;

    std::size_t size() const { return nodeLabels.size(); }
};

/** Build the labeled dependence graph of a circuit. */
LabeledGraph buildLabeledGraph(const Circuit &circuit, const Dag &dag);

/**
 * Role label of a dependence edge between two gates: comma-joined
 * "i-j" pairs (1-based positions of each shared qubit in each gate's
 * qubit list), in ascending i order.
 */
std::string edgeRoleLabel(const Gate &from, const Gate &to);

} // namespace paqoc

#endif // PAQOC_MINING_LABELED_GRAPH_H_
