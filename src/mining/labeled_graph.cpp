#include "mining/labeled_graph.h"

#include <sstream>

#include "common/error.h"

namespace paqoc {

std::string
edgeRoleLabel(const Gate &from, const Gate &to)
{
    std::ostringstream oss;
    bool first = true;
    for (std::size_t i = 0; i < from.qubits().size(); ++i) {
        for (std::size_t j = 0; j < to.qubits().size(); ++j) {
            if (from.qubits()[i] != to.qubits()[j])
                continue;
            if (!first)
                oss << ',';
            oss << (i + 1) << '-' << (j + 1);
            first = false;
        }
    }
    PAQOC_ASSERT(!first, "edge between gates with no shared qubit");
    return oss.str();
}

LabeledGraph
buildLabeledGraph(const Circuit &circuit, const Dag &dag)
{
    LabeledGraph g;
    g.nodeLabels.reserve(circuit.size());
    for (const Gate &gate : circuit.gates())
        g.nodeLabels.push_back(gate.miningLabel());
    g.out.resize(circuit.size());
    g.in.resize(circuit.size());

    for (std::size_t u = 0; u < circuit.size(); ++u) {
        for (int v : dag.succs[u]) {
            LabeledGraph::Edge e;
            e.from = static_cast<int>(u);
            e.to = v;
            e.label = edgeRoleLabel(circuit.gate(u),
                                    circuit.gate(
                                        static_cast<std::size_t>(v)));
            g.out[u].push_back(static_cast<int>(g.edges.size()));
            g.in[static_cast<std::size_t>(v)].push_back(
                static_cast<int>(g.edges.size()));
            g.edges.push_back(std::move(e));
        }
    }
    return g;
}

} // namespace paqoc
