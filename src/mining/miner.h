#ifndef PAQOC_MINING_MINER_H_
#define PAQOC_MINING_MINER_H_

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/schedule.h"
#include "mining/labeled_graph.h"

namespace paqoc {

/** Tunables of the frequent-subcircuit miner. */
struct MinerOptions
{
    /** Minimum disjoint occurrences for a pattern to be frequent. */
    int minSupport = 2;
    /** Maximum number of gates in a pattern. */
    int maxPatternGates = 6;
    /** Maximum qubit support of a pattern (the paper's maxN). */
    int maxQubits = 3;
};

/** One frequent subcircuit found by the miner. */
struct MinedPattern
{
    /** Canonical structure code (stable identity of the pattern). */
    std::string code;
    /** Human-readable rendering, e.g. "cx >(2-1)> rz(a) >(1-1)> cx". */
    std::string description;
    int numGates = 0;
    /** Number of pairwise-disjoint, convex occurrences. */
    int support = 0;
    /** support * numGates: how many original gates it can absorb. */
    int coverage = 0;
    /** The disjoint occurrences (each a sorted list of gate indices). */
    std::vector<std::vector<int>> embeddings;
};

/**
 * Mine frequent subcircuits of a circuit via pattern growth on the
 * labeled dependence graph (Section III-A). Returned patterns are
 * sorted by descending coverage; every embedding is convex (it can be
 * replaced by a single gate without creating a dependence cycle) and
 * fits within maxQubits.
 */
std::vector<MinedPattern> mineFrequentSubcircuits(
    const Circuit &circuit, const MinerOptions &options = {});

/** Result of rewriting a circuit with APA-basis gates. */
struct ApaRewriteResult
{
    Circuit circuit{1};
    /** Number of distinct APA-basis gates actually used (<= M). */
    int apaGatesUsed = 0;
    /** Original gates absorbed into APA gates. */
    int gatesCovered = 0;
    /** APA gate uses in the rewritten circuit. */
    int apaUseCount = 0;
    /** The patterns selected as APA-basis gates. */
    std::vector<MinedPattern> selected;
};

/**
 * Replace occurrences of the top patterns with APA-basis gates.
 *
 * @param max_apa Number of APA-basis gate kinds allowed (the paper's
 *        M knob); pass a negative value for M = inf. M = 0 returns the
 *        circuit unchanged.
 * @param tuned When true, ignore max_apa and pick the smallest M such
 *        that APA gate uses outnumber remaining original gates
 *        (paqoc(M=tuned) in Section VI).
 * @param latency Optional gate-latency oracle. When given, an
 *        occurrence is only replaced if the rewritten circuit's
 *        critical path does not grow (the Section V-C guarantee that
 *        APA substitution never increases the critical path).
 */
ApaRewriteResult applyApaBasis(const Circuit &circuit,
                               const std::vector<MinedPattern> &patterns,
                               int max_apa, bool tuned = false,
                               const LatencyFn *latency = nullptr);

} // namespace paqoc

#endif // PAQOC_MINING_MINER_H_
