#include "mining/miner.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>

#include "circuit/contract.h"
#include "common/error.h"

namespace paqoc {

namespace {

/** Sorted-set membership test. */
bool
contains(const std::vector<int> &sorted, int v)
{
    return std::binary_search(sorted.begin(), sorted.end(), v);
}

/** Qubit support size of a gate set. */
int
supportSize(const Circuit &circuit, const std::vector<int> &nodes)
{
    std::set<int> qubits;
    for (int n : nodes) {
        const Gate &g = circuit.gate(static_cast<std::size_t>(n));
        qubits.insert(g.qubits().begin(), g.qubits().end());
    }
    return static_cast<int>(qubits.size());
}

/**
 * Convexity: replacing the set by one node must not create a cycle,
 * i.e. no dependence path leaves the set and re-enters it.
 */
bool
isConvex(const Dag &dag, const std::vector<int> &nodes)
{
    const int hi = nodes.back();
    std::vector<int> stack;
    std::set<int> seen;
    for (int n : nodes) {
        for (int s : dag.succs[static_cast<std::size_t>(n)]) {
            if (!contains(nodes, s) && s < hi) {
                if (seen.insert(s).second)
                    stack.push_back(s);
            }
        }
    }
    while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (int s : dag.succs[static_cast<std::size_t>(u)]) {
            if (contains(nodes, s))
                return false;
            if (s < hi && seen.insert(s).second)
                stack.push_back(s);
        }
    }
    return true;
}

/**
 * Canonical serialization of the induced labeled subgraph on a node
 * set: minimize over node orderings, permuting only within blocks of
 * equal (label, in-degree, out-degree) invariants to keep the search
 * small.
 */
std::string
canonicalCode(const LabeledGraph &graph, const std::vector<int> &nodes)
{
    const int k = static_cast<int>(nodes.size());
    struct LocalEdge { int from, to; const std::string *label; };
    std::vector<LocalEdge> edges;
    std::vector<int> indeg(static_cast<std::size_t>(k), 0);
    std::vector<int> outdeg(static_cast<std::size_t>(k), 0);
    auto local_index = [&](int node) {
        return static_cast<int>(
            std::lower_bound(nodes.begin(), nodes.end(), node)
            - nodes.begin());
    };
    for (int i = 0; i < k; ++i) {
        const auto ni = static_cast<std::size_t>(nodes[
            static_cast<std::size_t>(i)]);
        for (int ei : graph.out[ni]) {
            const auto &e = graph.edges[static_cast<std::size_t>(ei)];
            if (!contains(nodes, e.to))
                continue;
            const int j = local_index(e.to);
            edges.push_back({i, j, &e.label});
            ++outdeg[static_cast<std::size_t>(i)];
            ++indeg[static_cast<std::size_t>(j)];
        }
    }

    // Invariant-sorted base ordering.
    std::vector<int> order(static_cast<std::size_t>(k));
    std::iota(order.begin(), order.end(), 0);
    auto invariant = [&](int i) {
        return std::tuple<const std::string &, int, int>(
            graph.nodeLabels[static_cast<std::size_t>(
                nodes[static_cast<std::size_t>(i)])],
            indeg[static_cast<std::size_t>(i)],
            outdeg[static_cast<std::size_t>(i)]);
    };
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return invariant(a) < invariant(b); });

    // Identify blocks of equal invariants.
    std::vector<std::pair<int, int>> blocks;
    for (int i = 0; i < k;) {
        int j = i + 1;
        while (j < k && invariant(order[static_cast<std::size_t>(i)])
                   == invariant(order[static_cast<std::size_t>(j)]))
            ++j;
        blocks.emplace_back(i, j);
        i = j;
    }

    auto serialize = [&](const std::vector<int> &perm) {
        // pos[i] = position of local node i under this ordering.
        std::vector<int> pos(static_cast<std::size_t>(k));
        for (int p = 0; p < k; ++p)
            pos[static_cast<std::size_t>(
                perm[static_cast<std::size_t>(p)])] = p;
        std::ostringstream oss;
        for (int p = 0; p < k; ++p)
            oss << graph.nodeLabels[static_cast<std::size_t>(
                       nodes[static_cast<std::size_t>(
                           perm[static_cast<std::size_t>(p)])])]
                << '|';
        std::vector<std::string> es;
        es.reserve(edges.size());
        for (const auto &e : edges) {
            std::ostringstream eo;
            eo << pos[static_cast<std::size_t>(e.from)] << '>'
               << pos[static_cast<std::size_t>(e.to)] << '('
               << *e.label << ')';
            es.push_back(eo.str());
        }
        std::sort(es.begin(), es.end());
        for (const auto &s : es)
            oss << s << ';';
        return oss.str();
    };

    // Enumerate permutations within blocks (capped for pathological
    // label multiplicity; the cap only risks splitting one pattern
    // into a few equivalent codes, never merging distinct ones).
    std::string best = serialize(order);
    long budget = 4000;
    std::vector<int> perm = order;
    // Recursive enumeration over block permutations.
    std::function<void(std::size_t)> recurse = [&](std::size_t b) {
        if (budget <= 0)
            return;
        if (b == blocks.size()) {
            --budget;
            std::string s = serialize(perm);
            if (s < best)
                best = std::move(s);
            return;
        }
        const auto [lo, hi] = blocks[b];
        std::sort(perm.begin() + lo, perm.begin() + hi);
        do {
            recurse(b + 1);
        } while (budget > 0
                 && std::next_permutation(perm.begin() + lo,
                                          perm.begin() + hi));
    };
    recurse(0);
    return best;
}

/** Human-readable pattern text from one embedding. */
std::string
describe(const LabeledGraph &graph, const std::vector<int> &nodes)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i)
            oss << ' ';
        oss << graph.nodeLabels[static_cast<std::size_t>(nodes[i])];
    }
    bool first = true;
    for (int n : nodes) {
        for (int ei : graph.out[static_cast<std::size_t>(n)]) {
            const auto &e = graph.edges[static_cast<std::size_t>(ei)];
            if (!contains(nodes, e.to))
                continue;
            oss << (first ? "  [" : ", ");
            first = false;
            const auto it_f =
                std::lower_bound(nodes.begin(), nodes.end(), e.from);
            const auto it_t =
                std::lower_bound(nodes.begin(), nodes.end(), e.to);
            oss << (it_f - nodes.begin()) << "->"
                << (it_t - nodes.begin()) << ":" << e.label;
        }
    }
    if (!first)
        oss << "]";
    return oss.str();
}

/** Greedy maximal set of pairwise-disjoint embeddings. */
std::vector<std::vector<int>>
disjointEmbeddings(std::vector<std::vector<int>> embeddings)
{
    std::sort(embeddings.begin(), embeddings.end(),
              [](const std::vector<int> &a, const std::vector<int> &b) {
                  return a.back() < b.back();
              });
    std::vector<std::vector<int>> chosen;
    std::set<int> used;
    for (auto &e : embeddings) {
        bool clash = false;
        for (int n : e) {
            if (used.count(n)) {
                clash = true;
                break;
            }
        }
        if (clash)
            continue;
        used.insert(e.begin(), e.end());
        chosen.push_back(std::move(e));
    }
    return chosen;
}

} // namespace

std::vector<MinedPattern>
mineFrequentSubcircuits(const Circuit &circuit, const MinerOptions &options)
{
    std::vector<MinedPattern> result;
    if (circuit.size() < 2)
        return result;

    const Dag dag = buildDag(circuit);
    const LabeledGraph graph = buildLabeledGraph(circuit, dag);

    // Round 1: every dependence edge seeds a two-gate set.
    std::set<std::vector<int>> frontier;
    for (const auto &e : graph.edges) {
        std::vector<int> s{std::min(e.from, e.to),
                           std::max(e.from, e.to)};
        if (supportSize(circuit, s) <= options.maxQubits)
            frontier.insert(std::move(s));
    }

    for (int size = 2; size <= options.maxPatternGates && !frontier.empty();
         ++size) {
        // Group this round's sets by canonical pattern code.
        std::map<std::string, std::vector<std::vector<int>>> by_code;
        for (const auto &nodes : frontier)
            by_code[canonicalCode(graph, nodes)].push_back(nodes);

        std::set<std::vector<int>> next;
        for (auto &[code, embeddings] : by_code) {
            // Only convex embeddings are usable as gates.
            std::vector<std::vector<int>> convex;
            for (auto &e : embeddings)
                if (isConvex(dag, e))
                    convex.push_back(e);
            const std::vector<std::vector<int>> disjoint =
                disjointEmbeddings(convex);
            if (static_cast<int>(disjoint.size()) < options.minSupport)
                continue;

            MinedPattern p;
            p.code = code;
            p.description = describe(graph, disjoint.front());
            p.numGates = size;
            p.support = static_cast<int>(disjoint.size());
            p.coverage = p.support * size;
            p.embeddings = disjoint;
            result.push_back(std::move(p));

            // Grow every disjoint embedding by one adjacent gate.
            if (size == options.maxPatternGates)
                continue;
            for (const auto &nodes : disjoint) {
                std::set<int> neighbors;
                for (int n : nodes) {
                    const auto ns = static_cast<std::size_t>(n);
                    for (int ei : graph.out[ns])
                        neighbors.insert(
                            graph.edges[static_cast<std::size_t>(ei)].to);
                    for (int ei : graph.in[ns])
                        neighbors.insert(
                            graph.edges[static_cast<std::size_t>(ei)]
                                .from);
                }
                for (int w : neighbors) {
                    if (contains(nodes, w))
                        continue;
                    std::vector<int> grown = nodes;
                    grown.insert(std::upper_bound(grown.begin(),
                                                  grown.end(), w), w);
                    if (supportSize(circuit, grown) <= options.maxQubits)
                        next.insert(std::move(grown));
                }
            }
        }
        frontier = std::move(next);
    }

    std::sort(result.begin(), result.end(),
              [](const MinedPattern &a, const MinedPattern &b) {
                  if (a.coverage != b.coverage)
                      return a.coverage > b.coverage;
                  return a.code < b.code;
              });
    return result;
}

namespace {

/**
 * Makespan of the contracted circuit evaluated directly on the group
 * DAG -- no circuit emission. Multi-gate group latencies are merged-
 * unitary estimates clamped by the members' summed latency, memoized
 * by member set so repeated trials are cheap.
 */
class ContractedScheduler
{
  public:
    ContractedScheduler(const Circuit &circuit, const Dag &dag,
                        const LatencyFn &latency)
        : circuit_(circuit), dag_(dag), latency_(latency)
    {}

    double
    makespan(const GroupContraction &gc)
    {
        const std::vector<std::vector<int>> members = gc.membersById();
        const std::vector<int> order = gc.topologicalOrder();
        std::vector<double> finish(members.size(), 0.0);
        double best = 0.0;
        for (int gid : order) {
            const auto &m = members[static_cast<std::size_t>(gid)];
            double start = 0.0;
            for (int gate : m) {
                for (int p : dag_.preds[static_cast<std::size_t>(
                         gate)]) {
                    const int pg = gc.groupOf(p);
                    if (pg != gid)
                        start = std::max(
                            start,
                            finish[static_cast<std::size_t>(pg)]);
                }
            }
            finish[static_cast<std::size_t>(gid)] =
                start + groupLatency(m);
            best = std::max(best,
                            finish[static_cast<std::size_t>(gid)]);
        }
        return best;
    }

  private:
    double
    groupLatency(const std::vector<int> &members)
    {
        if (members.size() == 1) {
            return latency_(circuit_.gate(
                static_cast<std::size_t>(members[0])));
        }
        const auto it = memo_.find(members);
        if (it != memo_.end())
            return it->second;
        std::vector<Gate> gates;
        gates.reserve(members.size());
        double cap = 0.0;
        for (int m : members) {
            gates.push_back(circuit_.gate(static_cast<std::size_t>(m)));
            cap += latency_(gates.back());
        }
        const SubcircuitUnitary sub = subcircuitUnitary(gates);
        const Gate merged = Gate::custom(
            "trial", sub.qubits, sub.matrix,
            static_cast<int>(members.size()), cap);
        const double lat = std::min(latency_(merged), cap);
        memo_.emplace(members, lat);
        return lat;
    }

    const Circuit &circuit_;
    const Dag &dag_;
    const LatencyFn &latency_;
    std::map<std::vector<int>, double> memo_;
};

} // namespace

ApaRewriteResult
applyApaBasis(const Circuit &circuit,
              const std::vector<MinedPattern> &patterns, int max_apa,
              bool tuned, const LatencyFn *latency)
{
    ApaRewriteResult result;
    if (max_apa == 0 && !tuned) {
        result.circuit = circuit;
        return result;
    }

    const Dag dag = buildDag(circuit);
    GroupContraction contractor(circuit, dag);

    std::set<int> used_nodes;
    std::map<std::vector<int>, int> accepted; // nodes -> pattern index
    int covered = 0;
    int uses = 0;
    int kinds = 0;

    const auto emitter = [&](const std::vector<int> &members) {
        std::vector<Gate> gates;
        gates.reserve(members.size());
        int absorbed = 0;
        double cap = 0.0;
        for (int m : members) {
            gates.push_back(circuit.gate(static_cast<std::size_t>(m)));
            absorbed += gates.back().absorbedCount();
            if (latency != nullptr)
                cap += (*latency)(gates.back());
        }
        const SubcircuitUnitary sub = subcircuitUnitary(gates);
        const auto it = accepted.find(members);
        PAQOC_ASSERT(it != accepted.end(),
                     "merged group missing from accepted map");
        return Gate::custom("apa" + std::to_string(it->second),
                            sub.qubits, sub.matrix, absorbed,
                            latency != nullptr
                                ? cap
                                : std::numeric_limits<
                                      double>::infinity());
    };

    // Section V-C acceptance: an APA substitution must never lengthen
    // the critical path. Same-width substitutions are covered by
    // Observation 1 (merging gates sharing the same qubits is always
    // beneficial); substitutions that *widen* the gate fall under
    // Observation 2's width penalty and are only taken when the
    // modeled merged latency does not exceed the member latencies run
    // back to back.
    const auto locally_beneficial = [&](const std::vector<int> &nodes) {
        if (latency == nullptr)
            return true;
        std::vector<Gate> gates;
        gates.reserve(nodes.size());
        double sum = 0.0;
        int absorbed = 0;
        int max_member_width = 0;
        std::set<int> support;
        for (int n : nodes) {
            const Gate &g = circuit.gate(static_cast<std::size_t>(n));
            gates.push_back(g);
            sum += (*latency)(g);
            absorbed += g.absorbedCount();
            max_member_width = std::max(max_member_width, g.arity());
            support.insert(g.qubits().begin(), g.qubits().end());
        }
        if (static_cast<int>(support.size()) <= max_member_width)
            return true; // same width: Observation 1 applies
        const SubcircuitUnitary sub = subcircuitUnitary(gates);
        const Gate merged = Gate::custom("apa?", sub.qubits, sub.matrix,
                                         absorbed);
        return (*latency)(merged) <= sum + 1e-9;
    };

    std::unique_ptr<ContractedScheduler> scheduler;
    double cur_makespan = 0.0;
    if (latency != nullptr) {
        scheduler = std::make_unique<ContractedScheduler>(circuit, dag,
                                                          *latency);
        cur_makespan = scheduler->makespan(contractor);
    }

    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
        if (!tuned && max_apa >= 0 && kinds >= max_apa)
            break;
        if (tuned
            && uses > static_cast<int>(circuit.size()) - covered)
            break; // APA uses already form the majority
        const MinedPattern &p = patterns[pi];
        bool used_this = false;
        for (const auto &nodes : p.embeddings) {
            bool clash = false;
            for (int n : nodes) {
                if (used_nodes.count(n)) {
                    clash = true;
                    break;
                }
            }
            if (clash || !locally_beneficial(nodes))
                continue;
            const GroupContraction::State state =
                contractor.snapshot();
            if (!contractor.tryMerge(nodes))
                continue;
            if (scheduler != nullptr) {
                // Global Section V-C check: the substitution must not
                // lengthen the critical path (false dependences can
                // delay sibling gates even when the merged pulse is
                // locally faster -- the paper's Fig. 4 scenario).
                const double makespan =
                    scheduler->makespan(contractor);
                if (makespan > cur_makespan + 1e-9) {
                    contractor.restore(state);
                    continue;
                }
                cur_makespan = makespan;
            }
            accepted[nodes] = static_cast<int>(pi);
            used_nodes.insert(nodes.begin(), nodes.end());
            covered += static_cast<int>(nodes.size());
            ++uses;
            used_this = true;
        }
        if (used_this) {
            ++kinds;
            result.selected.push_back(p);
        }
    }

    result.apaGatesUsed = kinds;
    result.gatesCovered = covered;
    result.apaUseCount = uses;
    result.circuit = contractor.emit(emitter);
    return result;
}

} // namespace paqoc
