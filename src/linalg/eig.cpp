#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace paqoc {

namespace {

/** Sum of squared magnitudes of strictly-off-diagonal entries. */
double
offDiagonalNorm(const Matrix &a)
{
    double s = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            if (r != c)
                s += std::norm(a(r, c));
    return std::sqrt(s);
}

} // namespace

EigenResult
hermitianEigen(const Matrix &a_in, double tol, int max_sweeps)
{
    PAQOC_ASSERT(a_in.isSquare(), "eigendecomposition of non-square matrix");
    PAQOC_FATAL_IF(!a_in.isHermitian(1e-8),
                   "hermitianEigen requires a Hermitian matrix");
    const std::size_t n = a_in.rows();
    Matrix a = a_in;
    Matrix v = Matrix::identity(n);

    const double scale = std::max(a.maxAbs(), 1.0);
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagonalNorm(a) < tol * scale * static_cast<double>(n))
            break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const Complex apq = a(p, q);
                const double mag = std::abs(apq);
                if (mag < 1e-300)
                    continue;
                // Complex Jacobi rotation annihilating a(p, q):
                // phase e^{i phi} = apq / |apq|, angle from the real
                // symmetric subproblem on (app, |apq|, aqq).
                const Complex phase = apq / mag;
                const double app = a(p, p).real();
                const double aqq = a(q, q).real();
                const double tau = (aqq - app) / (2.0 * mag);
                const double t = (tau >= 0.0)
                    ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                    : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = t * c;

                // Column update A <- A G with
                // G[p][p]=c, G[p][q]=s*phase, G[q][p]=-s*conj(phase),
                // G[q][q]=c; then row update A <- G^dagger A.
                const Complex gpq = Complex(s, 0.0) * phase;
                const Complex gqp = -Complex(s, 0.0) * std::conj(phase);
                for (std::size_t r = 0; r < n; ++r) {
                    const Complex arp = a(r, p);
                    const Complex arq = a(r, q);
                    a(r, p) = arp * c + arq * gqp;
                    a(r, q) = arp * gpq + arq * c;
                    const Complex vrp = v(r, p);
                    const Complex vrq = v(r, q);
                    v(r, p) = vrp * c + vrq * gqp;
                    v(r, q) = vrp * gpq + vrq * c;
                }
                for (std::size_t col = 0; col < n; ++col) {
                    const Complex apc = a(p, col);
                    const Complex aqc = a(q, col);
                    a(p, col) = c * apc + std::conj(gqp) * aqc;
                    a(q, col) = std::conj(gpq) * apc + c * aqc;
                }
            }
        }
    }

    // Extract and sort ascending, permuting eigenvector columns to match.
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = a(i, i).real();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y)
              { return values[x] < values[y]; });

    EigenResult result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        result.values[i] = values[order[i]];
        for (std::size_t r = 0; r < n; ++r)
            result.vectors(r, i) = v(r, order[i]);
    }
    return result;
}

} // namespace paqoc
