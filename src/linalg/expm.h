#ifndef PAQOC_LINALG_EXPM_H_
#define PAQOC_LINALG_EXPM_H_

#include <cstdint>

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Scratch buffers for one matrix-exponential evaluation, reusable
 * across calls of the same (or different) dimension. The GRAPE hot
 * path exponentiates one slice Hamiltonian per time step per
 * iteration; without a workspace every call paid ~10 fresh n x n
 * allocations for the Pade ladder. All buffers are resized lazily, so
 * a default-constructed workspace is valid for any dimension.
 */
struct ExpmWorkspace
{
    Matrix as;   ///< scaled argument
    Matrix a2;   ///< as^2
    Matrix pow;  ///< running even power a2^k
    Matrix tmp;  ///< product scratch (matmulInto cannot alias)
    Matrix even; ///< even-coefficient Pade accumulator
    Matrix odd;  ///< odd-coefficient Pade accumulator
    Matrix u;    ///< as * odd
    Matrix q;    ///< denominator even - u
    Matrix r;    ///< Pade quotient / squaring ladder
};

/**
 * Matrix exponential exp(A) via [6/6] Pade approximation with scaling
 * and squaring. A must be square. Accurate to near machine precision
 * for the well-conditioned (anti-Hermitian) arguments QOC produces.
 */
Matrix expm(const Matrix &a);

/** expm into a pre-existing output using caller-owned scratch. */
void expmInto(const Matrix &a, Matrix &out, ExpmWorkspace &ws);

/**
 * Propagator exp(-i * H * dt) for a Hermitian H. This is the hot path
 * of GRAPE: each time slice of each fidelity evaluation calls it once.
 */
Matrix expmPropagator(const Matrix &h, double dt);

/**
 * Workspace variant of expmPropagator: scales -i * dt * H directly
 * into the workspace (one pass, no temporary) and writes the
 * propagator to `out`. Bit-identical to expmPropagator.
 */
void expmPropagatorInto(const Matrix &h, double dt, Matrix &out,
                        ExpmWorkspace &ws);

/**
 * Number of times the scaling step clamped the squaring count at its
 * cap since process start. A clamp means the argument norm was so
 * large (> 0.5 * 2^40) that the Pade result is no longer trustworthy;
 * the first clamp emits a one-time diagnostic on stderr, and this
 * counter makes the event observable to callers and tests.
 */
std::uint64_t expmSquaringClampCount();

} // namespace paqoc

#endif // PAQOC_LINALG_EXPM_H_
