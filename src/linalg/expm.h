#ifndef PAQOC_LINALG_EXPM_H_
#define PAQOC_LINALG_EXPM_H_

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Matrix exponential exp(A) via [6/6] Pade approximation with scaling
 * and squaring. A must be square. Accurate to near machine precision
 * for the well-conditioned (anti-Hermitian) arguments QOC produces.
 */
Matrix expm(const Matrix &a);

/**
 * Propagator exp(-i * H * dt) for a Hermitian H. This is the hot path
 * of GRAPE: each time slice of each fidelity evaluation calls it once.
 */
Matrix expmPropagator(const Matrix &h, double dt);

} // namespace paqoc

#endif // PAQOC_LINALG_EXPM_H_
