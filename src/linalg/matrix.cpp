#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"
#include "common/thread_pool.h"
#include "linalg/kernels.h"

namespace paqoc {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0))
{}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = rows.size();
    cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        PAQOC_FATAL_IF(row.size() != cols_, "ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = Complex(1.0, 0.0);
    return m;
}

Matrix
Matrix::zero(std::size_t n)
{
    return Matrix(n, n);
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    PAQOC_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    PAQOC_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(Complex scalar)
{
    for (auto &v : data_)
        v *= scalar;
    return *this;
}

Matrix
operator*(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows(), b.cols());
    matmulInto(a, b, out);
    return out;
}

namespace {

/**
 * Minimum dimension (all of n, k, m) for the parallel row-tiled path.
 * QOC propagators live below this (dim <= 2^3 per customized gate),
 * so the hot GRAPE loops take one direct kernel call; only genuinely
 * large products (simulator aggregates, benches) fan out across the
 * pool.
 */
constexpr std::size_t kBlockedThreshold = 32;

/** Rows of `out` computed per task: a cache-friendly i-tile. */
constexpr std::size_t kRowTile = 16;

} // namespace

void
matmulInto(const Matrix &a, const Matrix &b, Matrix &out)
{
    PAQOC_ASSERT(a.cols() == b.rows(), "shape mismatch in matmul");
    PAQOC_ASSERT(out.rows() == a.rows() && out.cols() == b.cols(),
                 "output shape mismatch in matmul");
    // An aliased output would be read while being overwritten; the
    // old kernel silently corrupted here, so the contract is now
    // enforced. Callers that need in-place products multiply into a
    // scratch matrix and swap.
    PAQOC_ASSERT(out.data() != a.data() && out.data() != b.data(),
                 "matmulInto output aliases an input");
    const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
    // Every path below lands in the same dispatched i-k-j kernel
    // (ascending-k accumulation per output element, exact-zero a(i,k)
    // skipped), so the bits do not depend on tiling, thread count or
    // the PAQOC_KERNEL backend.
    if (n >= kBlockedThreshold && k >= kBlockedThreshold
        && m >= kBlockedThreshold) {
        const Complex *pa = a.data();
        const Complex *pb = b.data();
        Complex *o = out.data();
        const std::size_t tiles = (n + kRowTile - 1) / kRowTile;
        ThreadPool::global().parallelFor(tiles, [&](std::size_t tile) {
            const std::size_t i0 = tile * kRowTile;
            const std::size_t i1 = std::min(n, i0 + kRowTile);
            kernels::gemmRows(pa, pb, o, k, m, i0, i1);
        });
        return;
    }
    kernels::gemmRows(a.data(), b.data(), out.data(), k, m, 0, n);
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, Complex(0.0, 0.0));
}

Matrix
Matrix::adjoint() const
{
    Matrix out(cols_, rows_);
    kernels::adjointInto(data(), out.data(), rows_, cols_);
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    kernels::transposeInto(data(), out.data(), rows_, cols_);
    return out;
}

Matrix
Matrix::conjugate() const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = std::conj(data_[i]);
    return out;
}

Complex
Matrix::trace() const
{
    PAQOC_ASSERT(isSquare(), "trace of non-square matrix");
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &v : data_)
        s += std::norm(v);
    return std::sqrt(s);
}

double
Matrix::infinityNorm() const
{
    double best = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        double row_sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            row_sum += std::abs((*this)(r, c));
        best = std::max(best, row_sum);
    }
    return best;
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (const auto &v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

bool
Matrix::approxEqual(const Matrix &other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

bool
Matrix::isUnitary(double tol) const
{
    if (!isSquare())
        return false;
    return ((*this) * adjoint()).approxEqual(identity(rows_), tol);
}

bool
Matrix::isHermitian(double tol) const
{
    if (!isSquare())
        return false;
    return approxEqual(adjoint(), tol);
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        oss << "[ ";
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex v = (*this)(r, c);
            oss << v.real() << (v.imag() < 0 ? "-" : "+")
                << std::abs(v.imag()) << "i ";
        }
        oss << "]\n";
    }
    return oss.str();
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t ar = 0; ar < a.rows(); ++ar) {
        for (std::size_t ac = 0; ac < a.cols(); ++ac) {
            const Complex av = a(ar, ac);
            if (av == Complex(0.0, 0.0))
                continue;
            for (std::size_t br = 0; br < b.rows(); ++br)
                for (std::size_t bc = 0; bc < b.cols(); ++bc)
                    out(ar * b.rows() + br, ac * b.cols() + bc)
                        = av * b(br, bc);
        }
    }
    return out;
}

} // namespace paqoc
