#include "linalg/solve.h"

#include <cmath>

#include "common/error.h"

namespace paqoc {

Matrix
solveLinear(Matrix a, Matrix b)
{
    Matrix x;
    solveLinearInPlace(a, b, x);
    return x;
}

void
solveLinearInPlace(Matrix &a, Matrix &b, Matrix &x)
{
    PAQOC_ASSERT(a.isSquare(), "solveLinear needs a square matrix");
    PAQOC_ASSERT(a.rows() == b.rows(), "shape mismatch in solveLinear");
    const std::size_t n = a.rows();
    const std::size_t m = b.cols();

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: pick the largest remaining entry in column.
        std::size_t pivot = col;
        double best = std::abs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::abs(a(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        PAQOC_FATAL_IF(best < 1e-14, "singular matrix in solveLinear");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            for (std::size_t c = 0; c < m; ++c)
                std::swap(b(col, c), b(pivot, c));
        }
        const Complex inv_p = Complex(1.0, 0.0) / a(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const Complex f = a(r, col) * inv_p;
            if (f == Complex(0.0, 0.0))
                continue;
            for (std::size_t c = col; c < n; ++c)
                a(r, c) -= f * a(col, c);
            for (std::size_t c = 0; c < m; ++c)
                b(r, c) -= f * b(col, c);
        }
    }

    // Back substitution.
    PAQOC_ASSERT(x.data() != a.data() && x.data() != b.data(),
                 "solveLinearInPlace output aliases an input");
    x.resize(n, m);
    for (std::size_t ri = n; ri-- > 0;) {
        for (std::size_t c = 0; c < m; ++c) {
            Complex s = b(ri, c);
            for (std::size_t k = ri + 1; k < n; ++k)
                s -= a(ri, k) * x(k, c);
            x(ri, c) = s / a(ri, ri);
        }
    }
}

Matrix
inverse(const Matrix &a)
{
    return solveLinear(a, Matrix::identity(a.rows()));
}

} // namespace paqoc
