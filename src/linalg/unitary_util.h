#ifndef PAQOC_LINALG_UNITARY_UTIL_H_
#define PAQOC_LINALG_UNITARY_UTIL_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Eigenphases of a unitary U: the angles theta_j in (-pi, pi] such that
 * the spectrum of U is { e^{i theta_j} }. Computed by simultaneously
 * diagonalizing the Hermitian and anti-Hermitian parts (U is normal).
 */
std::vector<double> unitaryEigenphases(const Matrix &u);

/**
 * Global-phase-optimized spectral phase norm of a unitary:
 *
 *     min_phi  max_j | wrap(theta_j - phi) |
 *
 * This is the quantum-speed-limit proxy used by the analytical latency
 * model: the smallest max |eigenphase| over an (physically irrelevant)
 * global phase. It is subadditive under products, which yields the
 * paper's Observation 1 (merged latency <= sum of latencies).
 */
double spectralPhaseNorm(const Matrix &u);

/**
 * Principal logarithm split into local and entangling Pauli content.
 *
 * Writes U = exp(-iA) with the eigenphases of U centered to minimize
 * their maximal magnitude (global phase removed), then projects the
 * Hermitian generator A onto the Pauli-string basis: strings of weight
 * <= 1 form the local part, weight >= 2 the entangling part. The
 * spectral norms of the two parts are quantum-speed-limit proxies for
 * the single-qubit-drive time and the (much slower) exchange-coupling
 * time a pulse needs, respectively.
 */
struct PauliSplitNorms
{
    /** Spectral norm of the weight-<=1 (local) generator part. */
    double localNorm = 0.0;
    /** Spectral norm of the weight->=2 (entangling) generator part. */
    double entanglingNorm = 0.0;
    /**
     * Largest per-channel norm of entangling content supported on one
     * *adjacent* qubit pair (qubits couple along a path 0-1-...-n-1,
     * matching DeviceModel): content different channels can drive
     * concurrently.
     */
    double adjacentPairNorm = 0.0;
    /**
     * Norm of the remaining entangling content: weight->=3 strings and
     * strings on non-adjacent pairs, which cost extra because they
     * must be routed through intermediate qubits.
     */
    double hardNorm = 0.0;
};

PauliSplitNorms pauliSplitNorms(const Matrix &u, int num_qubits);

/** Trace (process) fidelity |Tr(U^dagger V)|^2 / d^2 in [0, 1]. */
double traceFidelity(const Matrix &u, const Matrix &v);

/**
 * Global-phase-invariant distance min_phi ||U - e^{i phi} V||_F
 * = sqrt(2d - 2 |Tr(U^dagger V)|).
 */
double phaseInvariantDistance(const Matrix &u, const Matrix &v);

/** True if U ~= e^{i phi} V for some global phase phi. */
bool equalUpToGlobalPhase(const Matrix &u, const Matrix &v,
                          double tol = 1e-6);

/**
 * Deterministic 64-bit hash of a matrix (FNV-1a over the raw entry
 * bytes plus the shape). Used to derive per-gate RNG seeds: every
 * GRAPE run on the same target draws the same initial pulse no matter
 * which thread, batch position, or probe round issues it.
 */
std::uint64_t matrixHash(const Matrix &u);

} // namespace paqoc

#endif // PAQOC_LINALG_UNITARY_UTIL_H_
