#include "linalg/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace paqoc {
namespace kernels {

namespace {

/**
 * The installed backend, encoded as int for a lock-free read on the
 * hot path. Resolution order: explicit setBackend > PAQOC_KERNEL env
 * > auto-detection. The env variable is folded in exactly once, at
 * first use, by resolveInitialBackend().
 */
std::atomic<int> g_backend{-1};

Backend
bestAvailable()
{
    return avx2Available() ? Backend::Avx2 : Backend::Scalar;
}

Backend
resolveInitialBackend()
{
    const char *env = std::getenv("PAQOC_KERNEL");
    if (env != nullptr) {
        const std::string name(env);
        if (name == "scalar")
            return Backend::Scalar;
        if (name == "avx2")
            return avx2Available() ? Backend::Avx2 : Backend::Scalar;
        // Unknown values (including "auto") fall through to detection:
        // a typo must never silently change numerics, and with the
        // bit-identity contract it cannot change results either way.
    }
    return bestAvailable();
}

Backend
loadBackend()
{
    int current = g_backend.load(std::memory_order_relaxed);
    if (current < 0) {
        const Backend resolved = resolveInitialBackend();
        // Racing first readers resolve to the same value (the env and
        // CPU are process-constant), so a plain store is fine.
        g_backend.store(static_cast<int>(resolved),
                        std::memory_order_relaxed);
        return resolved;
    }
    return static_cast<Backend>(current);
}

} // namespace

bool
avx2Available()
{
#if defined(PAQOC_HAVE_AVX2_KERNELS)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

Backend
activeBackend()
{
    return loadBackend();
}

const char *
backendName(Backend backend)
{
    return backend == Backend::Avx2 ? "avx2" : "scalar";
}

Backend
setBackend(Backend backend)
{
    if (backend == Backend::Avx2 && !avx2Available())
        backend = Backend::Scalar;
    g_backend.store(static_cast<int>(backend),
                    std::memory_order_relaxed);
    return backend;
}

bool
setBackendByName(const std::string &name)
{
    if (name == "scalar") {
        setBackend(Backend::Scalar);
        return true;
    }
    if (name == "avx2") {
        setBackend(Backend::Avx2);
        return true;
    }
    if (name == "auto") {
        setBackend(bestAvailable());
        return true;
    }
    return false;
}

namespace detail {

void
gemmRowsScalar(const Complex *a, const Complex *b, Complex *out,
               std::size_t k, std::size_t m, std::size_t row0,
               std::size_t row1)
{
    for (std::size_t i = row0; i < row1; ++i) {
        const Complex *arow = a + i * k;
        Complex *orow = out + i * m;
        std::fill(orow, orow + m, Complex(0.0, 0.0));
        for (std::size_t kk = 0; kk < k; ++kk) {
            const Complex aik = arow[kk];
            if (aik == Complex(0.0, 0.0))
                continue;
            const Complex *brow = b + kk * m;
            for (std::size_t j = 0; j < m; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

void
axpyScalar(Complex alpha, const Complex *x, Complex *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += x[i] * alpha;
}

Complex
dotuScalar(const Complex *x, const Complex *y, std::size_t n)
{
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        t += x[i] * y[i];
    return t;
}

#if !defined(PAQOC_HAVE_AVX2_KERNELS)

// Stubs keep the dispatch table total on builds without the AVX2
// translation unit (non-x86 hosts, compilers without -mavx2); the
// runtime check in avx2Available() guarantees they are unreachable.
void
gemmRowsAvx2(const Complex *a, const Complex *b, Complex *out,
             std::size_t k, std::size_t m, std::size_t row0,
             std::size_t row1)
{
    gemmRowsScalar(a, b, out, k, m, row0, row1);
}

void
axpyAvx2(Complex alpha, const Complex *x, Complex *y, std::size_t n)
{
    axpyScalar(alpha, x, y, n);
}

Complex
dotuAvx2(const Complex *x, const Complex *y, std::size_t n)
{
    return dotuScalar(x, y, n);
}

#endif // !PAQOC_HAVE_AVX2_KERNELS

} // namespace detail

void
gemmRows(const Complex *a, const Complex *b, Complex *out,
         std::size_t k, std::size_t m, std::size_t row0,
         std::size_t row1)
{
    if (loadBackend() == Backend::Avx2)
        detail::gemmRowsAvx2(a, b, out, k, m, row0, row1);
    else
        detail::gemmRowsScalar(a, b, out, k, m, row0, row1);
}

void
axpy(Complex alpha, const Complex *x, Complex *y, std::size_t n)
{
    if (loadBackend() == Backend::Avx2)
        detail::axpyAvx2(alpha, x, y, n);
    else
        detail::axpyScalar(alpha, x, y, n);
}

Complex
dotu(const Complex *x, const Complex *y, std::size_t n)
{
    if (loadBackend() == Backend::Avx2)
        return detail::dotuAvx2(x, y, n);
    return detail::dotuScalar(x, y, n);
}

void
adjointInto(const Complex *a, Complex *out, std::size_t rows,
            std::size_t cols)
{
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out[c * rows + r] = std::conj(a[r * cols + c]);
}

void
transposeInto(const Complex *a, Complex *out, std::size_t rows,
              std::size_t cols)
{
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out[c * rows + r] = a[r * cols + c];
}

} // namespace kernels
} // namespace paqoc
