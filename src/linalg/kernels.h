#ifndef PAQOC_LINALG_KERNELS_H_
#define PAQOC_LINALG_KERNELS_H_

#include <complex>
#include <cstddef>
#include <string>

namespace paqoc {
namespace kernels {

using Complex = std::complex<double>;

/**
 * Runtime-dispatched dense complex kernels.
 *
 * Every backend implements the SAME arithmetic contract: for each
 * output element, terms are accumulated in exactly the scalar order
 * (ascending k for GEMM, ascending i for reductions) and every
 * product/sum is rounded individually -- vector backends widen across
 * independent output elements (columns), never across a reduction,
 * and never fuse multiply-add. The result is bit-identical output
 * across backends, which is what lets PAQOC_KERNEL switch freely
 * under the engine-wide determinism guarantee (results are a pure
 * function of the request, not of the host's ISA).
 *
 * Backend selection, in priority order:
 *   1. setBackend()/setBackendByName() (CLI override),
 *   2. the PAQOC_KERNEL environment variable (scalar | avx2 | auto),
 *   3. auto-detection (best backend the build and CPU support).
 * Requesting an unavailable backend degrades to scalar, never fails.
 */
enum class Backend
{
    Scalar, ///< portable reference path
    Avx2,   ///< AVX2 256-bit lanes (split re/im via vaddsubpd, no FMA)
};

/** Backend the dispatched entry points currently use. */
Backend activeBackend();

/** True when the build carries AVX2 kernels and the CPU executes them. */
bool avx2Available();

/** Stable lowercase name ("scalar", "avx2"). */
const char *backendName(Backend backend);

/**
 * Force a backend; unavailable requests degrade to Scalar. Returns
 * the backend actually installed.
 */
Backend setBackend(Backend backend);

/**
 * Parse and install "scalar", "avx2" or "auto" (case-sensitive).
 * Returns false (state unchanged) for anything else.
 */
bool setBackendByName(const std::string &name);

/**
 * GEMM rows [row0, row1) of out = a * b with a: n x k, b: k x m, all
 * row-major. i-k-j loop order with exact-zero a(i,k) terms skipped;
 * each out element accumulates in ascending-k order. `out` must not
 * alias `a` or `b`.
 */
void gemmRows(const Complex *a, const Complex *b, Complex *out,
              std::size_t k, std::size_t m, std::size_t row0,
              std::size_t row1);

/** y[i] += x[i] * alpha for i in [0, n). x and y must not alias. */
void axpy(Complex alpha, const Complex *x, Complex *y, std::size_t n);

/**
 * sum_i x[i] * y[i] (no conjugation), accumulated in ascending-i
 * order. With x = transpose(A) and y = B row-major this is Tr(A B).
 */
Complex dotu(const Complex *x, const Complex *y, std::size_t n);

/**
 * out = conj(transpose(a)) with a: rows x cols row-major; out must be
 * pre-sized cols x rows and must not alias a.
 */
void adjointInto(const Complex *a, Complex *out, std::size_t rows,
                 std::size_t cols);

/** out = transpose(a); same shape/aliasing contract as adjointInto. */
void transposeInto(const Complex *a, Complex *out, std::size_t rows,
                   std::size_t cols);

namespace detail {

/** Scalar reference implementations (the bit-identity oracle). */
void gemmRowsScalar(const Complex *a, const Complex *b, Complex *out,
                    std::size_t k, std::size_t m, std::size_t row0,
                    std::size_t row1);
void axpyScalar(Complex alpha, const Complex *x, Complex *y,
                std::size_t n);
Complex dotuScalar(const Complex *x, const Complex *y, std::size_t n);

/** AVX2 implementations; only linked on x86-64 builds with -mavx2. */
void gemmRowsAvx2(const Complex *a, const Complex *b, Complex *out,
                  std::size_t k, std::size_t m, std::size_t row0,
                  std::size_t row1);
void axpyAvx2(Complex alpha, const Complex *x, Complex *y,
              std::size_t n);
Complex dotuAvx2(const Complex *x, const Complex *y, std::size_t n);

} // namespace detail

} // namespace kernels
} // namespace paqoc

#endif // PAQOC_LINALG_KERNELS_H_
