#include "linalg/unitary_util.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "linalg/eig.h"

namespace paqoc {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Wrap an angle into (-pi, pi]. */
double
wrapAngle(double theta)
{
    while (theta > kPi)
        theta -= 2.0 * kPi;
    while (theta <= -kPi)
        theta += 2.0 * kPi;
    return theta;
}

} // namespace

namespace {

/** Eigenbasis of a unitary: U = V diag(e^{i phases}) V^dagger. */
struct UnitaryEigen
{
    Matrix vectors;
    std::vector<double> phases;
};

UnitaryEigen
diagonalizeUnitary(const Matrix &u)
{
    PAQOC_ASSERT(u.isSquare(), "eigenphases of non-square matrix");
    const std::size_t n = u.rows();
    const Matrix udag = u.adjoint();

    // U is normal, so Re(U) = (U + U^dag)/2 and Im(U) = (U - U^dag)/(2i)
    // are commuting Hermitian matrices. A generic real combination
    // A + c B has simple spectrum with probability one, so its
    // eigenvectors diagonalize both -- and hence U itself.
    Matrix a = u;
    a += udag;
    a *= Complex(0.5, 0.0);
    Matrix b = u;
    b -= udag;
    b *= Complex(0.0, -0.5);

    const double cs[] = {0.6180339887498949, 0.3141592653589793,
                         1.7320508075688772};
    for (double c : cs) {
        Matrix m = a;
        Matrix cb = b;
        cb *= Complex(c, 0.0);
        m += cb;
        EigenResult eig = hermitianEigen(m);

        // Verify the candidate basis actually diagonalizes U.
        const Matrix d = eig.vectors.adjoint() * u * eig.vectors;
        double off = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t col = 0; col < n; ++col)
                if (r != col)
                    off = std::max(off, std::abs(d(r, col)));
        if (off > 1e-6)
            continue; // degenerate collision; retry with the next c

        UnitaryEigen result;
        result.phases.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            result.phases[i] = std::atan2(d(i, i).imag(),
                                          d(i, i).real());
        result.vectors = std::move(eig.vectors);
        return result;
    }
    throw InternalError("diagonalizeUnitary: could not split spectrum");
}

/**
 * Global phase that centers the given eigenphases: the midpoint of
 * the minimal enclosing arc on the unit circle.
 */
double
centeringPhase(std::vector<double> phases)
{
    if (phases.empty())
        return 0.0;
    std::sort(phases.begin(), phases.end());
    const std::size_t n = phases.size();
    double max_gap = phases.front() + 2.0 * kPi - phases.back();
    std::size_t gap_at = 0; // gap precedes phases[gap_at]
    for (std::size_t i = 1; i < n; ++i) {
        const double gap = phases[i] - phases[i - 1];
        if (gap > max_gap) {
            max_gap = gap;
            gap_at = i;
        }
    }
    // The occupied arc starts just after the largest gap.
    const double arc_start = phases[gap_at];
    const double arc = 2.0 * kPi - max_gap;
    return wrapAngle(arc_start + arc * 0.5);
}

} // namespace

std::vector<double>
unitaryEigenphases(const Matrix &u)
{
    return diagonalizeUnitary(u).phases;
}

double
spectralPhaseNorm(const Matrix &u)
{
    std::vector<double> phases = unitaryEigenphases(u);
    std::sort(phases.begin(), phases.end());
    const std::size_t n = phases.size();
    if (n == 0)
        return 0.0;

    // The minimal enclosing arc of the phase set on the circle is
    // 2*pi minus the largest gap between circularly consecutive phases;
    // centering the global phase in that arc gives max |wrapped| equal
    // to half of the arc length.
    double max_gap = phases.front() + 2.0 * kPi - phases.back();
    for (std::size_t i = 1; i < n; ++i)
        max_gap = std::max(max_gap, phases[i] - phases[i - 1]);
    const double arc = 2.0 * kPi - max_gap;
    return std::max(arc * 0.5, 0.0);
}

namespace {

/** All n-qubit Pauli strings with their weights, cached per n. */
struct PauliBasis
{
    std::vector<Matrix> strings;
    std::vector<int> weights;
    /** Bitmask of the qubits each string acts on non-trivially. */
    std::vector<unsigned> supports;
};

const PauliBasis &
pauliBasis(int num_qubits)
{
    static PauliBasis cache[5]; // index by qubit count, 1..4
    PAQOC_FATAL_IF(num_qubits < 1 || num_qubits > 4,
                   "pauliSplitNorms supports 1..4 qubits, got ",
                   num_qubits);
    PauliBasis &basis = cache[num_qubits];
    if (!basis.strings.empty())
        return basis;

    const Matrix paulis[4] = {
        Matrix::identity(2),
        Matrix{{0.0, 1.0}, {1.0, 0.0}},
        Matrix{{Complex(0, 0), Complex(0, -1)},
               {Complex(0, 1), Complex(0, 0)}},
        Matrix{{1.0, 0.0}, {0.0, -1.0}},
    };
    const std::size_t total = std::size_t{1} << (2 * num_qubits);
    for (std::size_t code = 0; code < total; ++code) {
        Matrix p = Matrix::identity(1);
        int weight = 0;
        unsigned support = 0;
        std::size_t c = code;
        for (int q = 0; q < num_qubits; ++q) {
            const std::size_t digit = c & 3u;
            c >>= 2;
            p = kron(p, paulis[digit]);
            if (digit != 0) {
                ++weight;
                support |= 1u << q;
            }
        }
        basis.strings.push_back(std::move(p));
        basis.weights.push_back(weight);
        basis.supports.push_back(support);
    }
    return basis;
}

} // namespace

PauliSplitNorms
pauliSplitNorms(const Matrix &u, int num_qubits)
{
    PAQOC_ASSERT(u.rows() == (std::size_t{1} << num_qubits),
                 "unitary does not match qubit count");
    const std::size_t dim = u.rows();

    // Principal log with centered eigenphases: U = exp(-iA).
    const UnitaryEigen eig = diagonalizeUnitary(u);
    const double center = centeringPhase(eig.phases);
    Matrix a(dim, dim);
    // A = -V diag(wrap(theta - center)) V^dagger (sign is irrelevant
    // to the norms; keep the positive convention).
    Matrix d(dim, dim);
    for (std::size_t i = 0; i < dim; ++i)
        d(i, i) = Complex(wrapAngle(eig.phases[i] - center), 0.0);
    a = eig.vectors * d * eig.vectors.adjoint();

    // Project onto the Pauli basis; split by weight and by channel
    // (adjacent pair vs routed/multi-body content).
    const PauliBasis &basis = pauliBasis(num_qubits);
    Matrix local(dim, dim);
    Matrix entangling(dim, dim);
    Matrix hard(dim, dim);
    std::vector<Matrix> per_pair(
        num_qubits > 1 ? static_cast<std::size_t>(num_qubits - 1) : 0,
        Matrix(dim, dim));
    const double dd = static_cast<double>(dim);
    for (std::size_t k = 0; k < basis.strings.size(); ++k) {
        if (basis.weights[k] == 0)
            continue; // global phase, already centered away
        const Matrix &p = basis.strings[k];
        // A and P are Hermitian, so the coefficient is real.
        Complex coeff(0.0, 0.0);
        for (std::size_t r = 0; r < dim; ++r)
            for (std::size_t c = 0; c < dim; ++c)
                coeff += p(r, c) * a(c, r);
        const double cr = coeff.real() / dd;
        if (std::abs(cr) < 1e-12)
            continue;
        Matrix term = p;
        term *= Complex(cr, 0.0);
        if (basis.weights[k] <= 1) {
            local += term;
            continue;
        }
        entangling += term;
        // Adjacent pair {q, q+1} <=> support mask 0b11 << q.
        bool adjacent = false;
        if (basis.weights[k] == 2) {
            for (int q = 0; q + 1 < num_qubits; ++q) {
                if (basis.supports[k] == (3u << q)) {
                    per_pair[static_cast<std::size_t>(q)] += term;
                    adjacent = true;
                    break;
                }
            }
        }
        if (!adjacent)
            hard += term;
    }

    auto spec_norm = [](const Matrix &h) {
        if (h.maxAbs() < 1e-12)
            return 0.0;
        const EigenResult e = hermitianEigen(h);
        return std::max(std::abs(e.values.front()),
                        std::abs(e.values.back()));
    };
    PauliSplitNorms norms;
    norms.localNorm = spec_norm(local);
    norms.entanglingNorm = spec_norm(entangling);
    for (const Matrix &pair : per_pair)
        norms.adjacentPairNorm =
            std::max(norms.adjacentPairNorm, spec_norm(pair));
    norms.hardNorm = spec_norm(hard);
    return norms;
}

double
traceFidelity(const Matrix &u, const Matrix &v)
{
    PAQOC_ASSERT(u.rows() == v.rows() && u.cols() == v.cols(),
                 "shape mismatch in traceFidelity");
    const Complex t = (u.adjoint() * v).trace();
    const double d = static_cast<double>(u.rows());
    return std::norm(t) / (d * d);
}

double
phaseInvariantDistance(const Matrix &u, const Matrix &v)
{
    const Complex t = (u.adjoint() * v).trace();
    const double d = static_cast<double>(u.rows());
    const double inner = std::max(2.0 * d - 2.0 * std::abs(t), 0.0);
    return std::sqrt(inner);
}

bool
equalUpToGlobalPhase(const Matrix &u, const Matrix &v, double tol)
{
    if (u.rows() != v.rows() || u.cols() != v.cols())
        return false;
    return phaseInvariantDistance(u, v) < tol;
}

std::uint64_t
matrixHash(const Matrix &u)
{
    constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    std::uint64_t h = kOffset;
    auto mix_u64 = [&h](std::uint64_t bits) {
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xffu;
            h *= kPrime;
        }
    };
    auto mix_double = [&](double x) {
        // +0.0 folds negative zero so -0.0 and 0.0 hash alike.
        const double folded = x + 0.0;
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof folded);
        std::memcpy(&bits, &folded, sizeof bits);
        mix_u64(bits);
    };
    mix_u64(u.rows());
    mix_u64(u.cols());
    const Complex *p = u.data();
    const std::size_t n = u.rows() * u.cols();
    for (std::size_t i = 0; i < n; ++i) {
        mix_double(p[i].real());
        mix_double(p[i].imag());
    }
    return h;
}

} // namespace paqoc
