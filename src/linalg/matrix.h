#ifndef PAQOC_LINALG_MATRIX_H_
#define PAQOC_LINALG_MATRIX_H_

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace paqoc {

using Complex = std::complex<double>;

/**
 * Dense row-major complex matrix.
 *
 * This is the workhorse type for the QOC numerics: Hamiltonians, unitary
 * propagators and gate matrices are all small (at most 2^n x 2^n for
 * n <= ~6 qubits), so a simple dense representation with tight loops is
 * both sufficient and cache-friendly.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from a nested initializer list (row major). */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** The n x n identity. */
    static Matrix identity(std::size_t n);

    /** The n x n all-zero matrix. */
    static Matrix zero(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool isSquare() const { return rows_ == cols_; }

    /**
     * Reshape to rows x cols, zero-filled, reusing the existing
     * allocation when capacity allows. The workhorse for scratch
     * buffers that live across hot-loop iterations.
     */
    void resize(std::size_t rows, std::size_t cols);

    Complex &operator()(std::size_t r, std::size_t c)
    { return data_[r * cols_ + c]; }
    const Complex &operator()(std::size_t r, std::size_t c) const
    { return data_[r * cols_ + c]; }

    /** Raw storage access for tight inner loops. */
    Complex *data() { return data_.data(); }
    const Complex *data() const { return data_.data(); }

    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(Complex scalar);

    friend Matrix operator+(Matrix a, const Matrix &b) { return a += b; }
    friend Matrix operator-(Matrix a, const Matrix &b) { return a -= b; }
    friend Matrix operator*(Matrix a, Complex s) { return a *= s; }
    friend Matrix operator*(Complex s, Matrix a) { return a *= s; }

    /** Matrix product; dimensions must agree. */
    friend Matrix operator*(const Matrix &a, const Matrix &b);

    /** Conjugate transpose. */
    Matrix adjoint() const;

    /** Plain transpose (no conjugation). */
    Matrix transpose() const;

    /** Elementwise complex conjugate. */
    Matrix conjugate() const;

    /** Sum of diagonal entries; requires a square matrix. */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute row sum (induced infinity norm). */
    double infinityNorm() const;

    /** Largest |a_ij|. */
    double maxAbs() const;

    /** True if this matrix equals other entrywise within tol. */
    bool approxEqual(const Matrix &other, double tol = 1e-9) const;

    /** True if U * U^dagger ~= I within tol. */
    bool isUnitary(double tol = 1e-8) const;

    /** True if A ~= A^dagger within tol. */
    bool isHermitian(double tol = 1e-9) const;

    /** Human-readable rendering for diagnostics. */
    std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix &a, const Matrix &b);

/**
 * Multiply accumulating into an existing buffer: out = a * b.
 * out must be pre-sized and must not alias a or b (enforced: an
 * aliased call raises InternalError instead of silently corrupting).
 * Dispatches to the runtime-selected kernel backend (see
 * linalg/kernels.h); results are bit-identical across backends and
 * thread counts.
 */
void matmulInto(const Matrix &a, const Matrix &b, Matrix &out);

} // namespace paqoc

#endif // PAQOC_LINALG_MATRIX_H_
