#include "linalg/expm.h"

#include <atomic>
#include <cmath>
#include <iostream>

#include "common/error.h"
#include "linalg/kernels.h"
#include "linalg/solve.h"

namespace paqoc {

namespace {

// Coefficients of the [6/6] Pade approximant to exp(x).
constexpr double kPade6[] = {
    1.0, 0.5, 5.0 / 44.0, 1.0 / 66.0, 1.0 / 792.0, 1.0 / 15840.0,
    1.0 / 665280.0,
};

/** Squaring cap of the scaling step; see expmSquaringClampCount(). */
constexpr int kMaxSquarings = 40;

std::atomic<std::uint64_t> g_squaring_clamps{0};

void
noteSquaringClamp(double norm)
{
    if (g_squaring_clamps.fetch_add(1, std::memory_order_relaxed)
        == 0) {
        // One-time diagnostic: a clamped argument is (norm/0.5)/2^40
        // times larger than the Pade kernel's design range, so the
        // result is numerically suspect. Later clamps only bump the
        // counter.
        std::cerr << "paqoc: expm: argument norm " << norm
                  << " exceeds the scaling range (squarings clamped "
                     "at "
                  << kMaxSquarings
                  << "); result accuracy is not guaranteed. This "
                     "warning is printed once per process; see "
                     "expmSquaringClampCount().\n";
    }
}

/** Fill `m` with the n x n identity, reusing its storage. */
void
identityInto(Matrix &m, std::size_t n)
{
    m.resize(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = Complex(1.0, 0.0);
}

/**
 * exp(ws.as) -> out. Consumes the workspace contents; every product
 * lands in a preallocated buffer via matmulInto, so a warm workspace
 * performs zero heap allocations. The arithmetic (and therefore the
 * bits) matches the historical allocate-per-product implementation
 * operation for operation.
 */
void
expmCore(Matrix &out, ExpmWorkspace &ws)
{
    const std::size_t n = ws.as.rows();

    // Scale so the argument norm is small enough for the Pade kernel.
    const double norm = ws.as.infinityNorm();
    int squarings = 0;
    if (norm > 0.5) {
        squarings = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
        if (squarings > kMaxSquarings) {
            squarings = kMaxSquarings;
            noteSquaringClamp(norm);
        }
    }
    const double scale = std::pow(2.0, -squarings);
    ws.as *= Complex(scale, 0.0);

    // Horner-style evaluation of even/odd parts: p = U + V, q = -U + V
    // with U odd powers, V even powers, exp(A) ~ q^{-1} p.
    ws.a2.resize(n, n);
    matmulInto(ws.as, ws.as, ws.a2);
    ws.even.resize(n, n);
    ws.odd.resize(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        ws.even(i, i) = Complex(kPade6[0], 0.0);
        ws.odd(i, i) = Complex(kPade6[1], 0.0);
    }
    identityInto(ws.pow, n); // a2^k
    ws.tmp.resize(n, n);
    for (int k = 1; k <= 3; ++k) {
        matmulInto(ws.pow, ws.a2, ws.tmp);
        std::swap(ws.pow, ws.tmp);
        kernels::axpy(Complex(kPade6[2 * k], 0.0), ws.pow.data(),
                      ws.even.data(), n * n);
        if (2 * k + 1 <= 6)
            kernels::axpy(Complex(kPade6[2 * k + 1], 0.0),
                          ws.pow.data(), ws.odd.data(), n * n);
    }
    ws.u.resize(n, n);
    matmulInto(ws.as, ws.odd, ws.u); // U = as * (odd-power sum)
    ws.q = ws.even;
    ws.q -= ws.u;   // q = V - U
    ws.even += ws.u; // even now holds p = V + U
    ws.r.resize(n, n);
    solveLinearInPlace(ws.q, ws.even, ws.r);

    for (int s = 0; s < squarings; ++s) {
        ws.tmp.resize(n, n);
        matmulInto(ws.r, ws.r, ws.tmp);
        std::swap(ws.r, ws.tmp);
    }
    out = ws.r;
}

} // namespace

std::uint64_t
expmSquaringClampCount()
{
    return g_squaring_clamps.load(std::memory_order_relaxed);
}

void
expmInto(const Matrix &a, Matrix &out, ExpmWorkspace &ws)
{
    PAQOC_ASSERT(a.isSquare(), "expm of non-square matrix");
    ws.as = a;
    expmCore(out, ws);
}

Matrix
expm(const Matrix &a)
{
    ExpmWorkspace ws;
    Matrix out;
    expmInto(a, out, ws);
    return out;
}

void
expmPropagatorInto(const Matrix &h, double dt, Matrix &out,
                   ExpmWorkspace &ws)
{
    PAQOC_ASSERT(h.isSquare(), "expm of non-square matrix");
    const std::size_t n = h.rows();
    // One fused pass: as = h * (-i dt), elementwise, straight into
    // the workspace. Same complex product as the historical
    // copy-then-*= sequence, minus the copy.
    ws.as.resize(n, n);
    const Complex factor(0.0, -dt);
    const Complex *src = h.data();
    Complex *dst = ws.as.data();
    for (std::size_t i = 0; i < n * n; ++i)
        dst[i] = src[i] * factor;
    expmCore(out, ws);
}

Matrix
expmPropagator(const Matrix &h, double dt)
{
    ExpmWorkspace ws;
    Matrix out;
    expmPropagatorInto(h, dt, out, ws);
    return out;
}

} // namespace paqoc
