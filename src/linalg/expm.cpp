#include "linalg/expm.h"

#include <cmath>

#include "common/error.h"
#include "linalg/solve.h"

namespace paqoc {

namespace {

// Coefficients of the [6/6] Pade approximant to exp(x).
constexpr double kPade6[] = {
    1.0, 0.5, 5.0 / 44.0, 1.0 / 66.0, 1.0 / 792.0, 1.0 / 15840.0,
    1.0 / 665280.0,
};

} // namespace

Matrix
expm(const Matrix &a)
{
    PAQOC_ASSERT(a.isSquare(), "expm of non-square matrix");
    const std::size_t n = a.rows();

    // Scale so the argument norm is small enough for the Pade kernel.
    const double norm = a.infinityNorm();
    int squarings = 0;
    if (norm > 0.5) {
        squarings = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
        squarings = std::min(squarings, 40);
    }
    const double scale = std::pow(2.0, -squarings);
    Matrix as = a;
    as *= Complex(scale, 0.0);

    // Horner-style evaluation of even/odd parts: p = U + V, q = -U + V
    // with U odd powers, V even powers, exp(A) ~ q^{-1} p.
    Matrix a2 = as * as;
    Matrix even = Matrix::identity(n) * Complex(kPade6[0], 0.0);
    Matrix odd_coeff = Matrix::identity(n) * Complex(kPade6[1], 0.0);
    Matrix pow = Matrix::identity(n); // a2^k
    for (int k = 1; k <= 3; ++k) {
        pow = pow * a2;
        even += pow * Complex(kPade6[2 * k], 0.0);
        if (2 * k + 1 <= 6)
            odd_coeff += pow * Complex(kPade6[2 * k + 1], 0.0);
    }
    Matrix u = as * odd_coeff;
    Matrix p = even + u;
    Matrix q = even - u;
    Matrix r = solveLinear(std::move(q), std::move(p));

    for (int s = 0; s < squarings; ++s)
        r = r * r;
    return r;
}

Matrix
expmPropagator(const Matrix &h, double dt)
{
    Matrix a = h;
    a *= Complex(0.0, -dt);
    return expm(a);
}

} // namespace paqoc
