/**
 * @file
 * AVX2 backends for the dispatched kernels. This translation unit is
 * compiled with -mavx2 -ffp-contract=off and must only be entered
 * after kernels::avx2Available() returned true. -mfma is deliberately
 * absent: beyond never *writing* FMA intrinsics here, the ISA must
 * not even be enabled, because GCC fuses the open-coded complex
 * multiply in the scalar tail loops below into vfmaddsub132pd (one
 * rounding instead of two) even under -ffp-contract=off, which would
 * silently break bit-identity with the scalar reference TU.
 *
 * Bit-identity with the scalar reference is load-bearing, so the
 * lane layout mirrors the scalar arithmetic exactly:
 *
 *  - One 256-bit ymm holds TWO interleaved complex doubles
 *    [re0 im0 re1 im1]; vector width runs across independent output
 *    elements (columns j / indices i), never across a reduction.
 *  - A complex product a*b is computed as the scalar formula
 *    (ar*br - ai*bi, ar*bi + ai*br): two vmulpd and one vaddsubpd,
 *    each individually rounded -- the same three roundings, in the
 *    same order, as std::complex<double> operator*. FMA contraction
 *    would fuse the mul into the add/sub and change the bits, which
 *    is why this file never uses vfmadd and is built with
 *    -ffp-contract=off and without -mfma.
 *  - Reductions (dotu) compute term products two-wide but fold them
 *    into the accumulator one term at a time in ascending-i order,
 *    exactly like the scalar loop.
 */

#if defined(PAQOC_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include "linalg/kernels.h"

namespace paqoc {
namespace kernels {
namespace detail {

namespace {

/**
 * Two complex products alpha * v for interleaved v = [b0 b1], with
 * ar/ai pre-broadcast from alpha. addsub subtracts in even (real)
 * lanes and adds in odd (imag) lanes: exactly (ar*br - ai*bi,
 * ar*bi + ai*br) per element.
 */
inline __m256d
mulBroadcast(__m256d ar, __m256d ai, __m256d v)
{
    const __m256d swapped = _mm256_permute_pd(v, 0x5); // [im re im re]
    return _mm256_addsub_pd(_mm256_mul_pd(ar, v),
                            _mm256_mul_pd(ai, swapped));
}

inline const double *
asDoubles(const Complex *p)
{
    // std::complex<double> is layout-compatible with double[2].
    return reinterpret_cast<const double *>(p);
}

inline double *
asDoubles(Complex *p)
{
    return reinterpret_cast<double *>(p);
}

} // namespace

void
gemmRowsAvx2(const Complex *a, const Complex *b, Complex *out,
             std::size_t k, std::size_t m, std::size_t row0,
             std::size_t row1)
{
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t i = row0; i < row1; ++i) {
        const Complex *arow = a + i * k;
        Complex *orow = out + i * m;
        double *od = asDoubles(orow);
        std::size_t j = 0;
        for (; j + 2 <= m; j += 2)
            _mm256_storeu_pd(od + 2 * j, zero);
        for (; j < m; ++j)
            orow[j] = Complex(0.0, 0.0);
        for (std::size_t kk = 0; kk < k; ++kk) {
            const Complex aik = arow[kk];
            if (aik == Complex(0.0, 0.0))
                continue;
            const __m256d ar = _mm256_set1_pd(aik.real());
            const __m256d ai = _mm256_set1_pd(aik.imag());
            const double *bd = asDoubles(b + kk * m);
            j = 0;
            // 4 columns (two ymm) per step; columns are independent,
            // so unrolling does not reorder any element's terms.
            for (; j + 4 <= m; j += 4) {
                const __m256d b0 = _mm256_loadu_pd(bd + 2 * j);
                const __m256d b1 = _mm256_loadu_pd(bd + 2 * j + 4);
                const __m256d o0 = _mm256_loadu_pd(od + 2 * j);
                const __m256d o1 = _mm256_loadu_pd(od + 2 * j + 4);
                _mm256_storeu_pd(
                    od + 2 * j,
                    _mm256_add_pd(o0, mulBroadcast(ar, ai, b0)));
                _mm256_storeu_pd(
                    od + 2 * j + 4,
                    _mm256_add_pd(o1, mulBroadcast(ar, ai, b1)));
            }
            for (; j + 2 <= m; j += 2) {
                const __m256d bv = _mm256_loadu_pd(bd + 2 * j);
                const __m256d ov = _mm256_loadu_pd(od + 2 * j);
                _mm256_storeu_pd(
                    od + 2 * j,
                    _mm256_add_pd(ov, mulBroadcast(ar, ai, bv)));
            }
            for (; j < m; ++j)
                orow[j] += aik * (b + kk * m)[j];
        }
    }
}

void
axpyAvx2(Complex alpha, const Complex *x, Complex *y, std::size_t n)
{
    // y[i] += x[i] * alpha: same formula as the scalar loop with the
    // roles of the broadcast operand arranged to match x * alpha
    // (complex multiplication's product set is symmetric and IEEE
    // addition/multiplication are commutative, so broadcast(alpha) *
    // x[i] rounds identically to x[i] * alpha).
    const __m256d ar = _mm256_set1_pd(alpha.real());
    const __m256d ai = _mm256_set1_pd(alpha.imag());
    const double *xd = asDoubles(x);
    double *yd = asDoubles(y);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
        const __m256d yv = _mm256_loadu_pd(yd + 2 * i);
        _mm256_storeu_pd(yd + 2 * i,
                         _mm256_add_pd(yv, mulBroadcast(ar, ai, xv)));
    }
    for (; i < n; ++i)
        y[i] += x[i] * alpha;
}

Complex
dotuAvx2(const Complex *x, const Complex *y, std::size_t n)
{
    const double *xd = asDoubles(x);
    const double *yd = asDoubles(y);
    // 128-bit accumulator = one complex; terms are folded in one at a
    // time (low half then high half) to preserve the scalar
    // ascending-i accumulation order.
    __m128d acc = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
        const __m256d yv = _mm256_loadu_pd(yd + 2 * i);
        const __m256d xr = _mm256_movedup_pd(xv);      // [re re ...]
        const __m256d xi = _mm256_permute_pd(xv, 0xF); // [im im ...]
        const __m256d ys = _mm256_permute_pd(yv, 0x5);
        const __m256d prod = _mm256_addsub_pd(
            _mm256_mul_pd(xr, yv), _mm256_mul_pd(xi, ys));
        acc = _mm_add_pd(acc, _mm256_castpd256_pd128(prod));
        acc = _mm_add_pd(acc, _mm256_extractf128_pd(prod, 1));
    }
    alignas(16) double pair[2];
    _mm_store_pd(pair, acc);
    Complex t(pair[0], pair[1]);
    for (; i < n; ++i)
        t += x[i] * y[i];
    return t;
}

} // namespace detail
} // namespace kernels
} // namespace paqoc

#endif // PAQOC_HAVE_AVX2_KERNELS
