#ifndef PAQOC_LINALG_SOLVE_H_
#define PAQOC_LINALG_SOLVE_H_

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Solve A X = B for X using Gaussian elimination with partial pivoting.
 * A must be square and nonsingular; B may have any number of columns.
 */
Matrix solveLinear(Matrix a, Matrix b);

/** Invert a square nonsingular matrix. */
Matrix inverse(const Matrix &a);

} // namespace paqoc

#endif // PAQOC_LINALG_SOLVE_H_
