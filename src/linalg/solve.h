#ifndef PAQOC_LINALG_SOLVE_H_
#define PAQOC_LINALG_SOLVE_H_

#include "linalg/matrix.h"

namespace paqoc {

/**
 * Solve A X = B for X using Gaussian elimination with partial pivoting.
 * A must be square and nonsingular; B may have any number of columns.
 */
Matrix solveLinear(Matrix a, Matrix b);

/**
 * Workspace variant: destroys `a` and `b` (they hold the elimination
 * state afterwards) and writes X into `x`, which is resized as needed.
 * `x` must not alias `a` or `b`. Bit-identical to solveLinear.
 */
void solveLinearInPlace(Matrix &a, Matrix &b, Matrix &x);

/** Invert a square nonsingular matrix. */
Matrix inverse(const Matrix &a);

} // namespace paqoc

#endif // PAQOC_LINALG_SOLVE_H_
