#ifndef PAQOC_LINALG_EIG_H_
#define PAQOC_LINALG_EIG_H_

#include <vector>

#include "linalg/matrix.h"

namespace paqoc {

/** Result of a Hermitian eigendecomposition A = V diag(values) V^dagger. */
struct EigenResult
{
    /** Real eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the matching eigenvectors. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a complex Hermitian matrix via cyclic Jacobi
 * rotations. Robust and accurate for the small (<= 64x64) operators
 * this project manipulates.
 */
EigenResult hermitianEigen(const Matrix &a, double tol = 1e-12,
                           int max_sweeps = 100);

} // namespace paqoc

#endif // PAQOC_LINALG_EIG_H_
