/**
 * @file
 * paqoc-tierd -- the shared pulse-cache tier daemon (DESIGN.md §14).
 *
 * Serves the tier op set (tier/tier_protocol.h) over the service's
 * length-prefixed JSON frame transport, backed by a CRC32-journaled
 * store: a fleet of `paqocd` daemons pointed at one tierd shares
 * every pulse any of them derives, so a gate compiled once is a
 * network fetch -- not a GRAPE run -- everywhere else.
 *
 * Usage:
 *   paqoc-tierd [options]
 *     --socket PATH        listening socket
 *                          (default /tmp/paqoc-tierd.sock)
 *     --listen HOST:PORT   TCP listener beside the socket (port 0 =
 *                          ephemeral; resolved port is logged)
 *     --store DIR          journal directory (default /tmp/paqoc-tier)
 *
 * SIGINT/SIGTERM (or a "shutdown" op) shut down gracefully: the
 * journal is fsynced, then the process exits. kill -9 is also safe --
 * the journal recovers to a valid prefix on the next launch.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "fleet/endpoint.h"
#include "tier/tier_server.h"
#include "tier/tier_store.h"

namespace {

using namespace paqoc;

struct TierdOptions
{
    std::string socketPath = "/tmp/paqoc-tierd.sock";
    std::string listenHost; ///< "" = no TCP listener
    int listenPort = 0;
    std::string storeDir = "/tmp/paqoc-tier";
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: paqoc-tierd [options]\n"
        "  --socket PATH        listening socket "
        "(default /tmp/paqoc-tierd.sock)\n"
        "  --listen HOST:PORT   TCP listener beside the socket "
        "(port 0 = ephemeral)\n"
        "  --store DIR          journal directory "
        "(default /tmp/paqoc-tier)\n");
    std::exit(code);
}

TierdOptions
parseArgs(int argc, char **argv)
{
    TierdOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(2);
            return argv[i];
        };
        if (arg == "--socket")
            opts.socketPath = next();
        else if (arg == "--listen") {
            const std::string spec = next();
            std::string error;
            const std::optional<fleet::HostPort> hp =
                fleet::parseHostPort(spec, &error);
            if (!hp.has_value()) {
                std::fprintf(stderr,
                             "paqoc-tierd: bad --listen '%s': %s\n",
                             spec.c_str(), error.c_str());
                usage(2);
            }
            opts.listenHost = hp->host;
            opts.listenPort = hp->port;
        } else if (arg == "--store")
            opts.storeDir = next();
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    return opts;
}

// Signal handling: the handler only writes one byte to a self-pipe
// (the only async-signal-safe option); a watcher thread turns that
// byte into a requestStop() call.
int g_signal_pipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const TierdOptions opts = parseArgs(argc, argv);

        tier::TierStore store(opts.storeDir);
        const tier::TierStoreStats recovered = store.stats();
        std::printf("paqoc-tierd: store %s: %zu records recovered "
                    "(%zu journal records, %zu denied keys)\n",
                    opts.storeDir.c_str(), store.size(),
                    recovered.journalRecords, recovered.deniedKeys);
        for (const std::string &w : recovered.warnings)
            std::printf("paqoc-tierd: warning: %s\n", w.c_str());

        tier::TierServerOptions server_opts;
        server_opts.socketPath = opts.socketPath;
        server_opts.listenHost = opts.listenHost;
        server_opts.listenPort = opts.listenPort;
        tier::TierServer server(store, server_opts);

        PAQOC_FATAL_IF(::pipe(g_signal_pipe) != 0,
                       "paqoc-tierd: pipe(): ", std::strerror(errno));
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGPIPE, SIG_IGN);
        std::thread watcher([&server]() {
            char byte = 0;
            while (::read(g_signal_pipe[0], &byte, 1) < 0
                   && errno == EINTR) {
            }
            server.requestStop();
        });

        const std::vector<std::string> armed = failpoint::armed();
        if (!armed.empty()) {
            std::printf("paqoc-tierd: WARNING: failpoints armed:");
            for (const std::string &a : armed)
                std::printf(" %s", a.c_str());
            std::printf("\n");
        }

        server.start();
        std::printf("paqoc-tierd: serving on %s\n",
                    opts.socketPath.c_str());
        if (server.tcpPort() >= 0)
            std::printf("paqoc-tierd: tcp port %d\n",
                        server.tcpPort());
        std::fflush(stdout);
        server.run();

        // Wake the watcher if shutdown came from a "shutdown" op
        // rather than a signal.
        onSignal(0);
        watcher.join();
        ::close(g_signal_pipe[0]);
        ::close(g_signal_pipe[1]);

        const tier::TierStoreStats st = store.stats();
        std::printf("paqoc-tierd: store: %zu records, %zu stored, "
                    "%zu duplicate puts, %zu denied keys, "
                    "%zu denied gets, degraded %s\n",
                    store.size(), st.stored, st.duplicatePuts,
                    st.deniedKeys, st.deniedGets,
                    st.degraded ? "yes" : "no");
        std::printf("paqoc-tierd: shut down cleanly\n");
        return 0;
    } catch (const paqoc::FatalError &e) {
        std::fprintf(stderr, "paqoc-tierd: %s\n", e.what());
        return 1;
    }
}
