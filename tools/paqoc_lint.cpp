/**
 * paqoc_lint -- whole-program analyzer for PAQOC's concurrency and
 * determinism invariants (DESIGN.md §8, §13). Token/regex level, no
 * libclang. Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 *
 *   paqoc_lint [--root DIR] [--json FILE] [--sarif FILE]
 *              [--cache FILE] [--fix] [--list-rules] [ROOTS...]
 *
 * ROOTS default to "src tools tests bench" under --root (default: the
 * current directory). --json writes the machine-readable report
 * (findings, lock-order graph, cache stats; "-" for stdout); --sarif
 * writes a SARIF 2.1.0 document for CI upload ("-" for stdout).
 * --cache FILE enables the incremental index cache: a warm run
 * re-indexes only files whose bytes (or companion header) changed.
 * --fix rewrites non-canonical header guards in place before linting.
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "lint/analyzer.h"
#include "lint/lint.h"
#include "lint/sarif.h"

namespace {

bool
writeDoc(const std::string &path, const std::string &body)
{
    if (path == "-") {
        std::printf("%s\n", body.c_str());
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "paqoc_lint: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    out << body << '\n';
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string json_path;
    std::string sarif_path;
    paqoc::lint::AnalyzeOptions options;
    std::vector<std::string> roots;
    bool list_rules = false;
    bool fix = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--cache" && i + 1 < argc) {
            options.cachePath = argv[++i];
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: paqoc_lint [--root DIR] [--json FILE] "
                "[--sarif FILE] [--cache FILE] [--fix] "
                "[--list-rules] [ROOTS...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "paqoc_lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (list_rules) {
        for (const std::string &r : paqoc::lint::ruleNames())
            std::printf("%s  %s\n", r.c_str(),
                        paqoc::lint::ruleDescription(r).c_str());
        return 0;
    }
    if (roots.empty())
        roots = {"src", "tools", "tests", "bench"};

    paqoc::lint::AnalyzeResult result;
    try {
        if (fix) {
            const std::vector<std::string> fixed =
                paqoc::lint::fixHeaderGuards(root, roots);
            for (const std::string &f : fixed)
                std::fprintf(stderr, "paqoc_lint: fixed guard in %s\n",
                             f.c_str());
        }
        result = paqoc::lint::analyzeTree(root, roots, options);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "paqoc_lint: %s\n", e.what());
        return 2;
    }

    for (const auto &f : result.findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());

    if (!json_path.empty()
        && !writeDoc(json_path,
                     paqoc::lint::analyzeReportJson(result).dump()))
        return 2;
    if (!sarif_path.empty()
        && !writeDoc(sarif_path,
                     paqoc::lint::sarifReport(result.findings).dump()))
        return 2;

    if (!options.cachePath.empty())
        std::fprintf(stderr,
                     "paqoc_lint: cache %s, %d/%d reused, %d reindexed\n",
                     result.cache.loaded ? "warm" : "cold",
                     result.cache.reused, result.cache.files,
                     result.cache.reindexed);

    if (result.findings.empty()) {
        std::fprintf(stderr, "paqoc_lint: OK (%d rules, %zu lock-order "
                             "edges)\n",
                     paqoc::lint::ruleCount(),
                     result.lockGraph.size());
        return 0;
    }
    std::fprintf(stderr, "paqoc_lint: %zu finding(s)\n",
                 result.findings.size());
    return 1;
}
