/**
 * paqoc_lint -- project linter for PAQOC's concurrency and
 * determinism invariants (DESIGN.md §8). Token/regex level, no
 * libclang. Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 *
 *   paqoc_lint [--root DIR] [--json FILE] [--list-rules] [ROOTS...]
 *
 * ROOTS default to "src tools tests bench" under --root (default: the
 * current directory). --json additionally writes the machine-readable
 * findings report ("-" for stdout).
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "lint/lint.h"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string json_path;
    std::vector<std::string> roots;
    bool list_rules = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: paqoc_lint [--root DIR] [--json FILE] "
                        "[--list-rules] [ROOTS...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "paqoc_lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (list_rules) {
        for (const std::string &r : paqoc::lint::ruleNames())
            std::printf("%s\n", r.c_str());
        return 0;
    }
    if (roots.empty())
        roots = {"src", "tools", "tests", "bench"};

    std::vector<paqoc::lint::Finding> findings;
    try {
        findings = paqoc::lint::lintTree(root, roots);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "paqoc_lint: %s\n", e.what());
        return 2;
    }

    for (const auto &f : findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());

    if (!json_path.empty()) {
        const std::string report =
            paqoc::lint::findingsToJson(findings).dump();
        if (json_path == "-") {
            std::printf("%s\n", report.c_str());
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::fprintf(stderr,
                             "paqoc_lint: cannot write '%s'\n",
                             json_path.c_str());
                return 2;
            }
            out << report << '\n';
        }
    }

    if (findings.empty()) {
        std::fprintf(stderr, "paqoc_lint: OK (%d rules)\n",
                     paqoc::lint::ruleCount());
        return 0;
    }
    std::fprintf(stderr, "paqoc_lint: %zu finding(s)\n",
                 findings.size());
    return 1;
}
