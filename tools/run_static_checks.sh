#!/bin/sh
# Umbrella static-check driver (cmake target: static-checks; CI job:
# static-checks). Runs every static layer the environment supports and
# fails if any layer fails:
#
#   1. tools/check_format.sh  -- hygiene + clang-format (see that
#      script for the PAQOC_REQUIRE_CLANG_FORMAT contract).
#   2. paqoc_lint             -- the whole-program analyzer over src/
#      tools/ tests/ bench/. The binary is taken from --lint-binary,
#      else from PAQOC_LINT_BINARY, else searched for under
#      build*/tools/. A missing binary is a hard failure: the lint
#      layer is never silently skipped. --lint-cache FILE (or
#      PAQOC_LINT_CACHE) enables the incremental index cache;
#      --lint-sarif FILE (or PAQOC_LINT_SARIF) writes the SARIF
#      2.1.0 report for CI upload.
#   3. clang-tidy             -- .clang-tidy checks over src/, when
#      the tool and a compile_commands.json are available. Skipped
#      with a note otherwise (GCC-only containers).
#
# Exit status: 0 only if every layer that ran passed.
set -eu

cd "$(dirname "$0")/.."

LINT_BINARY="${PAQOC_LINT_BINARY:-}"
LINT_CACHE="${PAQOC_LINT_CACHE:-}"
LINT_SARIF="${PAQOC_LINT_SARIF:-}"
while [ $# -gt 0 ]; do
    case "$1" in
        --lint-binary)
            [ $# -ge 2 ] || {
                echo "run_static_checks: --lint-binary needs a path" >&2
                exit 2
            }
            LINT_BINARY="$2"
            shift 2
            ;;
        --lint-cache)
            [ $# -ge 2 ] || {
                echo "run_static_checks: --lint-cache needs a path" >&2
                exit 2
            }
            LINT_CACHE="$2"
            shift 2
            ;;
        --lint-sarif)
            [ $# -ge 2 ] || {
                echo "run_static_checks: --lint-sarif needs a path" >&2
                exit 2
            }
            LINT_SARIF="$2"
            shift 2
            ;;
        *)
            echo "run_static_checks: unknown argument: $1" >&2
            echo "usage: $0 [--lint-binary PATH]" \
                "[--lint-cache PATH] [--lint-sarif PATH]" >&2
            exit 2
            ;;
    esac
done

status=0

echo "== static-checks: format =="
if ! tools/check_format.sh; then
    status=1
fi

echo "== static-checks: paqoc_lint =="
if [ -z "$LINT_BINARY" ]; then
    for candidate in build/tools/paqoc_lint build-*/tools/paqoc_lint; do
        if [ -x "$candidate" ]; then
            LINT_BINARY="$candidate"
            break
        fi
    done
fi
if [ -z "$LINT_BINARY" ] || [ ! -x "$LINT_BINARY" ]; then
    echo "run_static_checks: paqoc_lint binary not found;" \
        "build it (cmake --build build --target paqoc_lint)" \
        "or pass --lint-binary" >&2
    status=1
else
    set -- --root .
    [ -n "$LINT_CACHE" ] && set -- "$@" --cache "$LINT_CACHE"
    [ -n "$LINT_SARIF" ] && set -- "$@" --sarif "$LINT_SARIF"
    if ! "$LINT_BINARY" "$@"; then
        status=1
    fi
fi

echo "== static-checks: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    COMPDB=""
    for candidate in build/compile_commands.json \
        build-*/compile_commands.json; do
        if [ -f "$candidate" ]; then
            COMPDB=$(dirname "$candidate")
            break
        fi
    done
    if [ -z "$COMPDB" ]; then
        echo "run_static_checks: clang-tidy present but no" \
            "compile_commands.json; configure with" \
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
        status=1
    else
        TIDY_SOURCES=$(find src -name '*.cpp' | sort)
        # shellcheck disable=SC2086
        if ! clang-tidy -p "$COMPDB" --quiet $TIDY_SOURCES; then
            echo "run_static_checks: clang-tidy found issues" >&2
            status=1
        fi
    fi
else
    echo "run_static_checks: clang-tidy not installed; skipping" >&2
fi

if [ "$status" -eq 0 ]; then
    echo "run_static_checks: OK"
else
    echo "run_static_checks: FAILED" >&2
fi
exit $status
