#!/bin/sh
# Benchmark snapshot driver (DESIGN.md §11).
#
# Default mode regenerates the canonical snapshots at the repo root:
#   BENCH_kernels.json  -- bench_micro_kernels --snapshot
#   BENCH_compile.json  -- bench_fig11_compile_time --snapshot
#   BENCH_fleet.json    -- bench_fleet --snapshot
#   BENCH_tier.json     -- bench_tier --snapshot
#   BENCH_overload.json -- bench_overload --snapshot
#
# --check re-measures and compares against the committed snapshots
# instead of overwriting them, exiting 1 on any regression beyond the
# tolerance (the bench binaries print one line per metric). CI's perf
# lane runs `--check --warn-only` so noisy shared runners surface
# regressions without failing the build; run a plain `--check` on
# quiet hardware to enforce.
#
# Options:
#   --check            compare against committed snapshots, don't write
#   --warn-only        with --check: report regressions but exit 0
#   --tolerance FRAC   fractional slack for --check (default 0.35)
#   --build-dir DIR    build tree with the bench binaries (default build)
#   --full             full-length measurement (default passes --quick)
set -eu

cd "$(dirname "$0")/.."
ROOT=$(pwd)

MODE=regen
WARN_ONLY=0
TOLERANCE=0.35
BUILD_DIR=build
QUICK=--quick

usage() {
    sed -n '2,19p' "$0" | sed 's/^# \{0,1\}//'
    exit "${1:-0}"
}

while [ $# -gt 0 ]; do
    case "$1" in
        --check) MODE=check ;;
        --warn-only) WARN_ONLY=1 ;;
        --tolerance) shift; TOLERANCE=$1 ;;
        --build-dir) shift; BUILD_DIR=$1 ;;
        --full) QUICK="" ;;
        -h|--help) usage 0 ;;
        *) echo "bench_snapshot: unknown option '$1'" >&2; usage 2 ;;
    esac
    shift
done

KERNELS_BIN="$BUILD_DIR/bench/bench_micro_kernels"
COMPILE_BIN="$BUILD_DIR/bench/bench_fig11_compile_time"
FLEET_BIN="$BUILD_DIR/bench/bench_fleet"
TIER_BIN="$BUILD_DIR/bench/bench_tier"
OVERLOAD_BIN="$BUILD_DIR/bench/bench_overload"
for bin in "$KERNELS_BIN" "$COMPILE_BIN" "$FLEET_BIN" "$TIER_BIN" \
    "$OVERLOAD_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "bench_snapshot: missing $bin -- build first:" >&2
        echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
        exit 2
    fi
done

STATUS=0
run_one() {
    bin=$1
    snapshot=$2
    if [ "$MODE" = check ]; then
        echo "== checking $snapshot =="
        if ! "$bin" --compare "$ROOT/$snapshot" \
            --tolerance "$TOLERANCE" $QUICK; then
            STATUS=1
        fi
    else
        echo "== writing $snapshot =="
        "$bin" --snapshot "$ROOT/$snapshot" $QUICK
    fi
}

run_one "$KERNELS_BIN" BENCH_kernels.json
run_one "$COMPILE_BIN" BENCH_compile.json
run_one "$FLEET_BIN" BENCH_fleet.json
run_one "$TIER_BIN" BENCH_tier.json
run_one "$OVERLOAD_BIN" BENCH_overload.json

if [ "$STATUS" -ne 0 ]; then
    if [ "$WARN_ONLY" = 1 ]; then
        echo "bench_snapshot: WARNING: regression detected" \
            "(--warn-only, not failing)" >&2
        exit 0
    fi
    echo "bench_snapshot: FAILED: benchmark regression vs committed" \
        "snapshot (tolerance $TOLERANCE)" >&2
    exit 1
fi
echo "bench_snapshot: done"
