#!/bin/sh
# Format gate for the repository (cmake target: format-check).
#
# Two layers:
#   1. Portable hygiene checks that always run: trailing whitespace,
#      hard tabs in C++ sources, CRLF line endings, and files missing
#      a final newline.
#   2. clang-format --dry-run against .clang-format, when the tool is
#      installed. Containers without clang-format skip this layer with
#      a note; set PAQOC_REQUIRE_CLANG_FORMAT=1 (CI does) to make a
#      missing tool a hard failure instead.
#
# On failure the script prints one line per offending file and a final
# summary listing every file that needs attention, and exits 1 -- the
# same contract whether the failure came from the hygiene layer or
# from clang-format.
set -eu

cd "$(dirname "$0")/.."

if command -v git >/dev/null 2>&1 && git rev-parse --git-dir \
    >/dev/null 2>&1; then
    SOURCES=$(git ls-files '*.cpp' '*.h')
else
    SOURCES=$(find src tests tools bench examples \
        \( -name '*.cpp' -o -name '*.h' \) -print | sort)
fi
[ -n "$SOURCES" ] || { echo "check_format: no sources found" >&2; exit 1; }

BAD_FILES=""

mark_bad() {
    case " $BAD_FILES " in
        *" $1 "*) ;;
        *) BAD_FILES="$BAD_FILES $1" ;;
    esac
}

tab=$(printf '\t')
cr=$(printf '\r')

for f in $SOURCES; do
    if grep -qn ' $' "$f"; then
        echo "check_format: trailing whitespace in $f" >&2
        mark_bad "$f"
    fi
    if grep -qn "$tab" "$f"; then
        echo "check_format: hard tab in $f" >&2
        mark_bad "$f"
    fi
    if grep -qn "$cr" "$f"; then
        echo "check_format: CRLF line ending in $f" >&2
        mark_bad "$f"
    fi
    if [ -s "$f" ] && [ "$(tail -c 1 "$f")" != "" ]; then
        echo "check_format: missing final newline in $f" >&2
        mark_bad "$f"
    fi
done

if command -v clang-format >/dev/null 2>&1; then
    for f in $SOURCES; do
        if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
            echo "check_format: clang-format violations in $f" >&2
            mark_bad "$f"
        fi
    done
elif [ "${PAQOC_REQUIRE_CLANG_FORMAT:-0}" != "0" ]; then
    echo "check_format: clang-format required" \
        "(PAQOC_REQUIRE_CLANG_FORMAT set) but not installed" >&2
    exit 1
else
    echo "check_format: clang-format not installed;" \
        "ran hygiene checks only" >&2
fi

if [ -n "$BAD_FILES" ]; then
    count=0
    for f in $BAD_FILES; do count=$((count + 1)); done
    echo "check_format: $count file(s) need attention:" >&2
    for f in $BAD_FILES; do
        echo "  $f" >&2
    done
    exit 1
fi

echo "check_format: OK"
exit 0
