#!/bin/sh
# Format gate for the repository (cmake target: format-check).
#
# Two layers:
#   1. Portable hygiene checks that always run: trailing whitespace,
#      hard tabs in C++ sources, CRLF line endings, and files missing
#      a final newline.
#   2. clang-format --dry-run against .clang-format, when the tool is
#      installed. Containers without clang-format skip this layer with
#      a note rather than failing, so the target is usable everywhere.
#
# Exit status: 0 when every layer that ran passed.
set -eu

cd "$(dirname "$0")/.."

if command -v git >/dev/null 2>&1 && git rev-parse --git-dir \
    >/dev/null 2>&1; then
    SOURCES=$(git ls-files '*.cpp' '*.h')
else
    SOURCES=$(find src tests tools bench examples \
        \( -name '*.cpp' -o -name '*.h' \) -print | sort)
fi
[ -n "$SOURCES" ] || { echo "check_format: no sources found" >&2; exit 1; }

status=0
tab=$(printf '\t')
cr=$(printf '\r')

for f in $SOURCES; do
    if grep -n ' $' "$f" /dev/null; then
        echo "check_format: trailing whitespace in $f" >&2
        status=1
    fi
    if grep -n "$tab" "$f" /dev/null; then
        echo "check_format: hard tab in $f" >&2
        status=1
    fi
    if grep -qn "$cr" "$f"; then
        echo "check_format: CRLF line ending in $f" >&2
        status=1
    fi
    if [ -s "$f" ] && [ "$(tail -c 1 "$f")" != "" ]; then
        echo "check_format: missing final newline in $f" >&2
        status=1
    fi
done

if command -v clang-format >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    if ! clang-format --dry-run -Werror $SOURCES; then
        echo "check_format: clang-format found violations" >&2
        status=1
    fi
else
    echo "check_format: clang-format not installed;" \
        "ran hygiene checks only" >&2
fi

if [ "$status" -eq 0 ]; then
    echo "check_format: OK"
fi
exit $status
