/**
 * @file
 * paqocd -- the PAQOC pulse-compilation daemon.
 *
 * Serves the length-prefixed JSON protocol (see service/protocol.h)
 * over a Unix-domain socket. Pulses derived while serving are appended
 * to a durable on-disk library, so a restarted daemon answers repeat
 * requests from the library instead of re-running pulse generation.
 *
 * Usage:
 *   paqocd [options]
 *     --socket PATH        listening socket (default /tmp/paqocd.sock)
 *     --listen HOST:PORT   TCP listener beside the socket (port 0 =
 *                          ephemeral; resolved port is logged)
 *     --library DIR        durable pulse-library directory (empty =
 *                          in-memory only)
 *     --threads N          worker threads (0 = all cores)
 *     --max-queue N        admitted-but-unfinished request cap
 *     --deadline-ms N      default per-request deadline (0 = none)
 *     --sync-every-append  fsync the journal after every record
 *     --supervise          fork a supervised worker; restart on crash
 *     --fleet N            fork N workers behind a connection router
 *                          (mutually exclusive with --supervise)
 *     --max-restarts N     restart budget per worker (default 5)
 *     --heartbeat-timeout-ms N  silence before a worker counts as hung
 *     --checkpoint-every N GRAPE iterations between checkpoints
 *     --checkpoint-dir DIR checkpoint directory
 *                          (default <library>/checkpoints)
 *     --max-iters N        per-request GRAPE iteration cap (0 = none)
 *     --max-wall-ms N      per-request wall-clock cap (0 = none)
 *     --max-resident-pulses N  per-request distinct-pulse cap
 *     --grape-max-iters N  GRAPE maxIterations override (chaos tests)
 *     --fair-share         weighted fair-share admission across tenants
 *     --tenant-weight NAME=W  fair-share weight (repeatable; implies
 *                          --fair-share; unlisted tenants weigh 1)
 *     --budget-iters N     per-tenant iteration budget per window
 *     --budget-wall-ms N   per-tenant wall-clock budget per window
 *     --budget-window-ms N sliding budget window (default 10000)
 *     --tier ENDPOINT      shared pulse-cache tier (socket path or
 *                          host:port): cache misses read through it,
 *                          fresh derivations publish write-behind
 *     --tier-replica ENDPOINT  replica tier for hedged reads
 *     --tier-timeout-ms N  per-op tier deadline (default 250)
 *     --tier-hedge-ms N    primary wait before hedging (default 30)
 *     --tier-queue N       write-behind queue cap (default 256)
 *     --tier-cooldown-ms N breaker cooldown before a probe
 *                          (default 1000)
 *     --overload-target-ms N  queue-delay target of the adaptive
 *                          overload controller (0 = off); sustained
 *                          delay over it browns out, then sheds
 *     --no-cancel-on-disconnect  keep computing for vanished clients
 *                          (disconnect cancellation is on by default)
 *
 * SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the
 * library is compacted into a snapshot, then the process exits. Under
 * --supervise (or --fleet) the signal lands on the supervising parent,
 * which forwards it and waits for the drain.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "fleet/budget.h"
#include "fleet/endpoint.h"
#include "fleet/router.h"
#include "fleet/tenant.h"
#include "linalg/kernels.h"
#include "service/server.h"
#include "service/service.h"
#include "service/supervisor.h"
#include "tier/tier_client.h"

namespace {

using namespace paqoc;

struct DaemonOptions
{
    std::string socketPath = "/tmp/paqocd.sock";
    std::string listenHost; ///< "" = no TCP listener
    int listenPort = 0;
    std::string libraryDir;
    int threads = 0;
    std::size_t maxQueue = 64;
    double deadlineMs = 0.0;
    bool syncEveryAppend = false;
    bool supervise = false;
    int fleet = 0; ///< 0 = single process
    int maxRestarts = 5;
    double heartbeatTimeoutMs = 5000.0;
    int checkpointEvery = 0;
    std::string checkpointDir;
    QuotaLimits quota;
    int grapeMaxIters = 0;
    bool fairShare = false;
    std::map<std::string, int> tenantWeights;
    fleet::BudgetOptions budget;
    std::string tierEndpoint; ///< "" = no shared tier
    std::string tierReplica;
    double tierTimeoutMs = 250.0;
    double tierHedgeMs = 30.0;
    std::size_t tierQueue = 256;
    double tierCooldownMs = 1000.0;
    double overloadTargetMs = 0.0;
    bool cancelOnDisconnect = true;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: paqocd [options]\n"
        "  --socket PATH        listening socket "
        "(default /tmp/paqocd.sock)\n"
        "  --listen HOST:PORT   TCP listener beside the socket "
        "(port 0 = ephemeral)\n"
        "  --library DIR        durable pulse-library directory\n"
        "  --threads N          worker threads (0 = all cores)\n"
        "  --kernel NAME        linalg backend: scalar|avx2|auto\n"
        "  --max-queue N        in-flight request cap (default 64)\n"
        "  --deadline-ms N      default request deadline (0 = none)\n"
        "  --sync-every-append  fsync the journal per record\n"
        "  --supervise          restart the serving worker on crash\n"
        "  --fleet N            fork N workers behind a router\n"
        "  --max-restarts N     restart budget per worker (default 5)\n"
        "  --heartbeat-timeout-ms N  hung-worker kill threshold\n"
        "  --checkpoint-every N GRAPE iterations per checkpoint\n"
        "  --checkpoint-dir DIR checkpoint directory "
        "(default <library>/checkpoints)\n"
        "  --max-iters N        per-request GRAPE iteration cap\n"
        "  --max-wall-ms N      per-request wall-clock cap\n"
        "  --max-resident-pulses N  per-request distinct-pulse cap\n"
        "  --grape-max-iters N  GRAPE maxIterations override\n"
        "  --fair-share         weighted fair-share admission\n"
        "  --tenant-weight NAME=W  fair-share weight (repeatable)\n"
        "  --budget-iters N     per-tenant iteration budget / window\n"
        "  --budget-wall-ms N   per-tenant wall budget / window\n"
        "  --budget-window-ms N sliding budget window (default "
        "10000)\n"
        "  --tier ENDPOINT      shared pulse-cache tier (socket path "
        "or host:port)\n"
        "  --tier-replica ENDPOINT  replica tier for hedged reads\n"
        "  --tier-timeout-ms N  per-op tier deadline (default 250)\n"
        "  --tier-hedge-ms N    primary wait before hedging "
        "(default 30)\n"
        "  --tier-queue N       write-behind queue cap (default 256)\n"
        "  --tier-cooldown-ms N breaker cooldown before a probe "
        "(default 1000)\n"
        "  --overload-target-ms N  queue-delay target of the "
        "overload controller (0 = off)\n"
        "  --no-cancel-on-disconnect  keep computing for vanished "
        "clients\n");
    std::exit(code);
}

DaemonOptions
parseArgs(int argc, char **argv)
{
    DaemonOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(2);
            return argv[i];
        };
        if (arg == "--socket")
            opts.socketPath = next();
        else if (arg == "--listen") {
            const std::string spec = next();
            std::string error;
            const std::optional<fleet::HostPort> hp =
                fleet::parseHostPort(spec, &error);
            if (!hp.has_value()) {
                std::fprintf(stderr, "paqocd: bad --listen '%s': %s\n",
                             spec.c_str(), error.c_str());
                usage(2);
            }
            opts.listenHost = hp->host;
            opts.listenPort = hp->port;
        } else if (arg == "--library")
            opts.libraryDir = next();
        else if (arg == "--threads")
            opts.threads = std::stoi(next());
        else if (arg == "--kernel") {
            if (!kernels::setBackendByName(next())) {
                std::fprintf(stderr,
                             "paqocd: unknown kernel backend "
                             "(want scalar|avx2|auto)\n");
                usage(2);
            }
        } else if (arg == "--max-queue")
            opts.maxQueue =
                static_cast<std::size_t>(std::stoul(next()));
        else if (arg == "--deadline-ms")
            opts.deadlineMs = std::stod(next());
        else if (arg == "--sync-every-append")
            opts.syncEveryAppend = true;
        else if (arg == "--supervise")
            opts.supervise = true;
        else if (arg == "--fleet")
            opts.fleet = std::stoi(next());
        else if (arg == "--fair-share")
            opts.fairShare = true;
        else if (arg == "--tenant-weight") {
            const std::string spec = next();
            std::string name, error;
            int weight = 0;
            if (!fleet::parseTenantWeight(spec, &name, &weight,
                                          &error)) {
                std::fprintf(stderr,
                             "paqocd: bad --tenant-weight '%s': %s\n",
                             spec.c_str(), error.c_str());
                usage(2);
            }
            opts.tenantWeights[name] = weight;
            opts.fairShare = true;
        } else if (arg == "--budget-iters")
            opts.budget.iters = std::stod(next());
        else if (arg == "--budget-wall-ms")
            opts.budget.wallMs = std::stod(next());
        else if (arg == "--budget-window-ms")
            opts.budget.windowMs = std::stod(next());
        else if (arg == "--max-restarts")
            opts.maxRestarts = std::stoi(next());
        else if (arg == "--heartbeat-timeout-ms")
            opts.heartbeatTimeoutMs = std::stod(next());
        else if (arg == "--checkpoint-every")
            opts.checkpointEvery = std::stoi(next());
        else if (arg == "--checkpoint-dir")
            opts.checkpointDir = next();
        else if (arg == "--max-iters")
            opts.quota.maxIters = std::stol(next());
        else if (arg == "--max-wall-ms")
            opts.quota.maxWallMs = std::stod(next());
        else if (arg == "--max-resident-pulses")
            opts.quota.maxResidentPulses = std::stol(next());
        else if (arg == "--grape-max-iters")
            opts.grapeMaxIters = std::stoi(next());
        else if (arg == "--tier")
            opts.tierEndpoint = next();
        else if (arg == "--tier-replica")
            opts.tierReplica = next();
        else if (arg == "--tier-timeout-ms")
            opts.tierTimeoutMs = std::stod(next());
        else if (arg == "--tier-hedge-ms")
            opts.tierHedgeMs = std::stod(next());
        else if (arg == "--tier-queue")
            opts.tierQueue =
                static_cast<std::size_t>(std::stoul(next()));
        else if (arg == "--tier-cooldown-ms")
            opts.tierCooldownMs = std::stod(next());
        else if (arg == "--overload-target-ms")
            opts.overloadTargetMs = std::stod(next());
        else if (arg == "--cancel-on-disconnect")
            opts.cancelOnDisconnect = true;
        else if (arg == "--no-cancel-on-disconnect")
            opts.cancelOnDisconnect = false;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    return opts;
}

// Signal handling: the handler only writes one byte to a self-pipe
// (the only async-signal-safe option); a watcher thread turns that
// byte into a requestStop() call.
int g_signal_pipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void
printLibrary(const char *name, const PulseLibrary *lib)
{
    if (lib == nullptr)
        return;
    const PulseLibraryStats st = lib->stats();
    std::printf("paqocd: %s library: %zu pulses recovered "
                "(%zu snapshot + %zu journal)",
                name, lib->size(), st.snapshotRecords,
                st.journalRecords);
    if (st.corruptPayloads > 0 || st.droppedTailBytes > 0)
        std::printf(", skipped %zu corrupt records / %zu torn bytes",
                    st.corruptPayloads, st.droppedTailBytes);
    std::printf("\n");
    for (const std::string &w : st.warnings)
        std::printf("paqocd: warning: %s\n", w.c_str());
}

void
printTier(const char *name, tier::TierClient *client)
{
    if (client == nullptr)
        return;
    const tier::TierClientCounters c = client->counters();
    std::printf(
        "paqocd: tier %s: tier_hits %llu, tier_misses %llu, "
        "tier_denied %llu, tier_errors %llu, tier_hedged %llu, "
        "tier_hedge_wins %llu, tier_published %llu, tier_shed %llu, "
        "tier_quarantined %llu, tier_resyncs %llu, breaker %s\n",
        name, static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.denied),
        static_cast<unsigned long long>(c.fetchErrors),
        static_cast<unsigned long long>(c.hedged),
        static_cast<unsigned long long>(c.hedgeWins),
        static_cast<unsigned long long>(c.published),
        static_cast<unsigned long long>(c.shed),
        static_cast<unsigned long long>(c.quarantined),
        static_cast<unsigned long long>(c.resyncs),
        client->breakerStateName());
}

void
printCheckpoints(const CheckpointStore *store)
{
    if (store == nullptr)
        return;
    const CheckpointStore::Stats st = store->stats();
    std::printf("paqocd: checkpoints: %zu opened, %zu trials resumed, "
                "%zu completed-trial hits, %zu records recovered, "
                "%zu written, %zu discarded\n",
                st.opened, st.resumedTrials, st.completedTrialHits,
                st.recordsRecovered, st.recordsWritten, st.discarded);
    if (st.corruptRecords > 0 || st.rotatedFiles > 0
        || st.failedWrites > 0)
        std::printf("paqocd: checkpoints: %zu corrupt records skipped, "
                    "%zu files rotated aside, %zu failed writes\n",
                    st.corruptRecords, st.rotatedFiles,
                    st.failedWrites);
    for (const std::string &w : st.warnings)
        std::printf("paqocd: warning: %s\n", w.c_str());
}

/**
 * Run one serving process. `control_fd` / `slot` are the fleet-worker
 * parameters (-1 = standalone or --supervise): a fleet worker owns no
 * listeners of its own -- the router feeds it accepted connections
 * over the control socket -- and keeps its durable state in a
 * per-slot library subdirectory so concurrent workers never share a
 * journal writer.
 */
int
serve(const DaemonOptions &opts, const WorkerContext &ctx,
      int control_fd = -1, int slot = -1)
{
    if (opts.threads > 0)
        ThreadPool::setGlobalThreads(
            static_cast<unsigned>(opts.threads));

    // Beat as soon as the worker is alive -- library recovery below
    // can legitimately take a while, and must not read as a hang.
    HeartbeatThread heartbeat(ctx.heartbeatFd, ctx.heartbeatIntervalMs);

    ServiceOptions sopts;
    sopts.libraryDir = opts.libraryDir;
    if (slot >= 0 && !sopts.libraryDir.empty())
        sopts.libraryDir += "/worker" + std::to_string(slot);
    sopts.syncEveryAppend = opts.syncEveryAppend;
    sopts.checkpointEvery = opts.checkpointEvery;
    sopts.checkpointDir = opts.checkpointDir;
    if (sopts.checkpointDir.empty() && opts.checkpointEvery > 0
        && !sopts.libraryDir.empty())
        sopts.checkpointDir = sopts.libraryDir + "/checkpoints";
    sopts.quotaLimits = opts.quota;
    if (opts.grapeMaxIters > 0)
        sopts.grape.maxIterations = opts.grapeMaxIters;

    // Shared tier: one client per backend library (fingerprints
    // namespace the tier store exactly like the on-disk libraries).
    // Created before the service so its ctor can chain the
    // write-behind sinks; destroyed after it (declaration order).
    std::unique_ptr<tier::TierClient> tier_spectral;
    std::unique_ptr<tier::TierClient> tier_grape;
    if (!opts.tierEndpoint.empty()) {
        auto makeTier = [&](const std::string &fingerprint) {
            tier::TierClientOptions topts;
            topts.endpoint = opts.tierEndpoint;
            topts.replica = opts.tierReplica;
            topts.fingerprint = fingerprint;
            topts.opTimeoutMs = opts.tierTimeoutMs;
            topts.hedgeDelayMs = opts.tierHedgeMs;
            topts.publishQueueCap = opts.tierQueue;
            topts.breaker.cooldownMs = opts.tierCooldownMs;
            if (!sopts.libraryDir.empty())
                topts.quarantineDir =
                    sopts.libraryDir + "/quarantine";
            return std::make_unique<tier::TierClient>(topts);
        };
        tier_spectral = makeTier(PulseLibrary::spectralFingerprint());
        tier_grape =
            makeTier(PulseLibrary::grapeFingerprint(sopts.grape));
        sopts.tierSpectral.source = tier_spectral.get();
        sopts.tierSpectral.sink = tier_spectral.get();
        sopts.tierGrape.source = tier_grape.get();
        sopts.tierGrape.sink = tier_grape.get();
        sopts.tierStats = [ts = tier_spectral.get(),
                           tg = tier_grape.get()]() {
            Json t = Json::object();
            t.set("spectral", ts->statsJson());
            t.set("grape", tg->statsJson());
            return t;
        };
    }

    PulseService service(sopts);
    service.setSupervisionInfo(ctx.heartbeatFd >= 0, ctx.incarnation);
    printLibrary("spectral", service.spectralLibrary());
    printLibrary("grape", service.grapeLibrary());
    // Anti-entropy: after a partition heals, re-publish everything
    // the libraries hold so the tier catches up on what it missed.
    if (tier_spectral)
        tier_spectral->setResyncSource([&service]() {
            const PulseLibrary *lib = service.spectralLibrary();
            return lib != nullptr ? lib->entriesSnapshot()
                                  : std::vector<CachedPulse>{};
        });
    if (tier_grape)
        tier_grape->setResyncSource([&service]() {
            const PulseLibrary *lib = service.grapeLibrary();
            return lib != nullptr ? lib->entriesSnapshot()
                                  : std::vector<CachedPulse>{};
        });
    if (!opts.tierEndpoint.empty())
        std::printf("paqocd: tier endpoint %s%s%s\n",
                    opts.tierEndpoint.c_str(),
                    opts.tierReplica.empty() ? "" : ", replica ",
                    opts.tierReplica.c_str());

    ServerOptions server_opts;
    if (slot < 0) {
        server_opts.socketPath = opts.socketPath;
        server_opts.listenHost = opts.listenHost;
        server_opts.listenPort = opts.listenPort;
    }
    server_opts.controlFd = control_fd;
    server_opts.maxQueue = opts.maxQueue;
    server_opts.defaultDeadlineMs = opts.deadlineMs;
    server_opts.fairShare = opts.fairShare;
    server_opts.tenantWeights = opts.tenantWeights;
    server_opts.tenantBudget = opts.budget;
    server_opts.overloadTargetMs = opts.overloadTargetMs;
    server_opts.cancelOnDisconnect = opts.cancelOnDisconnect;
    SocketServer server(service, server_opts);

    PAQOC_FATAL_IF(::pipe(g_signal_pipe) != 0,
                   "paqocd: pipe(): ", std::strerror(errno));
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);
    std::thread watcher([&server]() {
        char byte = 0;
        while (::read(g_signal_pipe[0], &byte, 1) < 0
               && errno == EINTR) {
        }
        server.requestStop();
    });

    // Make fault injection impossible to miss in logs: a daemon with
    // failpoints armed (PAQOC_FAILPOINTS) is a chaos-test daemon.
    const std::vector<std::string> armed = failpoint::armed();
    if (!armed.empty()) {
        std::printf("paqocd: WARNING: failpoints armed:");
        for (const std::string &a : armed)
            std::printf(" %s", a.c_str());
        std::printf("\n");
    }

    server.start();
    if (slot >= 0)
        std::printf("paqocd: worker %d serving via router "
                    "(%u threads, queue %zu)\n",
                    slot, ThreadPool::global().size(), opts.maxQueue);
    else
        std::printf("paqocd: serving on %s (%u threads, queue %zu)\n",
                    opts.socketPath.c_str(),
                    ThreadPool::global().size(), opts.maxQueue);
    if (server.tcpPort() >= 0)
        std::printf("paqocd: tcp port %d\n", server.tcpPort());
    std::fflush(stdout);
    // worker.crash (chaos runs, usually via PAQOC_WORKER_FAILPOINTS):
    // the worker dies right after it starts accepting connections --
    // the window where a crash hurts clients the most.
    failpoint::evaluate("worker.crash");
    server.run();

    // Wake the watcher if shutdown came from a "shutdown" request
    // rather than a signal.
    onSignal(0);
    watcher.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
    // Drain the write-behind queues while the service still exists
    // (the resync lambdas reach into it), then report the tier_*
    // shutdown table the chaos tests assert on.
    if (tier_spectral) {
        tier_spectral->flush(2000.0);
        tier_spectral->stop();
        printTier("spectral", tier_spectral.get());
    }
    if (tier_grape) {
        tier_grape->flush(2000.0);
        tier_grape->stop();
        printTier("grape", tier_grape.get());
    }
    printCheckpoints(service.checkpoints());
    // Per-tenant serving totals (DESIGN.md §12); shown only when a
    // non-anonymous tenant showed up or tenancy knobs are on, so a
    // plain daemon's shutdown log stays as it always was.
    const auto tenants = server.scheduler().tenantStats();
    const bool tenancy = opts.fairShare || opts.budget.any()
        || tenants.size() > 1
        || (tenants.size() == 1
            && tenants[0].first != fleet::kAnonymousTenant);
    if (tenancy) {
        for (const auto &entry : tenants)
            std::printf("paqocd: tenant %s: admitted %zu, "
                        "completed %zu, expired %zu, "
                        "budget_exhausted %zu, degraded %zu, "
                        "cancelled %zu, shed %zu, brownout %zu\n",
                        entry.first.c_str(), entry.second.admitted,
                        entry.second.completed, entry.second.expired,
                        entry.second.budgetExhausted,
                        entry.second.degraded,
                        entry.second.cancelled, entry.second.shed,
                        entry.second.brownout);
    }
    // Cancellation / overload totals (DESIGN.md §15), shown only once
    // any of them fired so a quiet daemon's shutdown log is unchanged
    // (the chaos client-kill and overload-storm scenarios grep these).
    const SessionScheduler::Stats sched = server.scheduler().stats();
    if (sched.cancelled > 0 || sched.shed > 0 || sched.brownout > 0)
        std::printf("paqocd: scheduler: cancelled %zu, "
                    "expired_running %zu, shed %zu, brownout %zu\n",
                    sched.cancelled, sched.expiredRunning, sched.shed,
                    sched.brownout);
    std::printf("paqocd: shut down cleanly\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const DaemonOptions opts = parseArgs(argc, argv);
        if (opts.fleet > 0 && opts.supervise) {
            std::fprintf(stderr, "paqocd: --fleet and --supervise are "
                                 "mutually exclusive\n");
            usage(2);
        }
        if (opts.fleet > 0) {
            fleet::RouterOptions router_opts;
            router_opts.socketPath = opts.socketPath;
            router_opts.listenHost = opts.listenHost;
            router_opts.listenPort = opts.listenPort;
            router_opts.workers = opts.fleet;
            router_opts.maxRestarts = opts.maxRestarts;
            router_opts.heartbeatTimeoutMs = opts.heartbeatTimeoutMs;
            router_opts.log = [](const std::string &message) {
                std::printf("paqocd-router: %s\n", message.c_str());
                std::fflush(stdout);
            };
            fleet::Router router(
                router_opts,
                [&opts](const fleet::FleetWorkerContext &ctx) {
                    WorkerContext wctx;
                    wctx.incarnation = ctx.incarnation;
                    wctx.heartbeatFd = ctx.heartbeatFd;
                    wctx.heartbeatIntervalMs = ctx.heartbeatIntervalMs;
                    return serve(opts, wctx, ctx.controlFd, ctx.slot);
                });
            router.start();
            if (router.tcpPort() >= 0) {
                std::printf("paqocd: tcp port %d\n",
                            router.tcpPort());
                std::fflush(stdout);
            }
            const int code = router.runLoop();
            const auto slots = router.slotStats();
            for (std::size_t i = 0; i < slots.size(); ++i)
                std::printf("paqocd-router: worker %zu: "
                            "%d incarnations, %ld connections\n",
                            i, slots[i].incarnations,
                            slots[i].handed);
            return code;
        }
        if (!opts.supervise)
            return serve(opts, WorkerContext{});
        SupervisorOptions sup;
        sup.maxRestarts = opts.maxRestarts;
        sup.heartbeatTimeoutMs = opts.heartbeatTimeoutMs;
        sup.log = [](const std::string &message) {
            std::printf("paqocd-supervisor: %s\n", message.c_str());
            std::fflush(stdout);
        };
        return runSupervised(sup, [&opts](const WorkerContext &ctx) {
            return serve(opts, ctx);
        });
    } catch (const paqoc::FatalError &e) {
        std::fprintf(stderr, "paqocd: %s\n", e.what());
        return 1;
    }
}
